"""Ablation bench: tau policy and similarity target of DML training."""

from repro.experiments import ablation_dml_design


def test_ablation_dml_design(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: ablation_dml_design.run(suite), rounds=1, iterations=1)
    save_result("ablation_dml_design", result.text)
    # Shape check: the quantile-tau default beats the fixed-tau literal
    # protocol (small tolerance — variants share the corpus, not the noise).
    default = result.means["quantile-tau + weight-cycle"]
    literal = result.means["fixed-tau + weight-cycle (paper-literal)"]
    assert default <= literal + 0.02
