"""Figure 10: advisor efficacy on IMDB-20 / STATS-20."""

from repro.experiments import fig10_realworld


def test_fig10_realworld(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: fig10_realworld.run(suite), rounds=1, iterations=1)
    save_result("fig10_realworld", result.text)
    # Shape check: AutoCE beats Rule on both real-world suites.
    for name in ("IMDB-20", "STATS-20"):
        assert result.mean_d_error[name]["AutoCE"] <= \
            result.mean_d_error[name]["Rule"] + 1e-9
