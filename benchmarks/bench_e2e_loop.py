"""Closed-loop advisor benchmark: AutoCE inside the query optimizer.

The ``e2e_advisor_loop`` row of ``results/BENCH_micro.json``.  Small
single-table and multi-table corpora are planned and executed end to end
through the provider layer (:mod:`repro.engine.providers`) under

* the PostgreSQL-style histogram baseline,
* every fixed candidate model, and
* the advisor in the loop (:class:`AdvisorProvider`: AutoCE picks the
  model per dataset, the optimizer asks the pick for every sub-plan),

and each method is scored on three axes:

* **plan cost** — the chosen physical plans re-priced under *true*
  cardinalities (:func:`repro.engine.e2e.recost_plan`), in cost-model
  units, so an optimistic misestimate cannot grade its own homework;
* **simulated latency** — plan cost converted to seconds through one
  global calibration constant (measured TrueCard execution wall-clock
  per TrueCard cost unit), so the latency axis is deterministic and the
  headline speedup is a pure plan-quality ratio; the raw measured
  wall-clock (execution + provider inference accounting) is reported
  alongside;
* **plan-choice agreement** — the fraction of queries whose plan
  signature equals the TrueCard plan's.

The advisor is trained on labels derived from the measured loop itself
(score_a = best plan cost / plan cost, score_e from inference latency),
which is exactly the closed loop: the measurement feeds the advisor, the
advisor feeds the planner.  ``knn_k = 1`` so the pick for a corpus member
is that dataset's own best-labeled model — the advisor row must therefore
be at least as good (in true plan cost) as every fixed candidate on the
multi-table corpus, and no worse than the histogram baseline on both.

The whole loop is computed twice and the deterministic fields (plan
costs, plan signatures, picks, agreement) are asserted identical, so the
CI determinism job can run the bench and trust the row bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.ce.base import CEModel, TrainingContext
from repro.ce.bayescard import BayesCard, BayesCardConfig
from repro.ce.lwxgb import LWXGB, LWXGBConfig
from repro.ce.mscn import MSCN, MSCNConfig
from repro.ce.postgres import PostgresEstimator
from repro.ce.template_base import TemplateModel
from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import random_spec
from repro.engine import (AdvisorProvider, HistogramProvider, ModelProvider,
                          TrueCardProvider, recost_plan, run_e2e)
from repro.testbed.scores import ScoreLabel
from repro.workload.generator import generate_workload

#: Fixed learned candidates: cheap to fit, with genuinely different
#: estimate quality (data-driven BN vs query-driven regression vs learned
#: set-conv).
CANDIDATES = ("BayesCard", "LW-XGB", "MSCN")
#: The advisor's pick pool: the learned candidates plus the histogram
#: default — the advisor keeps PostgreSQL's own estimator for a dataset
#: unless some learned model's plans are genuinely better there.
POOL = ("PostgreSQL",) + CANDIDATES

SEED = 0
NUM_QUERIES = 10
SAMPLE_SIZE = 400
NUM_TRAIN_QUERIES = 60


def _build_candidates() -> dict[str, CEModel]:
    return {
        "BayesCard": BayesCard(BayesCardConfig(seed=SEED)),
        "LW-XGB": LWXGB(LWXGBConfig(seed=SEED)),
        "MSCN": MSCN(MSCNConfig(epochs=8, seed=SEED)),
    }


def _sub_templates(dataset, queries):
    templates = set()
    for query in queries:
        tables = set(query.template)
        for candidate in dataset.connected_subsets():
            if set(candidate) <= tables:
                templates.add(candidate)
    return sorted(templates)


def _agreement(signatures, oracle_signatures) -> float:
    return float(np.mean([a == b for a, b in
                          zip(signatures, oracle_signatures)]))


class _Bench:
    """One dataset of the loop: fitted models + measured per-method runs."""

    def __init__(self, spec, kind: str):
        self.kind = kind
        self.dataset = generate_dataset(spec)
        self.workload = generate_workload(
            self.dataset, num_train=NUM_TRAIN_QUERIES,
            num_test=NUM_QUERIES, seed=SEED + 5)
        ctx = TrainingContext.build(self.dataset, self.workload, seed=SEED,
                                    sample_size=SAMPLE_SIZE)
        templates = _sub_templates(self.dataset, self.workload.test)
        self.models: dict[str, CEModel] = {}
        for name, model in _build_candidates().items():
            model.fit(ctx)
            if isinstance(model, TemplateModel):
                model.prepare_templates(templates)
            self.models[name] = model
        self.histogram = PostgresEstimator()
        self.histogram.fit(ctx)
        self.models["PostgreSQL"] = self.histogram
        self.oracle = TrueCardProvider(self.dataset)
        oracle_run = run_e2e(self.dataset, self.workload.test, self.oracle)
        self.oracle_signatures = oracle_run.plan_signatures
        # Calibration inputs: under TrueCard the optimizer's objective is
        # already the true cost, and the measured execution of those plans
        # anchors cost units to wall-clock seconds.
        self.oracle_exec_s = oracle_run.execution_time
        self.oracle_cost = oracle_run.plan_cost
        # method -> {"plan_cost", "latency_s", "agreement"}
        self.measured: dict[str, dict] = {}
        for name in CANDIDATES:
            self.measured[name] = self._measure(ModelProvider(self.models[name]))
        self.measured["PostgreSQL"] = self._measure(
            HistogramProvider(self.histogram))

    def _measure(self, provider) -> dict:
        result = run_e2e(self.dataset, self.workload.test, provider)
        true_cost = sum(recost_plan(p.plan, self.dataset, self.oracle)
                        for p in result.plans)
        return {
            "plan_cost": true_cost,
            "latency_s": result.total_time,
            "agreement": _agreement(result.plan_signatures,
                                    self.oracle_signatures),
            "signatures": result.plan_signatures,
        }

    def label(self) -> ScoreLabel:
        """Closed-loop label: plan quality + inference efficiency."""
        costs = np.array([self.measured[n]["plan_cost"] for n in POOL])
        latencies = np.array([self.measured[n]["latency_s"] for n in POOL])
        sa = costs.min() / np.maximum(costs, 1e-12)
        se = latencies.min() / np.maximum(latencies, 1e-12)
        return ScoreLabel(model_names=POOL, sa=sa, se=se)


def bench_e2e_loop(repeats: int) -> dict:
    single = [_Bench(random_spec(
        5_000_000 + i,
        ranges={"num_tables": (1, 1), "rows": (8_000, 12_000),
                "columns_per_table": (4, 6)}), "single-table")
        for i in range(2)]
    # Multi-table specs live in the correlated/skewed regime where the
    # histogram's independence assumption genuinely misprices join plans,
    # so per-dataset model selection has something to win: on seed
    # 6000002 the histogram's plans are strictly the best of the pool,
    # on 6000004 BayesCard's are — the advisor must route each dataset
    # to its winner.
    multi = [_Bench(random_spec(
        seed,
        ranges={"num_tables": (3, 4), "rows": (3_000, 6_000),
                "skew": (0.7, 0.95), "max_correlation": (0.8, 0.95),
                "interaction": (0.7, 0.95), "fanout_skew": (0.8, 1.0),
                "domain": (8, 40)}),
        "multi-table")
        for seed in (6_000_002, 6_000_004)]
    benches = single + multi

    def run_loop() -> dict:
        """Fit the advisor on the measured labels, serve it in the loop."""
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=16, embedding_dim=8, knn_k=1, use_incremental=False,
            dml=DMLConfig(epochs=4, batch_size=4), seed=SEED))
        graphs = [advisor.featurize(b.dataset) for b in benches]
        advisor.fit_graphs(graphs, [b.label() for b in benches])
        out = {"picks": {}, "advisor": {}, "signatures": {}}
        for bench, graph in zip(benches, graphs):
            provider = AdvisorProvider(advisor, graph, bench.models,
                                       accuracy_weight=1.0)
            measured = bench._measure(provider)
            name = bench.dataset.name
            out["picks"][name] = provider.picked
            out["advisor"][name] = measured
            out["signatures"][name] = measured["signatures"]
        return out

    first = run_loop()
    second = run_loop()
    # The closed loop is deterministic: picks, plans and plan costs must be
    # bit-for-bit identical across independent refits.
    assert first["picks"] == second["picks"], "advisor picks drifted"
    assert first["signatures"] == second["signatures"], "plans drifted"
    for name in first["advisor"]:
        assert (first["advisor"][name]["plan_cost"]
                == second["advisor"][name]["plan_cost"]), "plan cost drifted"

    def totals(kind: str, method: str) -> dict:
        """Per-kind sums of plan cost / latency and mean agreement."""
        rows = []
        for bench in benches:
            if bench.kind != kind:
                continue
            if method == "advisor":
                rows.append(first["advisor"][bench.dataset.name])
            else:
                rows.append(bench.measured[method])
        return {
            "plan_cost": float(sum(r["plan_cost"] for r in rows)),
            "latency_s": float(sum(r["latency_s"] for r in rows)),
            "agreement": float(np.mean([r["agreement"] for r in rows])),
        }

    methods = ("PostgreSQL",) + CANDIDATES + ("advisor",)
    report = {kind: {m: totals(kind, m) for m in methods}
              for kind in ("single-table", "multi-table")}

    # Acceptance: the advisor's plans are at least as good (true cost) as
    # every fixed candidate on the multi-table corpus, and never worse
    # than the histogram baseline on either corpus.
    multi_report = report["multi-table"]
    for method in CANDIDATES + ("PostgreSQL",):
        assert (multi_report["advisor"]["plan_cost"]
                <= multi_report[method]["plan_cost"] + 1e-9), \
            f"advisor plan cost exceeds {method} on multi-table"
    assert (report["single-table"]["advisor"]["plan_cost"]
            <= report["single-table"]["PostgreSQL"]["plan_cost"] + 1e-9), \
        "advisor plan cost exceeds the histogram baseline on single-table"

    # Simulated latency: one global seconds-per-cost-unit calibration
    # (TrueCard execution wall-clock over TrueCard plan cost), so the
    # before/after ratio is a pure — and deterministic — plan-cost ratio.
    calibration = (sum(b.oracle_exec_s for b in benches)
                   / sum(b.oracle_cost for b in benches))
    simulated = {k: {m: report[k][m]["plan_cost"] * calibration
                     for m in methods} for k in report}
    # "Before" is serving without an advisor: deploy one fixed estimator
    # everywhere, averaged over which one of the pool you happened to pick.
    before = sum(np.mean([simulated[k][m] for m in POOL]) for k in report)
    after = sum(simulated[k]["advisor"] for k in report)
    return {
        "datasets": {"single-table": len(single), "multi-table": len(multi)},
        "queries_per_dataset": NUM_QUERIES,
        "candidates": list(CANDIDATES),
        "advisor_picks": first["picks"],
        "plan_cost": {k: {m: report[k][m]["plan_cost"] for m in methods}
                      for k in report},
        "simulated_latency_s": simulated,
        "measured_latency_s": {
            k: {m: report[k][m]["latency_s"] for m in methods}
            for k in report},
        "truecard_agreement": {
            k: {m: report[k][m]["agreement"] for m in methods}
            for k in report},
        "deterministic_double_run": True,
        "before_s": before, "after_s": after,
        "speedup": before / after,
    }
