"""Figure 12: AutoCE vs online learning (Sampling, Learning-All)."""

from repro.experiments import fig12_online_learning


def test_fig12_online_learning(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: fig12_online_learning.run(suite), rounds=1, iterations=1)
    save_result("fig12_online_learning", result.text)
    # Shape checks (paper Fig. 12): AutoCE is orders of magnitude faster;
    # Learning-All is near-optimal (its residual D-error is re-measurement
    # noise); AutoCE's D-error is close to Learning-All's, far from the
    # paper's 34.8% Sampling regime.
    n = max(result.seconds["AutoCE"])
    assert result.seconds["AutoCE"][n] * 20 < result.seconds["Learning-All"][n]
    assert result.d_error["Learning-All"] <= 0.05
    assert result.d_error["AutoCE"] <= 0.10
