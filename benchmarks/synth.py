"""Shared synthetic labeled corpus for the fast-path benchmarks.

Used by both ``bench_micro.py`` (pytest-benchmark throughput benches) and
``run_benchmarks.py`` (before/after runner), so the two surfaces always
describe the same workload.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import FeatureGraph
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def synthetic_corpus(n: int, dim: int = 57, seed: int = 0):
    """Labeled feature graphs with 1–5 tables (no testbed labeling needed).

    ``dim=57`` matches ``vertex_dimension(max_columns=5)``, the paper's
    default feature layout.
    """
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        tables = int(rng.integers(1, 6))
        vertices = rng.normal(size=(tables, dim))
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = rng.uniform(0.2, 1.0)
        graphs.append(FeatureGraph(f"bench{i}", vertices, edges))
        labels.append(DatasetLabel(MODELS, rng.uniform(1, 10, 3),
                                   rng.uniform(0.001, 0.01, 3)))
    return graphs, labels


def cluster_free_embeddings(n: int, intrinsic_dim: int = 4,
                            ambient_dim: int = 32, seed: int = 0,
                            dtype=np.float32) -> np.ndarray:
    """A cluster-free RCS embedding matrix: no family structure at all.

    Points are uniform over a low-intrinsic-dimension box rotated into the
    ambient embedding space — the regime real GIN embedding clouds occupy
    (a few directions carry almost all variance) when the labeled corpus
    has no tenant/family structure for the sign-hash LSH to bucket.  This
    is the workload of the ``e2lsh_search`` bench.
    """
    rng = np.random.default_rng(seed)
    base = rng.uniform(-1.0, 1.0, size=(n, intrinsic_dim))
    rotation, _ = np.linalg.qr(rng.normal(size=(ambient_dim, ambient_dim)))
    return (base @ rotation[:intrinsic_dim, :]).astype(dtype)


def family_corpus(n: int, families: int = 256, dim: int = 57,
                  noise: float = 0.15, seed: int = 0):
    """A CardBench-style labeled corpus of schema *families*.

    Large real-world labeled corpora are dominated by families of similar
    datasets (tenants running variations of the same schema; snapshots of
    one database over time).  Each family here is a base feature graph whose
    members perturb the base column statistics by ``noise``; members of one
    family share a label up to noise as well.  This is the workload regime
    where approximate KNN pays off — and it is what the ANN serving bench
    measures recall/speedup on.
    """
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for f in range(families):
        tables = int(rng.integers(1, 6))
        base_vertices = rng.normal(size=(tables, dim))
        base_qerror = rng.uniform(1, 10, len(MODELS))
        base_latency = rng.uniform(0.001, 0.01, len(MODELS))
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = rng.uniform(0.2, 1.0)
        members = n // families + (1 if f < n % families else 0)
        for m in range(members):
            vertices = base_vertices + noise * rng.normal(size=base_vertices.shape)
            graphs.append(FeatureGraph(f"family{f}_m{m}", vertices, edges))
            labels.append(DatasetLabel(
                MODELS,
                base_qerror * rng.uniform(0.9, 1.1, len(MODELS)),
                base_latency * rng.uniform(0.9, 1.1, len(MODELS))))
    order = rng.permutation(len(graphs))
    return [graphs[i] for i in order], [labels[i] for i in order]


def wide_family_embeddings(n: int, dim: int = 512, families: int = 256,
                           noise: float = 0.15, seed: int = 0,
                           dtype=np.float32) -> np.ndarray:
    """A wide family-structured RCS embedding matrix (d = 512 by default).

    Same family regime as :func:`family_corpus`, but materialized directly
    in embedding space at a width past the flat-int8 exactness bound
    (d > 260) — the workload of the ``pq_search`` bench, where
    ``select_quantizer`` switches the candidate tier to product
    quantization.
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(families, dim)) * 4.0
    assign = rng.integers(0, families, size=n)
    members = centers[assign] + noise * rng.normal(size=(n, dim))
    return members.astype(dtype)
