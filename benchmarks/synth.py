"""Shared synthetic labeled corpus for the fast-path benchmarks.

Used by both ``bench_micro.py`` (pytest-benchmark throughput benches) and
``run_benchmarks.py`` (before/after runner), so the two surfaces always
describe the same workload.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import FeatureGraph
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def synthetic_corpus(n: int, dim: int = 57, seed: int = 0):
    """Labeled feature graphs with 1–5 tables (no testbed labeling needed).

    ``dim=57`` matches ``vertex_dimension(max_columns=5)``, the paper's
    default feature layout.
    """
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        tables = int(rng.integers(1, 6))
        vertices = rng.normal(size=(tables, dim))
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = rng.uniform(0.2, 1.0)
        graphs.append(FeatureGraph(f"bench{i}", vertices, edges))
        labels.append(DatasetLabel(MODELS, rng.uniform(1, 10, 3),
                                   rng.uniform(0.001, 0.01, 3)))
    return graphs, labels
