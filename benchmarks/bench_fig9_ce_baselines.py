"""Figure 9: AutoCE vs nine fixed CE baselines."""

import numpy as np

from repro.experiments import fig9_ce_baselines


def test_fig9_ce_baselines(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: fig9_ce_baselines.run(suite), rounds=1, iterations=1)
    save_result("fig9_ce_baselines", result.text)
    # Shape checks (paper Fig. 9): AutoCE beats every fixed *candidate*
    # model on mean D-error, and no fixed candidate is uniformly good —
    # each one collapses (≥ 10 % D-error) at some weight.  Postgres and
    # Ensemble are judged in their own score basis (see the driver) and
    # excluded from the dominance check.
    from repro.experiments.common import CANDIDATES

    autoce = np.mean(list(result.mean_d_error["AutoCE"].values()))
    for model in CANDIDATES:
        per_weight = result.mean_d_error[model]
        assert autoce <= np.mean(list(per_weight.values())) + 1e-9
        assert max(per_weight.values()) >= 0.10
    # AutoCE itself is never catastrophic at any weight.
    assert max(result.mean_d_error["AutoCE"].values()) <= 0.25
