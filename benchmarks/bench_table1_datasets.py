"""Table I: dataset statistics."""

from repro.experiments import table1_datasets


def test_table1_datasets(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: table1_datasets.run(suite), rounds=1, iterations=1)
    save_result("table1_datasets", result.text)
    names = [row[0] for row in result.rows]
    assert names == ["imdb_light", "stats_light", "power", "synthetic"]
