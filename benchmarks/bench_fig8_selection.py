"""Figure 8: AutoCE vs MLP / Rule / Sampling / Knn across metric weights."""

import numpy as np

from repro.experiments import fig8_selection_baselines


def test_fig8_selection_baselines(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: fig8_selection_baselines.run(suite), rounds=1, iterations=1)
    save_result("fig8_selection_baselines", result.text)
    # Shape check: AutoCE's mean D-error beats every baseline on average.
    autoce = np.mean(list(result.d_error["AutoCE"].values()))
    for advisor in ("MLP", "Rule", "Knn", "Sampling"):
        assert autoce <= np.mean(list(result.d_error[advisor].values())) + 1e-9
