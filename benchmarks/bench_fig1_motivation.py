"""Figure 1: the motivating experiment (CE models across datasets)."""

from repro.experiments import fig1_motivation


def test_fig1_motivation(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: fig1_motivation.run(suite), rounds=1, iterations=1)
    save_result("fig1_motivation", result.text)
    # Shape check: NeuroCard is the slowest of the three on Power (paper
    # Fig. 1c) and the accuracy ranking differs between the two datasets.
    assert result.power_latency_ms["NeuroCard"] > result.power_latency_ms["MSCN"]
