"""Shared benchmark fixtures.

The experiment suite (labeled corpora, trained advisor, baselines) is built
once per session and cached on disk, so re-running the benchmarks is cheap.
Every bench writes its paper-style table to ``results/<name>.txt`` and
echoes it to the terminal.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSuite

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
