"""Fast-path before/after benchmark runner.

Times the scalar reference path against the vectorized fast path for the
three advisor stages the perf PR targets:

* ``featurize_corpus``  — per-column loops vs single-pass broadcast kernels
  over a 20-dataset corpus;
* ``dml_epoch``         — per-batch ``batch_graphs`` re-padding vs the
  corpus tensor cache (``GraphTensorBatcher``), one epoch at batch_size=32;
* ``recommend_batch``   — 100 sequential ``recommend`` calls (embedding
  cache off) vs one ``recommend_batch`` over repeat traffic;
* ``ann_search``        — exact ``[Q, N]`` Gram-identity KNN vs the
  multi-probe LSH ``ANNIndex`` on a CardBench-scale (8192-member)
  family-structured RCS, with recall@k against the exact result;
* ``persistent_cache``  — a serving node killed and reloaded from
  ``load_advisor``: first repeat query must come from the disk tier of the
  embedding cache with **zero** GIN forwards;
* ``float32_epoch``     — the float64 fast path vs the float32 precision
  tier: one DML epoch (tensor cache + fused GIN/loss/Adam at each dtype)
  and batched serving, with the recommendation agreement between tiers;
* ``e2lsh_search``      — exact float32 scan vs the quantized-projection
  ``E2LSHIndex`` on a cluster-free 8192-member RCS (no family structure:
  the corpus where the sign hash stops pruning), with recall@k and the
  sign hash's pool fraction for reference;
* ``quantized_search``  — the int8 candidate tier: exact float32 scan vs
  the ``QuantizedStore`` candidate pass (int32-accumulated code distances,
  top ``k·overfetch`` kept, float re-rank) on GIN embeddings of the
  8192-member family corpus, with recall@k, plus the mixed-tier serving
  check — a float64-trained advisor serving float32 + int8 candidates must
  agree with the float64 reference recommendations;
* ``pq_search``         — the product-quantization tier on a wide
  (d = 512) 8192-member synthetic RCS, past the flat-int8 exactness bound:
  exact float32 scan vs the ``PQStore`` ADC candidate pass (per-subspace
  codebooks, per-batch lookup tables, top ``k·overfetch`` kept, float
  re-rank), with recall@k for the plain and residual-refined codebooks;
* ``ivf_search``        — the IVF coarse partition vs the full-corpus
  quantized scans: flat int8 (d = 32 GIN embeddings) and flat PQ (d = 512
  wide corpus) vs the same stores behind an ``IVFStore`` probing
  ``nprobe`` of ~sqrt(N) seeded-k-means cells, recall@k vs exact;
* ``e2e_advisor_loop``  — the closed loop: histogram baseline, every fixed
  candidate model and the advisor-picked model planning and executing
  small single-/multi-table workloads through the provider layer, scored
  on true-recost plan cost, simulated latency and TrueCard plan
  agreement, with an internal deterministic double run (before = the
  average fixed-model policy's simulated latency, after = the advisor's);
* ``restart_warm``      — ``load_advisor`` with persisted quantizer state
  (format v2) vs the retrain-on-attach path, at 1024 and 8192 members:
  the warm load must stay flat as the corpus grows 8× and run zero
  k-means calls, answering byte-identically to the saving node.

Writes a machine-readable ``results/BENCH_micro.json`` so future PRs can
track the perf trajectory, and prints a human-readable table.
``--only name [name ...]`` re-runs a subset and merges it into the
existing JSON instead of re-running everything.

Run:  PYTHONPATH=src python benchmarks/run_benchmarks.py [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import nn
from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig, DMLTrainer
from repro.core.encoder import GINEncoder
from repro.core.graph import (batch_graphs, build_feature_graph,
                              build_feature_graph_reference)
from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import random_spec
from repro.utils.rng import rng_from_seed

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_e2e_loop import bench_e2e_loop  # noqa: E402
from synth import (MODELS, cluster_free_embeddings, family_corpus,  # noqa: E402
                   synthetic_corpus, wide_family_embeddings)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def timeit(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds) of ``fn()``."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def interleaved_best(fn_before, fn_after, repeats: int) -> tuple[float, float]:
    """Best-of-N wall times of two functions, measured alternately so slow
    drift of the machine (shared CPU, thermal state) hits both equally."""
    best_before = best_after = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn_before()
        best_before = min(best_before, time.perf_counter() - start)
        start = time.perf_counter()
        fn_after()
        best_after = min(best_after, time.perf_counter() - start)
    return best_before, best_after


def bench_featurize(repeats: int) -> dict:
    datasets = [
        generate_dataset(random_spec(1000 + i, ranges={"num_tables": (2, 4)}))
        for i in range(20)
    ]
    before, after = interleaved_best(
        lambda: [build_feature_graph_reference(d) for d in datasets],
        lambda: [build_feature_graph(d) for d in datasets], repeats)
    return {"datasets": len(datasets), "before_s": before, "after_s": after,
            "speedup": before / after}


class SeedAdam:
    """The seed repository's Adam: a Python loop of per-parameter updates."""

    def __init__(self, params, lr: float):
        self.params = [p for p in params if p.requires_grad]
        self.lr = lr
        self.beta1, self.beta2 = 0.9, 0.999
        self.eps = 1e-8
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self):
        for param in self.params:
            param.zero_grad()

    def step(self):
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def seed_cosine_similarity_matrix(labels: np.ndarray) -> np.ndarray:
    """The seed repository's Eq. 6 (``np.linalg.norm`` per batch)."""
    labels = np.asarray(labels, dtype=np.float64)
    norms = np.linalg.norm(labels, axis=1, keepdims=True)
    normalized = labels / np.maximum(norms, 1e-12)
    return np.clip(normalized @ normalized.T, -1.0, 1.0)


def seed_masks(similarities: np.ndarray, tau: float):
    """The seed repository's Eq. 7 (fresh eye + two comparison passes)."""
    eye = np.eye(len(similarities), dtype=bool)
    positive = (similarities >= tau) & ~eye
    negative = (similarities < tau) & ~eye
    return positive, negative


def seed_pairwise_distances(embeddings: nn.Tensor) -> nn.Tensor:
    """The seed repository's Eq. 8: composed autograd ops (~9 graph nodes)."""
    squared = (embeddings * embeddings).sum(axis=1, keepdims=True)
    gram = embeddings @ embeddings.T
    dist_sq = squared + squared.T - gram * 2.0
    dist_sq = dist_sq.relu()
    return (dist_sq + 1e-12).sqrt()


def seed_weighted_loss(embeddings: nn.Tensor, sims: np.ndarray,
                       tau: float, gamma: float) -> nn.Tensor:
    """The seed repository's Eq. 9: duplicated U+Sim nodes and -inf fills."""
    positive, negative = seed_masks(sims, tau)
    distances = seed_pairwise_distances(embeddings)
    sims_t = nn.Tensor(sims)
    pos_arg = nn.where(positive, distances + sims_t,
                       nn.Tensor(np.full_like(sims, -1e9)))
    neg_arg = nn.where(negative, (distances + sims_t) * -1.0 + gamma,
                       nn.Tensor(np.full_like(sims, -1e9)))
    pos_term = pos_arg.logsumexp(axis=1)
    neg_term = neg_arg.logsumexp(axis=1)
    has_pos = positive.any(axis=1).astype(np.float64)
    has_neg = negative.any(axis=1).astype(np.float64)
    total = pos_term * nn.Tensor(has_pos) + neg_term * nn.Tensor(has_neg)
    return total.mean()


def seed_mlp(mlp, x: nn.Tensor) -> nn.Tensor:
    """The seed repository's MLP forward: composed ``x @ W + b`` / relu
    nodes (3-D inputs run as stacks of small per-graph GEMMs)."""
    last = len(mlp.layers) - 1
    for i, layer in enumerate(mlp.layers):
        x = x @ layer.weight + layer.bias
        if i < last:
            x = x.relu()
    return x


def seed_encode_batch(encoder: GINEncoder, graphs) -> nn.Tensor:
    """The seed repository's GIN forward: per-batch padding + symmetrize,
    per-layer mask multiplies, stacked 3-D matmuls (the "before" path)."""
    vertices, edges, mask = batch_graphs(graphs)
    adjacency = nn.Tensor(edges + np.swapaxes(edges, 1, 2))
    h = nn.Tensor(vertices)
    for layer in encoder.layers:
        neighbour_sum = adjacency @ h
        combined = h * (layer.epsilon + 1.0) + neighbour_sum
        h = seed_mlp(layer.mlp, combined).relu() * nn.Tensor(mask[:, :, None])
    return (h * nn.Tensor(mask[:, :, None])).sum(axis=1)


def seed_train_epochs(encoder: GINEncoder, optimizer: SeedAdam,
                      config: DMLConfig, graphs, labels, epochs: int) -> None:
    """The seed repository's Algorithm-1 epoch loop: ``batch_graphs``, label
    score vectors and the Eq. 9 graph all re-derived per batch."""
    rng = rng_from_seed(config.seed)
    n = len(graphs)
    weight_cycle = list(config.weights)
    step = 0
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, config.batch_size):
            idx = order[start:start + config.batch_size]
            if len(idx) < 2:
                continue
            accuracy_weight = weight_cycle[step % len(weight_cycle)]
            batch_labels = np.stack(
                [labels[i].score_vector(accuracy_weight) for i in idx])
            step += 1
            sims = seed_cosine_similarity_matrix(batch_labels)
            off_diagonal = sims[~np.eye(len(sims), dtype=bool)]
            tau = float(np.quantile(off_diagonal, config.tau_quantile))
            embeddings = seed_encode_batch(encoder, [graphs[i] for i in idx])
            loss = seed_weighted_loss(embeddings, sims, tau, config.gamma)
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(encoder.parameters(), config.grad_clip)
            optimizer.step()


def bench_dml_epoch(repeats: int, epochs_per_run: int = 20) -> dict:
    """Steady-state per-epoch cost (one train call per run, as in real
    training, so the fast path's one-time corpus caches amortize)."""
    graphs, labels = synthetic_corpus(128)
    config = DMLConfig(batch_size=32, seed=0)

    seed_encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=64,
                              embedding_dim=32, seed=0)
    seed_optimizer = SeedAdam(seed_encoder.parameters(), lr=config.lr)
    seed_train_epochs(seed_encoder, seed_optimizer, config, graphs, labels, 1)

    fast_encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=64,
                              embedding_dim=32, seed=0)
    trainer = DMLTrainer(fast_encoder, config)
    trainer.train(graphs, labels, epochs=1)

    before, after = interleaved_best(
        lambda: seed_train_epochs(seed_encoder, seed_optimizer, config,
                                  graphs, labels, epochs_per_run),
        lambda: trainer.train(graphs, labels, epochs=epochs_per_run), repeats)
    before /= epochs_per_run
    after /= epochs_per_run
    return {"corpus": len(graphs), "batch_size": 32,
            "epochs_per_run": epochs_per_run, "before_s": before,
            "after_s": after, "speedup": before / after}


def bench_recommend_batch(repeats: int) -> dict:
    graphs, labels = synthetic_corpus(64)
    # Sequential baseline: per-query serving without the embedding memo.
    baseline = AutoCE(AutoCEConfig(
        hidden_dim=32, embedding_dim=16, use_incremental=False,
        embedding_cache_size=0,
        dml=DMLConfig(epochs=2, batch_size=32), seed=0))
    baseline.fit(graphs, labels)
    batched = AutoCE(AutoCEConfig(
        hidden_dim=32, embedding_dim=16, use_incremental=False,
        dml=DMLConfig(epochs=2, batch_size=32), seed=0))
    batched.fit(graphs, labels)

    rng = np.random.default_rng(7)
    queries = [graphs[i] for i in rng.integers(0, len(graphs), size=100)]
    before, after = interleaved_best(
        lambda: [baseline.recommend(q, 0.9) for q in queries],
        lambda: batched.recommend_batch(queries, 0.9), repeats)

    models_seq = [baseline.recommend(q, 0.9).model for q in queries]
    models_batch = [r.model for r in batched.recommend_batch(queries, 0.9)]
    assert models_seq == models_batch, "batched serving diverged from sequential"
    return {"queries": len(queries), "rcs_size": len(graphs),
            "before_s": before, "after_s": after, "speedup": before / after}


def bench_ann_search(repeats: int, rcs_size: int = 8192,
                     num_queries: int = 512, k: int = 5) -> dict:
    """Exact vs ANN KNN serving on a CardBench-scale family corpus.

    Embeddings come from a real GIN encoder over a family-structured corpus
    (the regime large labeled corpora live in); recall@k is measured against
    the exact ``top_k_neighbors`` result on the same queries.
    """
    from repro.core.predictor import ANNConfig, ANNIndex, exact_search

    graphs, _ = family_corpus(rcs_size + num_queries, seed=0)
    encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=64,
                         embedding_dim=32, seed=0)
    embeddings = encoder.embed(graphs)
    members, queries = embeddings[:rcs_size], embeddings[rcs_size:]

    index = ANNIndex(ANNConfig(seed=0))
    index.rebuild(members)
    index.search(queries, members, k)          # warm: lazy bucket sort
    before, after = interleaved_best(
        lambda: exact_search(queries, members, k),
        lambda: index.search(queries, members, k), repeats)

    exact_idx, _ = exact_search(queries, members, k)
    ann_idx, _ = index.search(queries, members, k)
    recall = float(np.mean([
        len(set(a) & set(e)) / k for a, e in zip(ann_idx, exact_idx)]))
    return {"rcs_size": rcs_size, "queries": num_queries, "k": k,
            "recall_at_k": recall, "before_s": before, "after_s": after,
            "speedup": before / after}


def bench_float32_epoch(repeats: int, epochs_per_run: int = 20) -> dict:
    """The float32 precision tier vs the float64 fast path.

    Both sides run the full PR 1 fast path (corpus tensor cache, fused
    GIN/loss, fused Adam); the only difference is the dtype threaded through
    encoder parameters, batch tensors, loss and optimizer state.  Serving is
    compared on ``recommend_batch`` (embedding cache off, so the GIN forward
    and KNN kernels are measured, not the memo-cache), and the two tiers'
    recommendations are checked for agreement.
    """
    graphs, labels = synthetic_corpus(128)
    config = DMLConfig(batch_size=32, seed=0)
    trainers = {}
    for dtype in (np.float64, np.float32):
        encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=64,
                             embedding_dim=32, seed=0, dtype=dtype)
        trainer = DMLTrainer(encoder, config)
        # Warm-up epoch: prime allocator/BLAS state and move both tiers off
        # their cold first step before the interleaved timing below.
        trainer.train(graphs, labels, epochs=1)
        trainers[dtype] = trainer
    before, after = interleaved_best(
        lambda: trainers[np.float64].train(graphs, labels,
                                           epochs=epochs_per_run),
        lambda: trainers[np.float32].train(graphs, labels,
                                           epochs=epochs_per_run), repeats)
    before /= epochs_per_run
    after /= epochs_per_run

    serve_graphs, serve_labels = synthetic_corpus(64)
    advisors = {}
    for dtype in ("float64", "float32"):
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=32, embedding_dim=16, use_incremental=False,
            embedding_cache_size=0,
            dml=DMLConfig(epochs=2, batch_size=32), seed=0, dtype=dtype))
        advisor.fit(serve_graphs, serve_labels)
        advisors[dtype] = advisor
    rng = np.random.default_rng(7)
    queries = [serve_graphs[i]
               for i in rng.integers(0, len(serve_graphs), size=100)]
    serve_before, serve_after = interleaved_best(
        lambda: advisors["float64"].recommend_batch(queries, 0.9),
        lambda: advisors["float32"].recommend_batch(queries, 0.9), repeats)
    agreement = float(np.mean([
        r64.model == r32.model
        for r64, r32 in zip(advisors["float64"].recommend_batch(queries, 0.9),
                            advisors["float32"].recommend_batch(queries, 0.9))
    ]))
    return {"corpus": len(graphs), "batch_size": 32,
            "epochs_per_run": epochs_per_run,
            "before_s": before, "after_s": after, "speedup": before / after,
            "serve_queries": len(queries), "serve_before_s": serve_before,
            "serve_after_s": serve_after,
            "serve_speedup": serve_before / serve_after,
            "recommendation_agreement": agreement}


def bench_e2lsh_search(repeats: int, rcs_size: int = 8192,
                       num_queries: int = 512, k: int = 5) -> dict:
    """Exact float32 scan vs the quantized-projection E2LSH index on a
    cluster-free RCS (uniform low-intrinsic-dimension embedding cloud — no
    family structure for sign buckets to exploit).

    Also records what the sign hash does on the same corpus (the fraction
    of the corpus its average candidate pool still touches — the recall
    probe's degradation signal) and that :func:`select_neighbor_index`
    picks the E2LSH index here.
    """
    from repro.core.predictor import (ANNConfig, ANNIndex, E2LSHConfig,
                                      E2LSHIndex, exact_search,
                                      select_neighbor_index)

    embeddings = cluster_free_embeddings(rcs_size + num_queries, seed=0)
    members, queries = embeddings[:rcs_size], embeddings[rcs_size:]

    index = E2LSHIndex(E2LSHConfig(seed=0))
    index.rebuild(members)
    index.search(queries, members, k)          # warm: lazy bucket sort
    before, after = interleaved_best(
        lambda: exact_search(queries, members, k),
        lambda: index.search(queries, members, k), repeats)

    exact_idx, _ = exact_search(queries, members, k)
    e2lsh_idx, _ = index.search(queries, members, k)
    recall = float(np.mean([
        len(set(a) & set(e)) / k for a, e in zip(e2lsh_idx, exact_idx)]))

    sign = ANNIndex(ANNConfig(seed=0))
    sign.rebuild(members)
    sign.search(queries, members, k)
    selected = type(select_neighbor_index(members, ANNConfig(seed=0))).__name__
    return {"rcs_size": rcs_size, "queries": num_queries, "k": k,
            "intrinsic_dim": 4, "dtype": "float32",
            "recall_at_k": recall, "before_s": before, "after_s": after,
            "speedup": before / after,
            "e2lsh_fallback_fraction": index.last_fallback_fraction,
            "sign_hash_pool_fraction": sign.last_pool_fraction,
            "probe_selects": selected}


def bench_quantized_search(repeats: int, rcs_size: int = 8192,
                           num_queries: int = 512, k: int = 5) -> dict:
    """The int8 candidate tier vs the exact float32 scan.

    Embeddings come from a real GIN encoder over the family corpus, cast to
    the float32 serving tier.  The quantized pass scans all members in
    int32-accumulated code space (no square roots, no exact tie machinery),
    keeps ``k · overfetch`` candidates and re-ranks them in float32; recall
    and the wall-time are measured against ``exact_search`` on the same
    queries.  The second half measures the full mixed-tier serving mode:
    a float64-trained advisor with ``serving_dtype="float32"`` and the int8
    tier enabled must produce the float64 reference recommendations.
    """
    from repro.core.predictor import (QuantizationConfig, QuantizedStore,
                                      exact_search)

    graphs, _ = family_corpus(rcs_size + num_queries, seed=0)
    encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=64,
                         embedding_dim=32, seed=0)
    embeddings = encoder.embed(graphs).astype(np.float32)
    members, queries = embeddings[:rcs_size], embeddings[rcs_size:]

    config = QuantizationConfig(enabled=True)
    store = QuantizedStore(members, config)
    store.search(queries, members, k)           # warm both code paths
    before, after = interleaved_best(
        lambda: exact_search(queries, members, k),
        lambda: store.search(queries, members, k), repeats)

    exact_idx, _ = exact_search(queries, members, k)
    quant_idx, _ = store.search(queries, members, k)
    recall = float(np.mean([
        len(set(a) & set(e)) / k for a, e in zip(quant_idx, exact_idx)]))

    # Mixed-tier serving: float64 training loop, float32 + int8 serving.
    serve_graphs, serve_labels = synthetic_corpus(64)
    reference = AutoCE(AutoCEConfig(
        hidden_dim=32, embedding_dim=16, use_incremental=False,
        embedding_cache_size=0,
        dml=DMLConfig(epochs=2, batch_size=32), seed=0))
    reference.fit(serve_graphs, serve_labels)
    mixed = AutoCE(AutoCEConfig(
        hidden_dim=32, embedding_dim=16, use_incremental=False,
        embedding_cache_size=0, serving_dtype="float32",
        quantization=QuantizationConfig(enabled=True, min_size=8,
                                        overfetch=4),
        dml=DMLConfig(epochs=2, batch_size=32), seed=0))
    mixed.fit(serve_graphs, serve_labels)
    assert mixed.rcs.quantized is not None, "int8 tier failed to attach"
    rng = np.random.default_rng(7)
    serve_queries = [serve_graphs[i]
                     for i in rng.integers(0, len(serve_graphs), size=100)]
    agreement = float(np.mean([
        r64.model == rq.model
        for r64, rq in zip(reference.recommend_batch(serve_queries, 0.9),
                           mixed.recommend_batch(serve_queries, 0.9))]))
    return {"rcs_size": rcs_size, "queries": num_queries, "k": k,
            "overfetch": config.overfetch, "dtype": "float32 + int8",
            "recall_at_k": recall, "before_s": before, "after_s": after,
            "speedup": before / after,
            "mixed_tier_recommendation_agreement": agreement}


def bench_pq_search(repeats: int, rcs_size: int = 8192,
                    num_queries: int = 512, k: int = 5,
                    dim: int = 512) -> dict:
    """The product-quantization tier vs the exact float32 scan, d = 512.

    The corpus sits past the flat-int8 exactness bound (d > 260), so
    ``select_quantizer`` on the default "auto" mode must hand back the
    :class:`PQStore`.  The ADC pass replaces the [Q, N] float GEMM with
    per-batch lookup tables (one small GEMM per subspace codebook) plus
    ``num_subspaces`` table gathers per member; the top ``k · overfetch``
    candidates are re-ranked in float32.  Recall@k is measured against the
    exact scan for both the plain and the residual-refined codebooks.
    """
    from repro.core.predictor import (PQStore, QuantizationConfig,
                                      exact_search, select_quantizer)

    embeddings = wide_family_embeddings(rcs_size + num_queries, dim=dim,
                                        seed=0)
    members, queries = embeddings[:rcs_size], embeddings[rcs_size:]

    config = QuantizationConfig(enabled=True)
    store = select_quantizer(members, config)
    assert isinstance(store, PQStore), "auto mode must pick PQ at d=512"
    store.search(queries, members, k)           # warm both code paths
    before, after = interleaved_best(
        lambda: exact_search(queries, members, k),
        lambda: store.search(queries, members, k), repeats)

    exact_idx, _ = exact_search(queries, members, k)
    pq_idx, _ = store.search(queries, members, k)
    recall = float(np.mean([
        len(set(a) & set(e)) / k for a, e in zip(pq_idx, exact_idx)]))

    refined = PQStore(members, QuantizationConfig(enabled=True,
                                                  residual=True))
    refined_idx, _ = refined.search(queries, members, k)
    refined_recall = float(np.mean([
        len(set(a) & set(e)) / k
        for a, e in zip(refined_idx, exact_idx)]))
    return {"rcs_size": rcs_size, "queries": num_queries, "k": k,
            "dim": dim, "dtype": "float32 + pq",
            "num_subspaces": store.num_subspaces,
            "codebook_size": store._codebook_k,
            "overfetch": config.overfetch,
            "recall_at_k": recall,
            "residual_recall_at_k": refined_recall,
            "before_s": before, "after_s": after,
            "speedup": before / after}


def bench_persistent_cache(repeats: int, tmp_root: Path | None = None) -> dict:
    """Kill-and-reload serving-node warm start from the persistent cache.

    Fits an advisor with a disk-backed embedding cache, serves a batch once
    (populating the cache), saves the advisor, *discards the process state*
    (fresh ``load_advisor``, as after a node restart) and replays the same
    traffic.  The replay must hit the disk tier without a single GIN
    forward; the bench also times cold vs warm serving.
    """
    import shutil
    import tempfile

    from repro.core.persistence import load_advisor, save_advisor

    workdir = Path(tempfile.mkdtemp(dir=tmp_root))
    try:
        graphs, labels = synthetic_corpus(64)
        queries = graphs[:32]
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=32, embedding_dim=16, use_incremental=False,
            embedding_cache_dir=str(workdir / "emb-cache"),
            dml=DMLConfig(epochs=2, batch_size=32), seed=0))
        advisor.fit(graphs, labels)

        start = time.perf_counter()
        cold = advisor.recommend_batch(queries, 0.9)
        cold_s = time.perf_counter() - start
        save_advisor(advisor, str(workdir / "advisor.npz"))
        del advisor                              # "kill" the serving node

        reloaded = load_advisor(str(workdir / "advisor.npz"))
        forwards = {"n": 0}
        original_embed = reloaded.encoder.embed

        def counting_embed(batch):
            forwards["n"] += 1
            return original_embed(batch)

        reloaded.encoder.embed = counting_embed
        start = time.perf_counter()
        warm = reloaded.recommend_batch(queries, 0.9)
        warm_s = time.perf_counter() - start
        best = warm_s
        for _ in range(repeats - 1):
            start = time.perf_counter()
            reloaded.recommend_batch(queries, 0.9)
            best = min(best, time.perf_counter() - start)
        assert [r.model for r in cold] == [r.model for r in warm], \
            "warm-started serving diverged from the original node"
        cache = reloaded.embedding_cache
        return {"queries": len(queries),
                "gin_forwards_after_reload": forwards["n"],
                "first_query_from_disk": cache.disk_hits > 0,
                "cold_s": cold_s, "after_s": best, "before_s": cold_s,
                "speedup": cold_s / best}
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def bench_ivf_search(repeats: int, rcs_size: int = 8192,
                     num_queries: int = 512, k: int = 5) -> dict:
    """The IVF coarse partition vs the full-corpus quantized scans.

    Two workloads, one per flat tier: GIN family embeddings at d = 32
    (the int8 regime) and the wide d = 512 synthetic family corpus (the
    PQ regime).  "Before" is the flat store scanning all N members in
    code space; "after" is the same store behind an :class:`IVFStore`
    probing ``nprobe`` of ~sqrt(N) coarse cells.  Both sides share the
    float re-rank, so the delta is purely the scan-set reduction; recall
    is measured against ``exact_search`` on the same queries.
    """
    from repro.core.ivf import IVFStore
    from repro.core.predictor import (PQStore, QuantizationConfig,
                                      QuantizedStore, exact_search)

    graphs, _ = family_corpus(rcs_size + num_queries, seed=0)
    encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=64,
                         embedding_dim=32, seed=0)
    embeddings = encoder.embed(graphs).astype(np.float32)
    members, queries = embeddings[:rcs_size], embeddings[rcs_size:]

    config = QuantizationConfig(enabled=True, ivf=True, ivf_min_size=8)
    flat = QuantizedStore(members, config)
    ivf = IVFStore(members, config, store=QuantizedStore(members, config))
    flat.search(queries, members, k)            # warm both code paths
    ivf.search(queries, members, k)
    before, after = interleaved_best(
        lambda: flat.search(queries, members, k),
        lambda: ivf.search(queries, members, k), repeats)

    exact_idx, _ = exact_search(queries, members, k)
    ivf_idx, _ = ivf.search(queries, members, k)
    recall = float(np.mean([
        len(set(a) & set(e)) / k for a, e in zip(ivf_idx, exact_idx)]))

    wide = wide_family_embeddings(rcs_size + num_queries, dim=512, seed=0)
    wide_members, wide_queries = wide[:rcs_size], wide[rcs_size:]
    pq_flat = PQStore(wide_members, config)
    pq_ivf = IVFStore(wide_members, config,
                      store=PQStore(wide_members, config))
    pq_flat.search(wide_queries, wide_members, k)
    pq_ivf.search(wide_queries, wide_members, k)
    pq_before, pq_after = interleaved_best(
        lambda: pq_flat.search(wide_queries, wide_members, k),
        lambda: pq_ivf.search(wide_queries, wide_members, k), repeats)
    wide_exact_idx, _ = exact_search(wide_queries, wide_members, k)
    pq_ivf_idx, _ = pq_ivf.search(wide_queries, wide_members, k)
    pq_recall = float(np.mean([
        len(set(a) & set(e)) / k
        for a, e in zip(pq_ivf_idx, wide_exact_idx)]))

    return {"rcs_size": rcs_size, "queries": num_queries, "k": k,
            "cells": ivf.num_cells, "nprobe": config.nprobe,
            "recall_at_k": recall, "before_s": before, "after_s": after,
            "speedup": before / after,
            "pq_dim": 512, "pq_cells": pq_ivf.num_cells,
            "pq_recall_at_k": pq_recall, "pq_before_s": pq_before,
            "pq_after_s": pq_after, "pq_speedup": pq_before / pq_after}


def bench_restart_warm(repeats: int, tmp_root: Path | None = None) -> dict:
    """``load_advisor`` cost as the corpus grows 8×: retrain vs warm attach.

    Builds serving-shaped advisors (real encoder weights, synthetic wide
    RCS rows — no training loop, so the measured cost is purely the load
    path) over 1 024- and 8 192-member corpora with the ivf-pq tier
    enabled, and times two loads of each: a rows-only save (the
    pre-version-2 behavior — codebooks retrain on attach) vs a version-2
    save carrying the quantizer state.  The warm load must stay flat as
    the corpus grows and must invoke ``seeded_kmeans`` exactly zero
    times; it must also answer member queries byte-identically to the
    node that saved it.
    """
    import shutil
    import tempfile

    import repro.core.serving.quantizers as quantizers_module
    from repro.core.graph import FeatureGraph
    from repro.core.predictor import (QuantizationConfig,
                                      RecommendationCandidateSet)
    from repro.core.persistence import load_advisor, save_advisor
    from repro.testbed.scores import ScoreLabel

    dim, vertex_dim = 64, 4
    quant = QuantizationConfig(enabled=True, mode="pq", ivf=True,
                               min_size=8, ivf_min_size=8)

    def build_advisor(n: int) -> AutoCE:
        # ann=None keeps the neighbor index out of the load path, so the
        # cold/warm delta isolates the quantizer attach cost.
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=8, embedding_dim=dim, use_incremental=False,
            ann=None, quantization=quant, seed=0))
        advisor.encoder = GINEncoder(vertex_dim, hidden_dim=8,
                                     embedding_dim=dim, seed=0)
        rows = wide_family_embeddings(n, dim=dim, seed=0)
        labels = [ScoreLabel(model_names=MODELS,
                             sa=np.full(len(MODELS), 0.5),
                             se=np.full(len(MODELS), 0.5))
                  for _ in range(n)]
        # A constant handful of tiny graphs: the graph payload must not
        # scale with the corpus, so load time isolates the quantizer path.
        advisor._graphs = [
            FeatureGraph(name=f"g{i}",
                         vertices=np.zeros((2, vertex_dim)),
                         edges=np.zeros((2, 2)))
            for i in range(4)
        ]
        advisor._labels = labels
        advisor.rcs = RecommendationCandidateSet(rows, labels,
                                                 quantization=quant)
        return advisor

    workdir = Path(tempfile.mkdtemp(dir=tmp_root))
    original_kmeans = quantizers_module.seeded_kmeans
    kmeans_calls = {"n": 0}

    def counting_kmeans(*args, **kwargs):
        kmeans_calls["n"] += 1
        return original_kmeans(*args, **kwargs)

    try:
        sizes = (1024, 8192)
        cold_s: dict[int, float] = {}
        warm_s: dict[int, float] = {}
        warm_kmeans: dict[int, int] = {}
        for n in sizes:
            advisor = build_advisor(n)
            cold_path = str(workdir / f"cold_{n}.npz")
            warm_path = str(workdir / f"warm_{n}.npz")
            save_advisor(advisor, cold_path, include_quantizer_state=False)
            save_advisor(advisor, warm_path)
            cold, warm = interleaved_best(
                lambda: load_advisor(cold_path),
                lambda: load_advisor(warm_path), repeats)
            cold_s[n], warm_s[n] = cold, warm

            quantizers_module.seeded_kmeans = counting_kmeans
            kmeans_calls["n"] = 0
            try:
                reloaded = load_advisor(warm_path)
            finally:
                quantizers_module.seeded_kmeans = original_kmeans
            warm_kmeans[n] = kmeans_calls["n"]
            probes = advisor.rcs.embeddings[:32]
            expect_idx, expect_dist = advisor.rcs.search(probes, 5)
            got_idx, got_dist = reloaded.rcs.search(probes, 5)
            assert (np.array_equal(expect_idx, got_idx)
                    and np.array_equal(expect_dist, got_dist)), \
                "warm-restored advisor diverged from the saving node"
        small, large = sizes
        return {"sizes": list(sizes), "dim": dim, "tier": "ivf-pq",
                "cold_load_s": {str(n): cold_s[n] for n in sizes},
                "warm_load_s": {str(n): warm_s[n] for n in sizes},
                "cold_growth_8x": cold_s[large] / cold_s[small],
                "warm_growth_8x": warm_s[large] / warm_s[small],
                "kmeans_calls_on_warm_load": max(warm_kmeans.values()),
                "before_s": cold_s[large], "after_s": warm_s[large],
                "speedup": cold_s[large] / warm_s[large]}
    finally:
        quantizers_module.seeded_kmeans = original_kmeans
        shutil.rmtree(workdir, ignore_errors=True)


def bench_daemon_microbatch(repeats: int, rcs_size: int = 8192,
                            num_requests: int = 128, k: int = 5) -> dict:
    """The daemon stream: serial one-request-at-a-time loop vs the
    micro-batch coalescer draining the same stream.

    Both paths run the real ``iter_batches`` coalescer over the same
    line stream (an in-memory stream drains greedily, so the batched
    run coalesces ``max_batch`` requests per ``recommend_batch`` call
    while ``max_batch=1`` recovers the old serial loop).  The coalesced
    answers must match the serial ones bit-for-bit per request.
    """
    import io

    from repro.core.serving import (KNNPredictor,
                                    RecommendationCandidateSet)
    from repro.serving import BatchingConfig, iter_batches
    from repro.testbed.scores import DatasetLabel

    rng = np.random.default_rng(11)
    members = rng.normal(size=(rcs_size, 32))
    labels = [DatasetLabel(MODELS, rng.uniform(1, 10, 3),
                           rng.uniform(0.001, 0.01, 3))
              for _ in range(rcs_size)]
    rcs = RecommendationCandidateSet(members, labels)
    predictor = KNNPredictor()
    queries = rng.normal(size=(num_requests, 32))
    stream_text = "".join(f"{i}\n" for i in range(num_requests))

    serial = BatchingConfig(max_batch=1, window_ms=0)
    coalesced = BatchingConfig(max_batch=16, window_ms=0)

    def drain(config: BatchingConfig) -> list:
        recs = []
        for batch in iter_batches(io.StringIO(stream_text), config):
            ids = [int(line) for line in batch]
            recs.extend(predictor.recommend_batch(
                queries[ids], rcs, 0.9, k=k))
        return recs

    before, after = interleaved_best(
        lambda: drain(serial), lambda: drain(coalesced), repeats)

    serial_recs, coalesced_recs = drain(serial), drain(coalesced)
    assert len(serial_recs) == len(coalesced_recs) == num_requests
    for s, c in zip(serial_recs, coalesced_recs):
        # Picks, neighbor sets and score vectors are bit-for-bit; the
        # raw distances may differ by 1-2 ulp because BLAS reduces a
        # 1-row query (gemv) in a different order than a blocked gemm.
        assert (s.model == c.model
                and np.array_equal(s.neighbor_indices, c.neighbor_indices)
                and np.array_equal(s.score_vector, c.score_vector)
                and np.allclose(s.neighbor_distances, c.neighbor_distances,
                                rtol=0, atol=1e-12)), \
            "coalesced daemon answers diverged from the serial loop"
    return {"rcs_size": rcs_size, "requests": num_requests,
            "max_batch": coalesced.max_batch, "k": k,
            "before_s": before, "after_s": after,
            "speedup": before / after}


#: Bench name → runner, in the canonical reporting order.
BENCHES = {
    "featurize_corpus": bench_featurize,
    "dml_epoch": bench_dml_epoch,
    "recommend_batch": bench_recommend_batch,
    "ann_search": bench_ann_search,
    "persistent_cache": bench_persistent_cache,
    "float32_epoch": bench_float32_epoch,
    "e2lsh_search": bench_e2lsh_search,
    "quantized_search": bench_quantized_search,
    "pq_search": bench_pq_search,
    "ivf_search": bench_ivf_search,
    "restart_warm": bench_restart_warm,
    "daemon_microbatch": bench_daemon_microbatch,
    "e2e_advisor_loop": bench_e2e_loop,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--output", type=Path,
                        default=RESULTS_DIR / "BENCH_micro.json")
    parser.add_argument("--only", nargs="+", choices=sorted(BENCHES),
                        default=None, metavar="NAME",
                        help="run only these benches and merge their "
                             "results into the existing JSON")
    args = parser.parse_args(argv)

    selected = args.only or list(BENCHES)
    results: dict = {}
    if args.only and args.output.exists():
        results = json.loads(args.output.read_text())
    for name in BENCHES:
        if name in selected:
            results[name] = BENCHES[name](args.repeats)
    # Keep the canonical order regardless of what was merged when.
    results = {name: results[name] for name in BENCHES if name in results}

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(results, indent=2) + "\n")

    width = max(len(name) for name in results)
    print(f"{'stage':<{width}}  {'before':>10}  {'after':>10}  speedup")
    for name, r in results.items():
        print(f"{name:<{width}}  {r['before_s'] * 1e3:>8.1f}ms  "
              f"{r['after_s'] * 1e3:>8.1f}ms  {r['speedup']:>6.1f}x")
    print(f"[saved to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
