"""Table V: end-to-end latency in the PostgreSQL substitute."""

from repro.experiments import table5_e2e


def test_table5_e2e(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: table5_e2e.run(suite), rounds=1, iterations=1)
    save_result("table5_e2e", result.text)
    # Shape checks: TrueCard's plans are at least as good as the PostgreSQL
    # estimator's on multi-table workloads (plan quality dominates there).
    multi = result.totals["multi-table"]
    assert multi["TrueCard"][0] <= multi["PostgreSQL"][0] * 1.15
