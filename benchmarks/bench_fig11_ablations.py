"""Figure 11: ablations of deep metric learning and incremental learning."""

import numpy as np

from repro.experiments import fig11_ablations


def test_fig11_ablations(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: fig11_ablations.run(suite), rounds=1, iterations=1)
    save_result("fig11_ablations", result.text)
    # Shape check: DML helps on average across the three weights.
    assert (np.mean(list(result.dml["AutoCE"].values()))
            <= np.mean(list(result.dml["Without DML"].values())) + 0.02)
