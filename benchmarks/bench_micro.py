"""Micro-benchmarks of the hot paths.

These exercise the operations whose latency the paper cares about —
AutoCE's inference path (featurize → GIN embed → KNN), exact true-card
counting, and the per-query estimation cost of representative CE models —
plus the throughput benches of the vectorized fast path (corpus
featurization, one DML epoch over the corpus tensor cache, and batched
serving).  ``benchmarks/run_benchmarks.py`` runs the before/after
comparison against the scalar reference paths and emits
``results/BENCH_micro.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ce.base import TrainingContext
from repro.ce.lwnn import LWNN, LWNNConfig
from repro.ce.neurocard import NeuroCard, NeuroCardConfig
from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig, DMLTrainer
from repro.core.encoder import GINEncoder
from repro.core.graph import build_feature_graph
from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import random_spec
from repro.db.counting import count_join
from repro.workload.generator import generate_workload


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(random_spec(123, ranges={"num_tables": (4, 4)}))


@pytest.fixture(scope="module")
def workload(dataset):
    return generate_workload(dataset, num_train=60, num_test=20, seed=1)


@pytest.fixture(scope="module")
def ctx(dataset, workload):
    return TrainingContext.build(dataset, workload, sample_size=800)


def test_bench_feature_extraction(benchmark, dataset):
    graph = benchmark(build_feature_graph, dataset)
    assert graph.num_tables == dataset.num_tables


def test_bench_exact_counting(benchmark, dataset, workload):
    query = max(workload.test, key=lambda q: len(q.tables))
    count = benchmark(count_join, dataset, query.tables,
                      query.predicate_tuples())
    assert count == query.true_cardinality


def test_bench_autoce_inference(benchmark, suite, dataset):
    advisor = suite.autoce()
    graph = advisor.featurize(dataset)
    rec = benchmark(advisor.recommend, graph, 0.9)
    assert rec.model


def test_bench_lwnn_estimate(benchmark, ctx, workload):
    model = LWNN(LWNNConfig(epochs=20))
    model.fit(ctx)
    query = workload.test[0]
    value = benchmark(model.estimate, query)
    assert value >= 1.0


def test_bench_neurocard_estimate(benchmark, ctx, workload):
    model = NeuroCard(NeuroCardConfig(epochs=2, hidden=24, num_samples=32))
    model.fit(ctx)
    query = workload.test[0]
    value = benchmark(model.estimate, query)
    assert value >= 1.0


def test_bench_gin_embedding(benchmark, suite, dataset):
    advisor = suite.autoce()
    graph = advisor.featurize(dataset)
    embedding = benchmark(advisor.encoder.embed_one, graph)
    assert embedding.shape == (advisor.config.embedding_dim,)


# ----------------------------------------------------------------------
# Fast-path throughput benches
# ----------------------------------------------------------------------

from synth import MODELS, synthetic_corpus as _synthetic_corpus  # noqa: E402

@pytest.fixture(scope="module")
def corpus_datasets():
    return [generate_dataset(random_spec(1000 + i, ranges={"num_tables": (2, 4)}))
            for i in range(20)]


def test_bench_featurize_corpus(benchmark, corpus_datasets):
    """Vectorized featurization of a 20-dataset corpus."""
    graphs = benchmark(lambda: [build_feature_graph(d) for d in corpus_datasets])
    assert len(graphs) == len(corpus_datasets)


def test_bench_dml_epoch(benchmark):
    """One DML epoch at batch_size=32 over the corpus tensor cache."""
    graphs, labels = _synthetic_corpus(96)
    encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=64,
                         embedding_dim=32, seed=0)
    trainer = DMLTrainer(encoder, DMLConfig(batch_size=32, seed=0))
    benchmark(trainer.train, graphs, labels, 1)


def test_bench_recommend_batch(benchmark):
    """Batched serving of 100 repeat-traffic queries in one call."""
    graphs, labels = _synthetic_corpus(64)
    advisor = AutoCE(AutoCEConfig(
        hidden_dim=32, embedding_dim=16, use_incremental=False,
        dml=DMLConfig(epochs=2, batch_size=32), seed=0))
    advisor.fit(graphs, labels)
    rng = np.random.default_rng(7)
    queries = [graphs[i] for i in rng.integers(0, len(graphs), size=100)]
    recs = benchmark(advisor.recommend_batch, queries, 0.9)
    assert len(recs) == 100 and all(r.model in MODELS for r in recs)
