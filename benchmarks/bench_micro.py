"""Micro-benchmarks of the hot paths.

These exercise the operations whose latency the paper cares about —
AutoCE's inference path (featurize → GIN embed → KNN), exact true-card
counting, and the per-query estimation cost of representative CE models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ce.base import TrainingContext
from repro.ce.lwnn import LWNN, LWNNConfig
from repro.ce.neurocard import NeuroCard, NeuroCardConfig
from repro.core.graph import build_feature_graph
from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import random_spec
from repro.db.counting import count_join
from repro.workload.generator import generate_workload


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(random_spec(123, ranges={"num_tables": (4, 4)}))


@pytest.fixture(scope="module")
def workload(dataset):
    return generate_workload(dataset, num_train=60, num_test=20, seed=1)


@pytest.fixture(scope="module")
def ctx(dataset, workload):
    return TrainingContext.build(dataset, workload, sample_size=800)


def test_bench_feature_extraction(benchmark, dataset):
    graph = benchmark(build_feature_graph, dataset)
    assert graph.num_tables == dataset.num_tables


def test_bench_exact_counting(benchmark, dataset, workload):
    query = max(workload.test, key=lambda q: len(q.tables))
    count = benchmark(count_join, dataset, query.tables,
                      query.predicate_tuples())
    assert count == query.true_cardinality


def test_bench_autoce_inference(benchmark, suite, dataset):
    advisor = suite.autoce()
    graph = advisor.featurize(dataset)
    rec = benchmark(advisor.recommend, graph, 0.9)
    assert rec.model


def test_bench_lwnn_estimate(benchmark, ctx, workload):
    model = LWNN(LWNNConfig(epochs=20))
    model.fit(ctx)
    query = workload.test[0]
    value = benchmark(model.estimate, query)
    assert value >= 1.0


def test_bench_neurocard_estimate(benchmark, ctx, workload):
    model = NeuroCard(NeuroCardConfig(epochs=2, hidden=24, num_samples=32))
    model.fit(ctx)
    query = workload.test[0]
    value = benchmark(model.estimate, query)
    assert value >= 1.0


def test_bench_gin_embedding(benchmark, suite, dataset):
    advisor = suite.autoce()
    graph = advisor.featurize(dataset)
    embedding = benchmark(advisor.encoder.embed_one, graph)
    assert embedding.shape == (advisor.config.embedding_dim,)
