"""Figure 13: ablation of online adapting on drifted datasets."""

import numpy as np

from repro.experiments import fig13_online_adapting


def test_fig13_online_adapting(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: fig13_online_adapting.run(suite), rounds=1, iterations=1)
    save_result("fig13_online_adapting", result.text)
    # Shape check: adapting reduces the mean D-error on drifted datasets.
    assert (np.mean(list(result.with_adapting.values()))
            <= np.mean(list(result.without.values())) + 0.05)
