"""Figure 7: weighted vs basic contrastive loss."""

import numpy as np

from repro.experiments import fig7_loss_ablation


def test_fig7_loss_ablation(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: fig7_loss_ablation.run(suite), rounds=1, iterations=1)
    save_result("fig7_loss_ablation", result.text)
    # Shape check: the weighted loss wins on average across weights.
    assert (np.mean(list(result.weighted.values()))
            <= np.mean(list(result.basic.values())) + 0.02)
