"""Table III: the CEB-like benchmark (query-driven candidates only)."""

import numpy as np

from repro.experiments import table3_ceb


def test_table3_ceb(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: table3_ceb.run(suite), rounds=1, iterations=1)
    save_result("table3_ceb", result.text)
    # Shape check: AutoCE achieves the lowest mean D-error across weights.
    autoce = np.mean(list(result.d_error["AutoCE"].values()))
    for model in ("MSCN", "LW-NN", "LW-XGB"):
        assert autoce <= np.mean(list(result.d_error[model].values())) + 1e-9
