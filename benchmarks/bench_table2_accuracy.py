"""Table II: recommendation accuracy of the five advisors."""

import numpy as np

from repro.experiments import table2_accuracy


def test_table2_accuracy(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: table2_accuracy.run(suite), rounds=1, iterations=1)
    save_result("table2_accuracy", result.text)

    # Shape checks: AutoCE is far above Rule overall, leads (within noise)
    # on the in-distribution synthetic suite, and stays within a few points
    # of the best advisor overall.  (On the out-of-distribution preset
    # clones the MLP/Sampling baselines transfer slightly better at this
    # corpus scale — recorded as a deviation in EXPERIMENTS.md.)
    def mean_accuracy(advisor, suites=None):
        values = []
        for suite_name, per_weight in result.accuracy.items():
            if suites is not None and not any(s in suite_name for s in suites):
                continue
            for per_advisor in per_weight.values():
                if advisor in per_advisor:
                    values.extend(per_advisor[advisor].values())
        return float(np.mean(values))

    autoce = mean_accuracy("AutoCE")
    assert autoce >= mean_accuracy("Rule") + 0.2
    # Sampling pays full online training per dataset (the cost Fig. 12
    # charges it for), so it is only held to the synthetic-suite check.
    for advisor in ("MLP", "Knn", "Sampling"):
        assert (mean_accuracy("AutoCE", suites=("Synthetic",))
                >= mean_accuracy(advisor, suites=("Synthetic",)) - 0.05)
    for advisor in ("MLP", "Knn"):
        assert autoce >= mean_accuracy(advisor) - 0.12
