"""Table IV: D-error of the KNN predictor as k varies."""

import numpy as np

from repro.experiments import table4_knn_k


def test_table4_knn_k(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: table4_knn_k.run(suite), rounds=1, iterations=1)
    save_result("table4_knn_k", result.text)
    # Shape check (U-curve): a moderate k beats both extremes on average.
    ks = sorted(next(iter(result.d_error.values())))
    means = {k: np.mean([result.d_error[w][k] for w in result.d_error])
             for k in ks}
    interior = [means[k] for k in ks[1:-1]]
    assert min(interior) <= means[ks[0]] + 1e-9
    assert min(interior) <= means[ks[-1]] + 1e-9
