"""Extensibility bench: FLAT joins the candidate set via the registry."""

from repro.experiments import ext_flat


def test_ext_flat(benchmark, suite, save_result):
    result = benchmark.pedantic(
        lambda: ext_flat.run(suite), rounds=1, iterations=1)
    save_result("ext_flat", result.text)
    assert "FLAT" in result.model_names
    # Shape check: no single model (including FLAT) wins everywhere —
    # the no-free-lunch pattern of Fig. 1.
    for w, counts in result.wins.items():
        assert max(counts.values()) < sum(counts.values())
    # FLAT is competitive: strictly better than the worst incumbent on
    # mean accuracy score.
    scores = dict(result.mean_scores)
    flat = scores.pop("FLAT")
    assert flat > min(scores.values())
