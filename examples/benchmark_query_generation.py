"""Benchmark-query generation with cardinality constraints.

The paper's intro scenario: a user wants to generate a large benchmark of
queries whose result cardinalities fall inside target buckets (e.g. small /
medium / large results).  Every candidate query needs a cardinality check,
so the CE step must be *fast* — the user weights efficiency heavily
(w_a = 0.2) and asks the advisor which model to deploy.  The advisor-chosen
model then filters tens of thousands of candidate queries per second,
without executing any of them.

Run:  python examples/benchmark_query_generation.py
"""

import time

import numpy as np

from repro.ce.base import TrainingContext
from repro.ce.registry import build_model
from repro.core import AutoCE, AutoCEConfig, DMLConfig
from repro.datagen import generate_dataset, random_spec
from repro.db.counting import count_join
from repro.experiments.corpus import label_one
from repro.testbed import TestbedConfig
from repro.workload.generator import generate_query, generate_workload

TESTBED = TestbedConfig(num_train_queries=100, num_test_queries=20,
                        sample_size=600, made_epochs=3)

QUERIES_PER_BUCKET = 30


def derive_buckets(model, dataset, rng, templates, probes: int = 300) -> dict:
    """Split the dataset's own result-size distribution into three buckets."""
    from repro.workload.generator import generate_query

    estimates = [model.estimate(generate_query(dataset, rng, templates))
                 for _ in range(probes)]
    lo = float(np.quantile(estimates, 0.33))
    hi = float(np.quantile(estimates, 0.80))
    return {"small": (1, lo), "medium": (lo, hi), "large": (hi, 10**12)}


def main() -> None:
    print("Training the advisor offline...")
    entries = [label_one(random_spec(i), TESTBED) for i in range(10)]
    advisor = AutoCE(AutoCEConfig(dml=DMLConfig(epochs=20)))
    advisor.fit([e.graph for e in entries], [e.label for e in entries])

    dataset = generate_dataset(random_spec(777))
    print(f"\nTarget dataset: {len(dataset.tables)} tables, "
          f"{sum(t.num_rows for t in dataset.tables.values())} rows")

    # The generator calls the CE model once per candidate query, so pick
    # the model under an efficiency-heavy weighting.
    rec = advisor.recommend(dataset, accuracy_weight=0.2)
    print(f"advisor (w_a = 0.2) picked: {rec.model}")

    print(f"\nfitting {rec.model} once on the target dataset...")
    workload = generate_workload(dataset, num_train=120, num_test=10, seed=1)
    model = build_model(rec.model)
    model.fit(TrainingContext.build(dataset, workload, seed=0))

    print("generating benchmark queries with cardinality constraints:")
    rng = np.random.default_rng(99)
    templates = dataset.connected_subsets()
    buckets = derive_buckets(model, dataset, rng, templates)
    for name, (lo, hi) in buckets.items():
        print(f"  bucket {name:7s}: estimated rows in [{lo:,.0f}, {hi:,.0f}]")
    benchmark = {name: [] for name in buckets}
    candidates = 0
    start = time.perf_counter()
    while any(len(qs) < QUERIES_PER_BUCKET for qs in benchmark.values()):
        candidates += 1
        query = generate_query(dataset, rng, templates)
        estimate = model.estimate(query)
        for name, (lo, hi) in buckets.items():
            if lo <= estimate <= hi and len(benchmark[name]) < QUERIES_PER_BUCKET:
                benchmark[name].append(query)
                break
        if candidates > 20_000:
            break
    elapsed = time.perf_counter() - start
    print(f"  screened {candidates} candidates in {elapsed:.2f}s "
          f"({candidates / elapsed:,.0f} queries/s, zero executions)")

    # Validate the buckets against exact counts on a sample.
    print("\nvalidating 10 sampled queries per bucket against true counts:")
    for name, (lo, hi) in buckets.items():
        queries = benchmark[name][:10]
        hits = 0
        for query in queries:
            true = count_join(dataset, query.tables, query.predicate_tuples())
            if lo <= max(true, 1) <= hi:
                hits += 1
        print(f"  {name:7s} [{lo:>10,.0f}, {hi:>14,.0f}]: "
              f"{hits}/{len(queries)} inside the target bucket")
    example = benchmark["medium"][0] if benchmark["medium"] else None
    if example is not None:
        print(f"\nexample generated query:\n  {example.sql()}")


if __name__ == "__main__":
    main()
