"""Shipping a trained advisor: train once offline, serve anywhere.

The deployment split of the paper's Fig. 2: an offline node pays the
labeling + DML training cost once and exports the advisor as a single
``.npz`` artifact; serving nodes load it and answer recommendations in
milliseconds with no access to the training corpus.  The same artifact
keeps enough state for the serving node to run drift detection and online
adaptation (Sec. V-E).

Run:  python examples/advisor_shipping.py
"""

import os
import tempfile
import time

from repro.core import AutoCE, AutoCEConfig, DMLConfig, load_advisor, save_advisor
from repro.datagen import generate_dataset, random_spec
from repro.experiments.corpus import label_one
from repro.testbed import TestbedConfig

TESTBED = TestbedConfig(num_train_queries=100, num_test_queries=20,
                        sample_size=600, made_epochs=3)


def offline_training_node(path: str) -> None:
    print("[offline node] labeling 10 datasets and training the advisor...")
    entries = [label_one(random_spec(i), TESTBED) for i in range(10)]
    advisor = AutoCE(AutoCEConfig(dml=DMLConfig(epochs=20)))
    advisor.fit([e.graph for e in entries], [e.label for e in entries])
    save_advisor(advisor, path)
    size_kb = os.path.getsize(path) / 1024
    print(f"[offline node] exported advisor to {path} ({size_kb:.0f} KiB)")


def serving_node(path: str) -> None:
    print("\n[serving node] loading the advisor artifact...")
    advisor = load_advisor(path)

    for i, weight in enumerate((1.0, 0.5, 0.1)):
        dataset = generate_dataset(random_spec(40_000 + i))
        start = time.perf_counter()
        rec = advisor.recommend(dataset, accuracy_weight=weight)
        elapsed_ms = (time.perf_counter() - start) * 1000
        drift = "drifted!" if advisor.is_drifted(dataset) else "in-distribution"
        print(f"[serving node] tenant-{i} (w_a={weight}): {rec.model:10s} "
              f"in {elapsed_ms:.1f} ms  [{drift}]")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "advisor.npz")
        offline_training_node(path)
        serving_node(path)
    print("\nThe artifact is self-contained: no corpus, no cache, no "
          "retraining on the serving path.")


if __name__ == "__main__":
    main()
