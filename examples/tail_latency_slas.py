"""Choosing a CE model under tail-sensitive accuracy SLAs.

The paper scores accuracy by *mean* Q-error, but notes (Sec. IV-B2) that
other percentiles — 50th, 95th, 99th — are equally valid.  The choice
matters: a model with a great average but a fat error tail is a poor fit
for an optimizer SLA that punishes the worst plans.  Labels in this
library record all four statistics, so the same testbed pass can answer
"best on average" and "best at the 99th percentile" without re-measuring.

Run:  python examples/tail_latency_slas.py
"""

from repro.datagen import generate_dataset, random_spec
from repro.testbed import TestbedConfig, run_testbed
from repro.testbed.scores import ACCURACY_METRICS

TESTBED = TestbedConfig(num_train_queries=150, num_test_queries=60,
                        sample_size=800, made_epochs=4)


def main() -> None:
    dataset = generate_dataset(random_spec(4242))
    print(f"labeling dataset {dataset.name!r} "
          f"({len(dataset.tables)} tables) with the CE testbed...\n")
    label = run_testbed(dataset, config=TESTBED)

    header = (f"{'model':<12}" + "".join(f"{m:>9}" for m in ACCURACY_METRICS)
              + f"{'lat ms':>9}")
    print(header)
    print("-" * len(header))
    for i, model in enumerate(label.model_names):
        stats = "".join(f"{label.accuracy_stat(m)[i]:>9.2f}"
                        for m in ACCURACY_METRICS)
        print(f"{model:<12}{stats}{label.latency_means[i] * 1000:>9.3f}")

    print("\nbest model by accuracy statistic (w_a = 1.0):")
    for metric in ACCURACY_METRICS:
        scored = label.with_accuracy_metric(metric)
        print(f"  {metric:>6}: {scored.best_model(1.0)}")

    print("\nbest model with a 30% efficiency weighting (w_a = 0.7):")
    for metric in ("mean", "p99"):
        scored = label.with_accuracy_metric(metric)
        print(f"  {metric:>6}: {scored.best_model(0.7)}")

    print("\nA tail-sensitive SLA (p99) and an average-case SLA (mean) can "
          "legitimately deploy different models on the same data.")


if __name__ == "__main__":
    main()
