"""Choosing a CE model under tail-sensitive accuracy SLAs.

The paper scores accuracy by *mean* Q-error, but notes (Sec. IV-B2) that
other percentiles — 50th, 95th, 99th — are equally valid.  The choice
matters: a model with a great average but a fat error tail is a poor fit
for an optimizer SLA that punishes the worst plans.  Labels in this
library record all four statistics, so the same testbed pass can answer
"best on average" and "best at the 99th percentile" without re-measuring.

Accuracy SLAs are only half the story: a deployed advisor also carries a
*latency* SLA.  The second half of this example serves a sharded corpus
through the fault-tolerant serving runtime under a per-request deadline
and reports the p50/p95/p99 the SLA would be written against — including
what happens when one shard stalls and the deadline forces a partial,
coverage-flagged answer instead of a blown budget.

Run:  python examples/tail_latency_slas.py
"""

import numpy as np

from repro.datagen import generate_dataset, random_spec
from repro.serving import ShardedServer
from repro.testbed import FaultPlan, TestbedConfig, run_testbed, \
    summarize_latencies
from repro.testbed.scores import ACCURACY_METRICS

TESTBED = TestbedConfig(num_train_queries=150, num_test_queries=60,
                        sample_size=800, made_epochs=4)

#: Corpus / traffic shape for the latency-SLA half of the example.
CORPUS_SIZE = 240
EMBED_DIM = 16
NUM_REQUESTS = 40
QUERIES_PER_REQUEST = 4
DEADLINE_SECONDS = 0.25


def serve_under_latency_sla() -> None:
    """Serve a sharded corpus under a deadline and print the SLA numbers.

    The corpus here stands in for an RCS of dataset embeddings; the point
    is the *serving* contract, so synthetic vectors keep the example fast.
    One shard is stalled mid-stream by a seeded ``FaultPlan`` — exactly
    the situation a latency SLA is written for — and the report shows the
    deadline converting that stall into a few degraded, coverage-flagged
    answers instead of a blown p99.
    """
    rng = np.random.default_rng(7)
    corpus = rng.normal(size=(CORPUS_SIZE, EMBED_DIM))
    stalled_request = NUM_REQUESTS // 2
    plan = FaultPlan(seed=7,
                     slow_at={1: (stalled_request, 4 * DEADLINE_SECONDS)})

    latencies, degraded = [], []
    with ShardedServer(corpus, num_shards=3, deadline=DEADLINE_SECONDS,
                       fault_plan=plan) as server:
        for _ in range(NUM_REQUESTS):
            queries = rng.normal(size=(QUERIES_PER_REQUEST, EMBED_DIM))
            result = server.search(queries, k=5)
            latencies.append(result.latency)
            if result.degraded:
                degraded.append(result)

    stats = summarize_latencies(latencies)
    print(f"\nserving SLA: {NUM_REQUESTS} requests x {QUERIES_PER_REQUEST} "
          f"queries over {CORPUS_SIZE} members, 3 shards, "
          f"deadline {DEADLINE_SECONDS * 1000:.0f} ms")
    print("".join(f"{name:>10}" for name in ("p50", "p95", "p99", "max")))
    print("".join(f"{stats[name] * 1000:>8.2f}ms"
                  for name in ("p50", "p95", "p99", "max")))
    print(f"degraded responses: {len(degraded)}/{NUM_REQUESTS}")
    for result in degraded:
        print(f"  coverage {result.coverage:.2f} "
              f"(shards cut: {list(result.missing)})")
    print("The deadline turns a stalled shard into partial, "
          "coverage-flagged answers — the p99 the SLA is written against "
          "stays bounded by the budget, not by the slowest shard.")


def main() -> None:
    dataset = generate_dataset(random_spec(4242))
    print(f"labeling dataset {dataset.name!r} "
          f"({len(dataset.tables)} tables) with the CE testbed...\n")
    label = run_testbed(dataset, config=TESTBED)

    header = (f"{'model':<12}" + "".join(f"{m:>9}" for m in ACCURACY_METRICS)
              + f"{'lat ms':>9}")
    print(header)
    print("-" * len(header))
    for i, model in enumerate(label.model_names):
        stats = "".join(f"{label.accuracy_stat(m)[i]:>9.2f}"
                        for m in ACCURACY_METRICS)
        print(f"{model:<12}{stats}{label.latency_means[i] * 1000:>9.3f}")

    print("\nbest model by accuracy statistic (w_a = 1.0):")
    for metric in ACCURACY_METRICS:
        scored = label.with_accuracy_metric(metric)
        print(f"  {metric:>6}: {scored.best_model(1.0)}")

    print("\nbest model with a 30% efficiency weighting (w_a = 0.7):")
    for metric in ("mean", "p99"):
        scored = label.with_accuracy_metric(metric)
        print(f"  {metric:>6}: {scored.best_model(0.7)}")

    print("\nA tail-sensitive SLA (p99) and an average-case SLA (mean) can "
          "legitimately deploy different models on the same data.")

    serve_under_latency_sla()


if __name__ == "__main__":
    main()
