"""Extend AutoCE with a custom cardinality estimator.

Sec. IV-B1: "any newly-emerged CE model ... can be readily incorporated".
This example registers a naive sampling-based estimator, labels datasets
with the extended candidate set, and shows the advisor selecting among the
eight models.

Run:  python examples/custom_ce_model.py
"""

import numpy as np

from repro.ce import CEModel, clip_card, register
from repro.core import AutoCE, AutoCEConfig, DMLConfig
from repro.datagen import generate_dataset, random_spec
from repro.db.counting import count_join
from repro.db.sampling import subsample_dataset
from repro.experiments.corpus import label_one
from repro.testbed import TestbedConfig, run_testbed
from repro.testbed.runner import evaluate_model
from repro.ce.base import TrainingContext
from repro.testbed.scores import DatasetLabel
from repro.workload import generate_workload


class SamplingCE(CEModel):
    """Estimate by exact counting on a 10 % sample (simple, unbiased-ish)."""

    name = "SamplingCE"

    def fit(self, ctx) -> None:
        self._sample = subsample_dataset(ctx.dataset, 0.1, seed=ctx.seed)
        self._scale = ctx.dataset.total_rows / max(1, self._sample.total_rows)

    def estimate(self, query) -> float:
        try:
            count = count_join(self._sample, query.tables,
                               query.predicate_tuples())
        except ValueError:
            return 1.0
        # Each joined table contributes roughly a 1/scale row fraction.
        return clip_card(count * self._scale ** len(query.tables))


def label_with_custom(spec, testbed):
    """Label a dataset with the 7 standard candidates + SamplingCE."""
    dataset = generate_dataset(spec)
    workload = generate_workload(dataset, testbed.num_train_queries,
                                 testbed.num_test_queries, seed=testbed.seed)
    ctx = TrainingContext.build(dataset, workload,
                                sample_size=testbed.sample_size)
    label = run_testbed(dataset, workload, config=testbed)
    custom = evaluate_model(SamplingCE(), ctx)
    return dataset, DatasetLabel(
        model_names=label.model_names + ("SamplingCE",),
        qerror_means=np.append(label.qerror_means, custom.qerror_mean),
        latency_means=np.append(label.latency_means, custom.latency_mean),
    )


def main() -> None:
    register("SamplingCE", SamplingCE)
    testbed = TestbedConfig(num_train_queries=80, num_test_queries=20,
                            sample_size=500, made_epochs=3)

    print("Labeling datasets with the extended candidate set (8 models)...")
    graphs, labels = [], []
    advisor = AutoCE(AutoCEConfig(dml=DMLConfig(epochs=20),
                                  use_incremental=False))
    for i in range(8):
        dataset, label = label_with_custom(random_spec(i), testbed)
        graphs.append(advisor.featurize(dataset))
        labels.append(label)
        print(f"  {dataset.name:16s} best(w_a=1.0) = {label.best_model(1.0)}")

    advisor.fit(graphs, labels)
    target = generate_dataset(random_spec(555))
    rec = advisor.recommend(target, accuracy_weight=0.8)
    print(f"\nrecommendation for an unseen dataset (w_a=0.8): {rec.model}")
    print("score vector:",
          {m: round(float(s), 2) for m, s in rec.ranking()})


if __name__ == "__main__":
    main()
