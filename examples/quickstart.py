"""Quickstart: train AutoCE on a small labeled corpus and get advice.

Walks the full pipeline of the paper's Fig. 3 in miniature:
  Stage 1  generate + label datasets with the CE testbed
  Stage 2/3  train the GIN encoder with deep metric learning (+ Mixup)
  Stage 4  recommend a CE model for an unseen dataset under user weights

Run:  python examples/quickstart.py
"""

from repro.core import AutoCE, AutoCEConfig, DMLConfig
from repro.datagen import generate_dataset, random_spec
from repro.experiments.corpus import label_one
from repro.testbed import TestbedConfig

# Small budgets so the example finishes in ~a minute on a laptop CPU.
TESTBED = TestbedConfig(num_train_queries=120, num_test_queries=25,
                        sample_size=800, made_epochs=4)
NUM_TRAINING_DATASETS = 12


def main() -> None:
    print("Stage 1: generating and labeling the training corpus")
    print("(each dataset is labeled by training & testing all 7 CE models)\n")
    entries = []
    for i in range(NUM_TRAINING_DATASETS):
        entry = label_one(random_spec(i), TESTBED)
        entries.append(entry)
        best = entry.label.best_model(1.0)
        print(f"  {entry.name:16s} tables={entry.graph.num_tables} "
              f"best(accuracy)={best}")

    print("\nStages 2-3: deep metric learning + incremental learning")
    advisor = AutoCE(AutoCEConfig(dml=DMLConfig(epochs=25)))
    advisor.fit([e.graph for e in entries], [e.label for e in entries])
    print(f"  trained encoder on {len(entries)} labeled datasets "
          f"(final DML loss {advisor.loss_history[-1]:.3f})")

    print("\nStage 4: recommendation for an unseen dataset")
    target = generate_dataset(random_spec(10_001))
    print(f"  target: {target.num_tables} tables, {target.total_rows} rows")
    for accuracy_weight in (1.0, 0.7, 0.3):
        rec = advisor.recommend(target, accuracy_weight=accuracy_weight)
        ranking = ", ".join(f"{m}={s:.2f}" for m, s in rec.ranking()[:3])
        print(f"  w_a={accuracy_weight:>3}: use {rec.model:10s} (top-3: {ranking})")

    # Batched serving: many targets share ONE GIN forward pass and one
    # vectorized KNN search; repeat traffic skips the GIN forward via the
    # embedding memo-cache (featurization still runs for raw Dataset inputs
    # — pass prebuilt FeatureGraphs to skip it too).
    print("\nBatched serving: a fleet of targets in one recommend_batch call")
    fleet = [generate_dataset(random_spec(20_000 + i)) for i in range(4)]
    recs = advisor.recommend_batch(fleet, accuracy_weight=0.9)
    for dataset, rec in zip(fleet, recs):
        print(f"  {dataset.name:16s} -> {rec.model}")
    cache = advisor.embedding_cache
    advisor.recommend_batch(fleet, accuracy_weight=0.9)  # all cache hits now
    print(f"  embedding cache: {cache.hits} hits / {cache.misses} misses")

    # Scale-out serving: ship the trained advisor to cheap, restartable
    # serving nodes.  With a persistent cache directory configured, every
    # embedding is write-through to disk, so a node restarted from
    # load_advisor() serves repeat traffic without a single GIN forward —
    # and once the RCS reaches AutoCEConfig().ann.threshold members, the
    # KNN search switches to the multi-probe LSH index automatically.
    # The same workflow from a shell:
    #
    #   python -m repro train --corpus 60 --fast --out advisor.npz
    #   python -m repro serve tenant_a.npz tenant_b.npz \
    #       --advisor advisor.npz --cache-dir /var/cache/autoce --workers 0
    #
    print("\nScale-out serving: persistent embedding cache across a restart")
    import tempfile

    from repro.core import load_advisor, save_advisor

    with tempfile.TemporaryDirectory() as workdir:
        save_advisor(advisor, f"{workdir}/advisor.npz")
        node = load_advisor(f"{workdir}/advisor.npz")        # serving node
        node.config.embedding_cache_dir = f"{workdir}/emb-cache"
        node.recommend_batch(fleet, accuracy_weight=0.9)     # writes to disk
        node = load_advisor(f"{workdir}/advisor.npz")        # restarted node
        node.config.embedding_cache_dir = f"{workdir}/emb-cache"
        node.recommend_batch(fleet, accuracy_weight=0.9)
        print(f"  restarted node: {node.embedding_cache.disk_hits} of "
              f"{len(fleet)} repeats served from disk, 0 GIN forwards")

    # How good was the advice?  Label the target and check the D-error.
    truth = label_one(random_spec(10_001), TESTBED).label
    rec = advisor.recommend(target, accuracy_weight=0.9)
    print(f"\n  oracle best at w_a=0.9: {truth.best_model(0.9)}, "
          f"AutoCE chose {rec.model}, "
          f"D-error = {truth.d_error(rec.model, 0.9):.3f}")


if __name__ == "__main__":
    main()
