"""Inject learned cardinalities into a cost-based query optimizer.

Reproduces the mechanics of the paper's Sec. VII-D in miniature: every
sub-plan of a join query is estimated by a CE model behind the
estimator-provider layer (memo, fallback chain, inference accounting),
the optimizer picks join orders/operators from those estimates, and the
resulting plans are executed for real.  Compare the plans, the true
re-costed plan quality and the wall-clock under (a) the default
Postgres-style estimator, (b) a learned model, (c) true cardinalities.

Run:  python examples/query_optimizer_integration.py
"""

from repro.ce import DeepDB, PostgresEstimator, TrainingContext
from repro.datagen import generate_dataset, random_spec
from repro.engine import (HistogramProvider, ModelProvider, Optimizer,
                          TrueCardProvider, plan_signature, recost_plan,
                          run_e2e)
from repro.workload import generate_workload


def main() -> None:
    spec = random_spec(77, ranges={"num_tables": (4, 4),
                                   "rows": (8000, 12000)})
    dataset = generate_dataset(spec)
    workload = generate_workload(dataset, num_train=150, num_test=15, seed=2)
    ctx = TrainingContext.build(dataset, workload, sample_size=1000)

    print(f"dataset: {dataset.num_tables} tables, {dataset.total_rows} rows")
    postgres = PostgresEstimator()
    postgres.fit(ctx)
    deepdb = DeepDB()
    deepdb.fit(ctx)
    # Pre-fit DeepDB on every sub-template the optimizer may probe.
    deepdb.prepare_templates(dataset.connected_subsets())

    oracle = TrueCardProvider(dataset)
    # The learned model falls back to the histogram if it ever raises or
    # returns a non-finite estimate — the planner never crashes mid-query.
    providers = (
        HistogramProvider(postgres),
        ModelProvider(deepdb, fallback=HistogramProvider(postgres)),
        oracle,
    )

    query = max(workload.test, key=lambda q: len(q.tables))
    print(f"\nexample query: {query.sql()}")
    print(f"true cardinality: {query.true_cardinality}\n")
    optimizer = Optimizer(dataset)
    for provider in providers:
        planned = optimizer.plan(query, provider)
        true_cost = recost_plan(planned.plan, dataset, oracle)
        print(f"--- plan with {provider.name} cardinalities "
              f"(own cost {planned.cost:.0f}, true cost {true_cost:.0f}) ---")
        print(planned.plan.describe())
        print(f"signature: {plan_signature(planned.plan)}")
        print()

    print("end-to-end over the test workload (execution + inference):")
    for provider in providers:
        result = run_e2e(dataset, workload.test, provider)
        stats = provider.stats
        print(f"  {provider.name:10s} run={result.execution_time * 1000:7.1f} ms"
              f"  infer={result.inference_time * 1000:7.1f} ms"
              f"  estimates={stats.calls}"
              f"  memo_hits={stats.memo_hits}"
              f"  fallbacks={stats.fallbacks}")


if __name__ == "__main__":
    main()
