"""Cloud-vendor scenario: advise CE models for many tenants, detect drift.

The paper's motivating application (Sec. I): a cloud data service hosts
many tenant datasets and must pick a CE model for each without costly
online learning.  Tenants have different SLAs — an OLAP tenant wants
accuracy (w_a = 1.0), a query-generation tenant wants fast inference
(w_a = 0.2).  New tenants whose data looks nothing like the training
distribution are flagged by the drift detector and labeled online.

Run:  python examples/cloud_model_advisor.py
"""

from repro.core import AutoCE, AutoCEConfig, DMLConfig
from repro.datagen import generate_dataset, random_spec
from repro.experiments.corpus import label_one
from repro.testbed import TestbedConfig

TESTBED = TestbedConfig(num_train_queries=100, num_test_queries=20,
                        sample_size=600, made_epochs=3)

TENANT_SLAS = {
    "olap-warehouse": 1.0,     # pure accuracy: join ordering quality
    "dashboarding": 0.7,       # mostly accuracy, some latency sensitivity
    "fraud-detection": 0.5,    # balanced
    "query-generation": 0.2,   # mostly inference speed (millions of calls)
}


def main() -> None:
    print("Training the advisor offline on synthetic datasets...")
    entries = [label_one(random_spec(i), TESTBED) for i in range(10)]
    advisor = AutoCE(AutoCEConfig(dml=DMLConfig(epochs=20)))
    advisor.fit([e.graph for e in entries], [e.label for e in entries])

    print("\nOnboarding tenants:")
    for i, (tenant, sla_weight) in enumerate(TENANT_SLAS.items()):
        dataset = generate_dataset(random_spec(20_000 + i))
        rec = advisor.recommend(dataset, accuracy_weight=sla_weight)
        print(f"  {tenant:18s} (w_a={sla_weight}): deploy {rec.model}")

    print("\nA tenant with out-of-distribution data arrives:")
    drift_ranges = {
        "num_tables": (5, 6), "columns_per_table": (6, 8),
        "rows": (3000, 4000), "domain": (200, 400),
        "skew": (0.7, 1.0), "interaction": (0.6, 1.0),
    }
    odd_spec = random_spec(30_000, ranges=drift_ranges)
    odd_dataset = generate_dataset(odd_spec)
    if advisor.is_drifted(odd_dataset):
        print("  drift detected -> falling back to online labeling "
              "(train & test all CE models once)")
        label = label_one(odd_spec, TESTBED).label
        advisor.adapt_online(odd_dataset, label)
        print(f"  labeled online: best model is {label.best_model(0.9)}; "
              "advisor updated")
    else:
        print("  within the trained distribution; serving KNN advice")
    rec = advisor.recommend(odd_dataset, accuracy_weight=0.9)
    print(f"  recommendation for the new tenant: {rec.model}")


if __name__ == "__main__":
    main()
