"""Per-shard tier degradation: a circuit breaker over the serving tiers.

Every shard serves its slice of the RCS at the best tier its corpus
supports — product quantization for wide embeddings, flat int8 codes up to
the exactness bound, the plain float scan as the floor.  A tier is an
*optimization*, never a correctness contract, so a misbehaving tier (a
quantizer whose codes have drifted off the corpus geometry, an LSH table
degenerating into exact fallbacks) must not take the shard down: it is
demoted one rung down the ladder and the shard keeps serving.

:class:`TierBreaker` is the deterministic state machine that drives the
demotions.  It watches the health observables the serving kernels already
expose — ``last_fallback_fraction`` of the bucketed LSH indexes, the
recall self-probe the shard runtime replays against the exact scan, and
the quantizer drift-recalibration counter — and walks a fixed ladder
(e.g. ``("pq", "int8", "exact")``).  Classic circuit-breaker states:

* **closed** — the current tier is healthy; consecutive unhealthy
  observations are counted and ``failure_threshold`` of them trip the
  breaker one rung down.
* **open** — serving at the demoted tier; after ``cooldown`` consecutive
  healthy requests the breaker half-opens.
* **half-open** — the next requests are served at the *promoted* tier as
  probes; ``promote_threshold`` consecutive healthy probes re-promote,
  one unhealthy probe re-opens (and the cooldown restarts).

Everything is request-counted, not wall-clock-timed, so the fault drills
replay bit-identically in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ShardHealth:
    """One observation of a shard's serving health after a request.

    ``fallback_fraction`` is the fraction of queries the shard's LSH index
    served via its exact fallback (0.0 for scan-shaped tiers);
    ``recall_probe`` is the recall@k of the shard's current tier against
    the exact scan on a replayed member sample (None = no probe this
    request); ``drift_events`` counts quantizer drift recalibrations since
    the previous observation; ``errors`` counts serving exceptions.
    """

    fallback_fraction: float = 0.0
    recall_probe: float | None = None
    drift_events: int = 0
    errors: int = 0


@dataclass
class BreakerConfig:
    """Thresholds of the tier breaker (all request-counted)."""

    #: Consecutive unhealthy observations that trip a demotion.
    failure_threshold: int = 3
    #: Healthy requests at the demoted tier before a half-open probe.
    cooldown: int = 16
    #: Consecutive healthy half-open probes that earn re-promotion.
    promote_threshold: int = 2
    #: An observation is unhealthy when the LSH exact-fallback fraction
    #: exceeds this (the hash has stopped bucketing usefully) ...
    max_fallback_fraction: float = 0.75
    #: ... or a recall probe lands below this (the tier's candidate codes
    #: no longer rank true neighbors into the re-rank pool) ...
    min_recall: float = 0.8
    #: ... or more than this many drift recalibrations hit one request
    #: window (the corpus has outrun the frozen calibration repeatedly).
    max_drift_events: int = 2

    def is_healthy(self, health: ShardHealth) -> bool:
        if health.errors > 0:
            return False
        if health.fallback_fraction > self.max_fallback_fraction:
            return False
        if (health.recall_probe is not None
                and health.recall_probe < self.min_recall):
            return False
        return health.drift_events <= self.max_drift_events


@dataclass
class TierBreaker:
    """Walks ``ladder`` down on failure, back up via half-open probes.

    ``tier`` is the tier the *next* request must be served at; call
    :meth:`observe` with the health observation of each served request.
    The last ladder rung (by convention the exact float scan) cannot be
    demoted past — it is the correctness floor, not an optimization.
    """

    ladder: tuple[str, ...]
    config: BreakerConfig = field(default_factory=BreakerConfig)
    position: int = 0
    state: str = "closed"                   # closed | open | half_open
    consecutive_failures: int = 0
    healthy_streak: int = 0
    probe_successes: int = 0
    demotions: int = 0
    promotions: int = 0

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("tier ladder must name at least one tier")

    @property
    def tier(self) -> str:
        """The tier to serve the next request at (the probe tier while
        half-open)."""
        if self.state == "half_open" and self.position > 0:
            return self.ladder[self.position - 1]
        return self.ladder[self.position]

    @property
    def degraded(self) -> bool:
        """True while serving below the top ladder rung."""
        return self.position > 0

    def observe(self, health: ShardHealth) -> str:
        """Record one served request's health; returns the next tier."""
        healthy = self.config.is_healthy(health)
        if self.state == "half_open":
            self._observe_probe(healthy)
        elif self.state == "open":
            self._observe_open(healthy)
        else:
            self._observe_closed(healthy)
        return self.tier

    # -- state transitions ------------------------------------------------
    def _observe_closed(self, healthy: bool) -> None:
        if healthy:
            self.consecutive_failures = 0
            return
        self.consecutive_failures += 1
        if (self.consecutive_failures >= self.config.failure_threshold
                and self.position + 1 < len(self.ladder)):
            self.position += 1
            self.demotions += 1
            self.consecutive_failures = 0
            self.healthy_streak = 0
            self.state = "open"

    def _observe_open(self, healthy: bool) -> None:
        if not healthy:
            # The demoted tier is unhealthy too: keep demoting while there
            # is ladder left (the floor rung absorbs everything).
            self.healthy_streak = 0
            self._observe_closed(healthy)
            if self.state == "closed":
                self.state = "open"
            return
        self.healthy_streak += 1
        if self.healthy_streak >= self.config.cooldown and self.position > 0:
            self.state = "half_open"
            self.probe_successes = 0

    def _observe_probe(self, healthy: bool) -> None:
        if not healthy:
            # Failed probe: stay demoted, restart the cooldown.
            self.state = "open"
            self.healthy_streak = 0
            self.probe_successes = 0
            return
        self.probe_successes += 1
        if self.probe_successes >= self.config.promote_threshold:
            self.position -= 1
            self.promotions += 1
            self.state = "closed" if self.position == 0 else "open"
            self.healthy_streak = 0
            self.consecutive_failures = 0
