"""Micro-batch coalescing for the streaming daemon.

``repro serve --daemon`` historically answered one stdin path at a time,
paying the full GIN forward + scatter per request even though the batched
fast path amortizes both across a whole query matrix.  The coalescer
turns the line stream into micro-batches: it blocks for the first line of
a batch, then keeps draining lines that arrive within ``window_ms``
(bounded by ``max_batch``) so concurrent callers share one
``recommend_batch`` call.  Latency cost is at most one window per
request; throughput gain is the batch fast path (see the
``daemon_microbatch`` row in ``results/BENCH_micro.json``).

Two drain strategies, picked per stream:

* **Selectable streams** (a real stdin pipe): ``select()`` with the
  remaining window as the timeout, so the daemon sleeps at most
  ``window_ms`` past the first request of a batch.
* **Non-selectable streams** (``io.StringIO`` under test, platforms
  without ``select`` on the handle): every buffered line is already
  available, so the batch is drained greedily up to ``max_batch`` with
  no waiting at all.

The coalescer never re-orders and never drops: lines are batched in
arrival order, blank lines are skipped, and EOF flushes the final
partial batch.
"""

from __future__ import annotations

import io
import select
import time
from dataclasses import dataclass
from typing import IO, Iterator


@dataclass(frozen=True)
class BatchingConfig:
    """Knobs of the daemon coalescer (CLI ``--max-batch`` /
    ``--batch-window-ms``)."""

    #: Largest number of requests coalesced into one batch.
    max_batch: int = 16
    #: How long (milliseconds) a batch stays open after its first request
    #: waiting for more.  0 disables waiting: only lines already buffered
    #: join the batch.
    window_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.window_ms < 0:
            raise ValueError("window_ms must be >= 0")


def _line_ready(stream: IO[str], deadline: float) -> bool:
    """Whether another line should be drained into the open batch."""
    try:
        fd = stream.fileno()
    except (AttributeError, OSError, io.UnsupportedOperation):
        # Non-selectable stream: everything it will ever produce is
        # already buffered, so drain greedily (EOF closes the batch).
        return True
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return False
    try:
        ready, _, _ = select.select([fd], [], [], remaining)
    except (OSError, ValueError):
        return False
    return bool(ready)


def iter_batches(stream: IO[str],
                 config: BatchingConfig | None = None
                 ) -> Iterator[list[str]]:
    """Drain a line stream into micro-batches of stripped non-blank lines.

    Blocks until a batch's first line arrives, then admits further lines
    until the window closes or the batch is full.  Yields each non-empty
    batch in arrival order; returns at EOF (flushing the partial batch).
    """
    config = config or BatchingConfig()
    while True:
        line = stream.readline()
        if line == "":
            return
        batch = [line.strip()] if line.strip() else []
        deadline = time.monotonic() + config.window_ms / 1000.0
        while len(batch) < config.max_batch:
            if not _line_ready(stream, deadline):
                break
            line = stream.readline()
            if line == "":
                if batch:
                    yield batch
                return
            if line.strip():
                batch.append(line.strip())
        if batch:
            yield batch
