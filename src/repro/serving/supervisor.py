"""The shard supervisor: scatter-gather serving with restarts and deadlines.

:class:`ShardedServer` owns one worker process per RCS shard and is the
only component with a failure policy:

* **Scatter-gather.**  Each search fans the query batch out to every
  healthy shard and merges the per-shard top-k with
  :func:`~repro.serving.sharding.merge_top_k`.  A fully-covered merge is
  bit-for-bit the single-process answer.
* **Crash supervision.**  Worker death is detected from the outside — the
  process sentinel plus a per-shard heartbeat stamp — and the shard is
  restarted under a bounded-exponential :class:`RetryPolicy`.  The
  request the dead worker was holding is *resent* to the new incarnation,
  so a crash delays an answer but never drops one.  A shard that keeps
  dying past ``max_restarts`` is marked failed and permanently cut; the
  rest of the node keeps serving.
* **Deadlines + partial results.**  A request may carry a latency budget
  (seconds).  Shards that have not answered when it expires are cut from
  the merge and the response comes back from the healthy shards with
  ``degraded=True`` and per-shard coverage fractions.  Late responses
  from cut shards are discarded by request id, never merged into a later
  answer.

The gather is **multi-outstanding**: :meth:`ShardedServer.submit` scatters
a request and returns its id immediately, :meth:`ShardedServer.collect`
blocks until that request completes (or its deadline cuts it), and a
``req_id -> pending`` map routes every response — including ones arriving
for a *different* outstanding request — to the request that owns it.
Late answers whose request was already collected or cut resolve to no
map entry and are discarded; a dead shard owes every outstanding request
that still lists it pending, and a revive resends them all in submission
order.  :meth:`ShardedServer.search` is submit + collect, so single-shot
callers keep the synchronous behavior.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import dataclass, field

import multiprocessing as mp

import numpy as np

from typing import TYPE_CHECKING, Any

from ..core.serving import ANNConfig, QuantizationConfig, Recommendation
from ..testbed.faults import FaultPlan
from .breaker import BreakerConfig
from .sharding import ShardSpec, merge_top_k, partition_members, tier_ladder
from .worker import ShardRequest, ShardResponse, shard_worker_main

if TYPE_CHECKING:
    from ..core.advisor import AutoCE
    from ..core.graph import FeatureGraph
    from ..db.schema import Dataset

#: Response-queue poll granularity while gathering (seconds).
_POLL = 0.01


class DegradedServiceError(RuntimeError):
    """No healthy shard produced an answer for a request."""


@dataclass
class RetryPolicy:
    """Bounded exponential backoff for shard restarts.

    Restart ``attempt`` (1-based) sleeps ``min(cap, base * 2**(attempt-1))``
    seconds; a shard is abandoned after ``max_restarts`` restarts.
    """

    base: float = 0.05
    cap: float = 1.0
    max_restarts: int = 3

    def delay(self, attempt: int) -> float:
        return min(self.cap, self.base * (2.0 ** (attempt - 1)))


@dataclass
class ShardedSearchResult:
    """One merged answer, annotated with its coverage story.

    ``coverage`` is the fraction of RCS members whose shard contributed to
    the merge (1.0 = the answer equals the single-process result);
    ``shard_coverage`` maps every shard to the fraction of *its* members
    represented (1.0 or 0.0 under whole-shard cuts); ``missing`` lists the
    shards cut by the deadline or permanently failed; ``tiers`` the tier
    each responding shard served at.
    """

    indices: np.ndarray                      # [Q, k'] global member ids
    distances: np.ndarray                    # [Q, k'] distances
    degraded: bool
    coverage: float
    shard_coverage: dict[int, float]
    missing: tuple[int, ...]
    tiers: dict[int, str]
    latency: float = 0.0                     # seconds, supervisor-side


@dataclass
class _PendingRequest:
    """Gather-side state of one outstanding (submitted, uncollected)
    request: the entry behind the ``req_id -> pending`` map."""

    request: ShardRequest
    pending: set[int]                        # shards still owing an answer
    responses: dict[int, ShardResponse] = field(default_factory=dict)
    start: float = 0.0                       # monotonic submission stamp
    deadline: float | None = None


@dataclass
class ShardedRecommendation(Recommendation):
    """A :class:`Recommendation` that admits it may be partial."""

    degraded: bool = False
    coverage: float = 1.0


class ShardedServer:
    """Fault-tolerant sharded serving over an RCS embedding matrix.

    Construct directly from an embedding matrix, or via
    :meth:`from_advisor` to serve a fitted :class:`~repro.core.advisor.
    AutoCE` (which also enables :meth:`recommend_batch`).  The server is a
    context manager; :meth:`stop` tears the workers down.
    """

    def __init__(self, embeddings: np.ndarray, *, num_shards: int = 2,
                 deadline: float | None = None,
                 ann: ANNConfig | None = None,
                 quantization: QuantizationConfig | None = None,
                 breaker: BreakerConfig | None = None,
                 retry: RetryPolicy | None = None,
                 fault_plan: FaultPlan | None = None,
                 probe_every: int = 16,
                 heartbeat_timeout: float = 30.0,
                 seed: int = 0,
                 start_method: str = "fork") -> None:
        embeddings = np.atleast_2d(np.asarray(embeddings))
        if len(embeddings) == 0:
            raise ValueError("cannot shard an empty RCS")
        self.num_members = len(embeddings)
        self.num_shards = max(1, min(num_shards, self.num_members))
        self.deadline = deadline
        self.retry = retry or RetryPolicy()
        self.fault_plan = fault_plan or FaultPlan()
        self.heartbeat_timeout = heartbeat_timeout
        self._advisor = None
        self._ctx = mp.get_context(start_method)
        breaker = breaker or BreakerConfig()
        self.specs = [
            ShardSpec(shard_id=s, global_ids=ids, embeddings=embeddings[ids],
                      ann=ann, quantization=quantization, breaker=breaker,
                      probe_every=probe_every, seed=seed)
            for s, ids in enumerate(
                partition_members(self.num_members, self.num_shards))
        ]
        self.ladder = tier_ladder(embeddings.shape[1], quantization)
        self._req_queues = [self._ctx.Queue() for _ in self.specs]
        self._resp_queue = self._ctx.Queue()
        self._heartbeats = [self._ctx.Value("d", 0.0) for _ in self.specs]
        self._procs: list = [None] * self.num_shards
        self._incarnations = [0] * self.num_shards
        self.restarts: dict[int, int] = {}
        self.failed: set[int] = set()
        self.last_errors: dict[int, str] = {}
        self._tiers: dict[int, str] = {s: self.ladder[0]
                                       for s in range(self.num_shards)}
        self._req_id = 0
        self._outstanding: dict[int, _PendingRequest] = {}
        self._embed_batches = 0
        self._stopped = False
        for s in range(self.num_shards):
            self._spawn(s)

    @classmethod
    def from_advisor(cls, advisor: AutoCE,
                     **kwargs: Any) -> "ShardedServer":
        """Shard a fitted advisor's RCS, inheriting its index/quantizer
        configs unless overridden."""
        rcs = advisor.rcs
        if rcs is None or len(rcs) == 0:
            raise ValueError("advisor has no fitted RCS to shard")
        kwargs.setdefault("ann", rcs.ann_config)
        kwargs.setdefault("quantization", rcs.quantization)
        rcs_embeddings = rcs.embeddings
        # Tier-preserving copy: the shards serve at the RCS serving dtype.
        server = cls(np.array(rcs_embeddings, dtype=rcs_embeddings.dtype),
                     **kwargs)
        server._advisor = advisor
        return server

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self, shard_id: int) -> None:
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(self.specs[shard_id], self.fault_plan,
                  self._incarnations[shard_id],
                  self._req_queues[shard_id], self._resp_queue,
                  self._heartbeats[shard_id]),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        proc.start()
        self._procs[shard_id] = proc

    def _revive(self, shard_id: int) -> bool:
        """Restart a dead shard under the retry policy.

        Returns False once the shard has exhausted ``max_restarts`` — it
        joins the permanently-failed set and is cut from every future
        scatter.
        """
        attempt = self.restarts.get(shard_id, 0) + 1
        if attempt > self.retry.max_restarts:
            self.failed.add(shard_id)
            return False
        old = self._procs[shard_id]
        if old is not None:
            old.join(timeout=1.0)
        time.sleep(self.retry.delay(attempt))
        # Drop any request the dead worker left unconsumed so the resend
        # below cannot double-serve it on the new incarnation.
        try:
            while True:
                self._req_queues[shard_id].get_nowait()
        except queue_module.Empty:
            pass
        self.restarts[shard_id] = attempt
        self._incarnations[shard_id] += 1
        self._spawn(shard_id)
        return True

    def stop(self) -> None:
        """Orderly shutdown: stop sentinel per worker, then terminate
        stragglers."""
        if self._stopped:
            return
        self._stopped = True
        for shard_id, proc in enumerate(self._procs):
            if proc is None:
                continue
            if proc.is_alive():
                try:
                    self._req_queues[shard_id].put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
        for q in (*self._req_queues, self._resp_queue):
            q.close()

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- serving -----------------------------------------------------------
    def search(self, queries: np.ndarray, k: int,
               deadline: float | None = None) -> ShardedSearchResult:
        """Scatter-gather top-k over the healthy shards (submit + collect).

        ``deadline`` (seconds, overrides the server default) bounds the
        gather: shards still pending at expiry are cut and the merge is
        returned degraded.  With every shard cut or failed the request is
        unanswerable and :class:`DegradedServiceError` is raised.
        """
        return self.collect(self.submit(queries, k, deadline=deadline))

    def submit(self, queries: np.ndarray, k: int,
               deadline: float | None = None) -> int:
        """Scatter a request to the healthy shards and return its id.

        The request joins the outstanding map immediately; any number may
        be in flight at once (the daemon's micro-batch pipeline submits
        the next batch while the previous one gathers).  Collect each id
        exactly once with :meth:`collect`.
        """
        if self._stopped:
            raise RuntimeError("server is stopped")
        queries = np.atleast_2d(np.asarray(queries))
        if not np.all(np.isfinite(queries)):
            raise ValueError(
                "query embeddings contain non-finite values; refusing to "
                "serve NaN/inf queries (their distances are meaningless)")
        deadline = self.deadline if deadline is None else deadline
        start = time.monotonic()
        self._req_id += 1
        request = ShardRequest(req_id=self._req_id, queries=queries, k=k)
        pending: set[int] = set()
        for shard_id in range(self.num_shards):
            if shard_id in self.failed:
                continue
            # Lazily revive shards found dead between requests (e.g. cut
            # by a previous deadline and crashed while we were not
            # looking).  The revive resends every older outstanding
            # request the shard still owes before this one is queued.
            if not self._procs[shard_id].is_alive():
                if not self._revive_and_resend(shard_id):
                    continue
            self._req_queues[shard_id].put(request)
            pending.add(shard_id)
        self._outstanding[request.req_id] = _PendingRequest(
            request=request, pending=pending, start=start,
            deadline=deadline)
        return request.req_id

    def collect(self, req_id: int) -> ShardedSearchResult:
        """Gather the merged answer for one submitted request.

        Responses for *other* outstanding requests that arrive while this
        one waits are routed to their own map entries, never dropped;
        responses whose request was already collected (or cut by its
        deadline) resolve to no entry and are discarded.
        """
        state = self._outstanding.get(req_id)
        if state is None:
            raise KeyError(
                f"request {req_id} is unknown or already collected")
        while state.pending:
            if state.deadline is not None:
                remaining = state.deadline - (time.monotonic() - state.start)
                if remaining <= 0:
                    break                     # cut whatever is still pending
            else:
                remaining = None
            self._rescue_dead(remaining)
            timeout = _POLL if remaining is None else min(_POLL, remaining)
            try:
                resp: ShardResponse = self._resp_queue.get(
                    timeout=max(timeout, 1e-4))
            except queue_module.Empty:
                continue
            self._route(resp)
        # Dropping the entry before merging makes any answer that arrives
        # past this point (a deadline-cut straggler) unroutable by
        # construction — it can never be mis-attributed to a later request.
        del self._outstanding[req_id]
        return self._merge(state)

    def _route(self, resp: ShardResponse) -> None:
        """File one response under the outstanding request that owns it."""
        state = self._outstanding.get(resp.req_id)
        if state is None:
            return                            # late answer from a cut request
        if resp.shard_id not in state.pending:
            return                            # duplicate after a resend race
        state.pending.discard(resp.shard_id)
        self._tiers[resp.shard_id] = resp.tier
        if resp.ok:
            state.responses[resp.shard_id] = resp
        else:
            self.last_errors[resp.shard_id] = resp.error or "unknown"

    def _owed(self, shard_id: int) -> list[_PendingRequest]:
        """Outstanding requests still waiting on a shard, oldest first
        (dict order is submission order: req_ids ascend)."""
        return [state for state in self._outstanding.values()
                if shard_id in state.pending]

    def _revive_and_resend(self, shard_id: int) -> bool:
        """Revive a dead shard and resend everything it still owes."""
        if not self._revive(shard_id):
            for state in self._owed(shard_id):
                state.pending.discard(shard_id)     # failed for good
            return False
        for state in self._owed(shard_id):
            self._req_queues[shard_id].put(state.request)
        return True

    def _rescue_dead(self, remaining: float | None) -> None:
        """Restart-and-resend for owed shards whose worker died or hung.

        A dead worker is revived only while the collecting request's
        remaining budget can absorb the backoff sleep; otherwise the shard
        stays pending and the deadline cuts it (a later submit or collect
        revives it).
        """
        owed: set[int] = set()
        for state in self._outstanding.values():
            owed |= state.pending
        for shard_id in sorted(owed):
            proc = self._procs[shard_id]
            dead = not proc.is_alive()
            if not dead and self.heartbeat_timeout > 0:
                now = time.monotonic()
                # Hung = the oldest request owing this shard has waited at
                # least a full timeout since its scatter AND the worker's
                # heartbeat is that stale too (an idle worker's old stamp
                # alone is not a hang).
                oldest = min(state.start
                             for state in self._owed(shard_id))
                stale = (now - self._heartbeats[shard_id].value
                         > self.heartbeat_timeout
                         and now - oldest > self.heartbeat_timeout)
                if stale:                     # hung mid-request: crash it
                    proc.kill()
                    proc.join(timeout=1.0)
                    dead = True
            if not dead:
                continue
            attempt = self.restarts.get(shard_id, 0) + 1
            if (remaining is not None
                    and self.retry.delay(attempt) >= remaining):
                continue                      # let the deadline cut it
            self._revive_and_resend(shard_id)

    def _merge(self, state: _PendingRequest) -> ShardedSearchResult:
        request, responses, start = (state.request, state.responses,
                                     state.start)
        if not responses:
            raise DegradedServiceError(
                "no healthy shard answered the request "
                f"(failed shards: {sorted(self.failed)})")
        covered = sum(len(self.specs[s].global_ids) for s in responses)
        shard_coverage = {
            s: (1.0 if s in responses else 0.0)
            for s in range(self.num_shards)
        }
        missing = tuple(s for s in range(self.num_shards)
                        if s not in responses)
        indices, distances = merge_top_k(
            [responses[s].indices for s in sorted(responses)],
            [responses[s].distances for s in sorted(responses)],
            request.k)
        return ShardedSearchResult(
            indices=indices, distances=distances,
            degraded=bool(missing),
            coverage=covered / self.num_members,
            shard_coverage=shard_coverage,
            missing=missing,
            tiers={s: responses[s].tier for s in responses},
            latency=time.monotonic() - start,
        )

    def recommend_batch(self, datasets: list[Dataset] | list[FeatureGraph],
                        accuracy_weight: float = 1.0,
                        k: int | None = None,
                        deadline: float | None = None
                        ) -> list[ShardedRecommendation]:
        """Batched Eq. 13 over the sharded search path.

        Requires construction via :meth:`from_advisor` (the advisor embeds
        the queries and owns the score labels).  Non-degraded results are
        identical to ``advisor.recommend_batch``.
        """
        if self._advisor is None:
            raise ValueError(
                "recommend_batch requires a server built with from_advisor")
        if not datasets:
            return []
        self._embed_batches += 1
        embeddings = self._advisor.embed_many(datasets)
        embeddings = self.fault_plan.poison_embeddings(
            embeddings, self._embed_batches)
        k = k if k is not None else self._advisor.predictor.k
        result = self.search(embeddings, k, deadline=deadline)
        rcs = self._advisor.rcs
        scores = rcs.score_matrix(accuracy_weight)[result.indices].mean(axis=1)
        best = np.argmax(scores, axis=1)
        names = rcs.model_names
        return [
            ShardedRecommendation(
                model=names[int(best[i])],
                score_vector=scores[i],
                model_names=names,
                neighbor_indices=result.indices[i],
                neighbor_distances=result.distances[i],
                degraded=result.degraded,
                coverage=result.coverage,
            )
            for i in range(len(embeddings))
        ]

    # -- introspection -----------------------------------------------------
    def tier_report(self) -> list[str]:
        """Human-readable per-shard serving state for ``repro serve``."""
        lines = []
        for spec in self.specs:
            shard_id = spec.shard_id
            if shard_id in self.failed:
                status = "FAILED"
            elif self._procs[shard_id].is_alive():
                status = "up"
            else:
                status = "down"
            lines.append(
                f"shard {shard_id}: {len(spec.global_ids)} members, "
                f"tier={self._tiers.get(shard_id, self.ladder[0])}, "
                f"status={status}, "
                f"restarts={self.restarts.get(shard_id, 0)}")
        return lines
