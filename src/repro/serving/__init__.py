"""Fault-tolerant sharded serving over the AutoCE advisor.

The package splits the RCS into independent shards served by supervised
worker processes: :mod:`~repro.serving.sharding` owns the partition, the
per-shard runtime and the bit-for-bit top-k merge;
:mod:`~repro.serving.breaker` the per-shard tier-degradation circuit
breaker; :mod:`~repro.serving.worker` the worker loop; and
:mod:`~repro.serving.supervisor` the scatter-gather server with crash
restarts, deadlines and partial results (the gather is
multi-outstanding: ``submit``/``collect`` route responses by request
id).  :mod:`~repro.serving.batching` coalesces the daemon's stdin
stream into micro-batches.  See ``docs/serving.md``.
"""

from .batching import BatchingConfig, iter_batches
from .breaker import BreakerConfig, ShardHealth, TierBreaker
from .sharding import (FULL_LADDER, ShardRuntime, ShardSpec, merge_top_k,
                       partition_members, tier_ladder)
from .supervisor import (DegradedServiceError, RetryPolicy,
                         ShardedRecommendation, ShardedSearchResult,
                         ShardedServer)
from .worker import ShardRequest, ShardResponse, shard_worker_main

__all__ = [
    "BatchingConfig",
    "iter_batches",
    "BreakerConfig",
    "ShardHealth",
    "TierBreaker",
    "FULL_LADDER",
    "ShardRuntime",
    "ShardSpec",
    "merge_top_k",
    "partition_members",
    "tier_ladder",
    "DegradedServiceError",
    "RetryPolicy",
    "ShardedRecommendation",
    "ShardedSearchResult",
    "ShardedServer",
    "ShardRequest",
    "ShardResponse",
    "shard_worker_main",
]
