"""RCS sharding: partitioning, the per-shard runtime, and the top-k merge.

A sharded serving node splits the RCS into ``num_shards`` independent
slices.  Each slice is owned by one worker process holding its own
:class:`ShardRuntime` — embeddings, a neighbor index and a quantized
candidate store selected for *that slice's* size and width, and a
:class:`~repro.serving.breaker.TierBreaker` walking the slice's tier
ladder.  The supervisor scatters query embeddings to every shard and
merges the per-shard top-k with the same lowest-index tie-breaking as the
single-process path, so a fully-covered merge is bit-for-bit the answer
the unsharded advisor would have produced.

Partitioning is round-robin on the member index: shard ``s`` owns members
``s, s + S, s + 2S, ...``.  Round-robin keeps shard sizes balanced within
one member and — unlike contiguous ranges — spreads any temporal structure
in the corpus (members are appended in labeling order) evenly, so no
shard degenerates into "all the datasets from one generation".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.ivf import IVFStore
from ..core.serving import (ANNConfig, INT8_EXACT_MAX_DIM,
                            CandidateStore, QuantizationConfig,
                            candidate_scan, exact_search,
                            select_neighbor_index, select_quantizer)
from .breaker import BreakerConfig, ShardHealth, TierBreaker

#: The full tier-degradation ladder, best tier first.  Each shard serves
#: the longest suffix its corpus supports (see :func:`tier_ladder`).
FULL_LADDER = ("pq", "int8", "exact")


def partition_members(num_members: int, num_shards: int) -> list[np.ndarray]:
    """Round-robin member partition: shard ``s`` owns ``s, s+S, s+2S, ...``.

    Shards beyond the member count come back empty (the supervisor clamps
    the shard count, but the function stays total).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    members = np.arange(num_members, dtype=np.int64)
    return [members[s::num_shards] for s in range(num_shards)]


def merge_top_k(indices_parts: list[np.ndarray],
                distances_parts: list[np.ndarray],
                k: int) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ([Q, k_s] global ids, [Q, k_s] distances) to top-k.

    Ties break by lowest global member index — the same rule as
    :func:`~repro.core.serving.top_k_neighbors` — so a merge over shards
    that each searched exactly reproduces the single-process result
    bit-for-bit.  Shards may contribute fewer than ``k`` columns (slices
    smaller than k, or shards cut from a degraded response); the merge
    returns ``min(k, total available)`` columns.
    """
    parts_i = [np.atleast_2d(p) for p in indices_parts if p is not None]
    parts_d = [np.atleast_2d(p) for p in distances_parts if p is not None]
    if not parts_i or sum(p.shape[1] for p in parts_i) == 0:
        q = parts_i[0].shape[0] if parts_i else 0
        return (np.empty((q, 0), dtype=np.int64),
                np.empty((q, 0), dtype=np.float64))
    idx = np.concatenate(parts_i, axis=1)
    dist = np.concatenate(parts_d, axis=1)
    k = min(k, idx.shape[1])
    order = np.lexsort((idx, dist), axis=1)[:, :k]
    return (np.take_along_axis(idx, order, axis=1),
            np.take_along_axis(dist, order, axis=1))


def tier_ladder(dim: int, quantization: QuantizationConfig | None
                ) -> tuple[str, ...]:
    """The ladder a shard of width ``dim`` serves under.

    Without a quantized tier there is nothing to demote: the ladder is the
    exact scan alone.  With one, the top rung follows the
    :func:`~repro.core.serving.select_quantizer` width rule (PQ past the
    int8 exactness bound) and every demotion path ends at the exact scan.
    """
    if quantization is None or not quantization.enabled:
        return ("exact",)
    mode = quantization.mode
    if mode == "auto":
        mode = "int8" if dim <= INT8_EXACT_MAX_DIM else "pq"
    start = FULL_LADDER.index(mode)
    return FULL_LADDER[start:]


@dataclass
class ShardSpec:
    """Everything a worker needs to build its :class:`ShardRuntime`.

    Plain arrays and config dataclasses only, so the spec pickles cleanly
    through a spawn-context process boundary.
    """

    shard_id: int
    global_ids: np.ndarray                 # [n_s] member ids in the full RCS
    embeddings: np.ndarray                 # [n_s, d] the shard's slice
    ann: ANNConfig | None = None
    quantization: QuantizationConfig | None = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Replay a recall self-probe every this many requests (0 disables).
    probe_every: int = 16
    #: Members sampled (and k used) by the recall self-probe.
    probe_sample: int = 8
    probe_k: int = 5
    seed: int = 0


class ShardRuntime:
    """One shard's serving state: embeddings, index, tier stores, breaker.

    The runtime serves global member ids (mapped through the shard's
    ``global_ids``) so the supervisor's merge never sees shard-local
    indices.  Tier stores are built lazily per ladder rung and cached —
    a demotion to int8 does not retrain the PQ codebooks it may later be
    re-promoted to.
    """

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.shard_id = spec.shard_id
        self.global_ids = np.asarray(spec.global_ids, dtype=np.int64)
        self.embeddings = np.atleast_2d(np.asarray(spec.embeddings))
        if len(self.global_ids) != len(self.embeddings):
            raise ValueError("global_ids and embeddings must align")
        n, dim = self.embeddings.shape
        self.ladder = tier_ladder(dim if n else 0, spec.quantization)
        self.breaker = TierBreaker(self.ladder, spec.breaker)
        self._stores: dict[str, CandidateStore] = {}
        self._index = None
        ann = spec.ann
        if (ann is not None and ann.threshold > 0 and n >= ann.threshold):
            self._index = select_neighbor_index(self.embeddings, ann)
        self.requests_served = 0
        self.last_health = ShardHealth()
        self._rng = np.random.default_rng(spec.seed + 7919 * spec.shard_id)

    def __len__(self) -> int:
        return len(self.global_ids)

    # -- tiers ------------------------------------------------------------
    def _store_for(self, tier: str) -> CandidateStore | None:
        """The cached candidate store of a ladder rung (None = exact)."""
        if tier == "exact" or len(self) == 0:
            return None
        store = self._stores.get(tier)
        if store is None:
            config = self.spec.quantization or QuantizationConfig()
            store = select_quantizer(self.embeddings,
                                     replace(config, enabled=True, mode=tier))
            self._stores[tier] = store
        return store

    def scramble_store(self, tier: str | None = None) -> None:
        """Deterministically corrupt a tier's codes (fault-injection hook).

        Overwrites the live code matrix with seeded noise while leaving the
        calibration in place, modeling a quantizer whose codes have rotted
        (bad restore, bit flips, stale snapshot).  Candidate selection at
        that tier degrades; the float re-rank keeps returned distances
        exact, so the damage is visible only through recall — exactly the
        failure the breaker's recall probe exists to catch.
        """
        tier = tier or self.breaker.tier
        store = self._store_for(tier)
        if store is None:
            return
        if isinstance(store, IVFStore):
            # The IVF wrapper serves codes out of cell-ordered block
            # copies; scramble the flat store underneath and drop the
            # blocks so the rot is what the probed scan actually reads.
            store.invalidate_blocks()
            store = store.store
        codes = store.codes
        noise = self._rng.integers(0, 127, size=codes.shape)
        codes[...] = noise.astype(codes.dtype)
        # Drop the stores' GEMM/scan memos so the scrambled codes are what
        # the next search actually reads.
        if hasattr(store, "_codes_float"):
            store._codes_float = None
        if hasattr(store, "_gather_codes"):
            store._gather_codes = None

    # -- serving ----------------------------------------------------------
    def search(self, queries: np.ndarray, k: int
               ) -> tuple[np.ndarray, np.ndarray]:
        """([Q, k'] global member ids, [Q, k'] distances), k' = min(k, n).

        Serves at the breaker's current tier, replays the recall self-probe
        on schedule, and feeds the observation back into the breaker.
        """
        queries = np.atleast_2d(np.asarray(queries))
        n = len(self)
        if n == 0 or k <= 0:
            empty = np.empty((len(queries), 0), dtype=np.float64)
            return empty.astype(np.int64), empty
        self.requests_served += 1
        tier = self.breaker.tier
        store = self._store_for(tier)
        if self._index is not None:
            local, dist = self._index.search(queries, self.embeddings,
                                             min(k, n), store=store)
            fallback = getattr(self._index, "last_fallback_fraction", 0.0)
        else:
            local, dist = candidate_scan(queries, self.embeddings,
                                         min(k, n), store)
            fallback = 0.0
        # Shard slices are frozen after the scatter partition, so the
        # quantizer drift counter (an online-add observable) stays zero
        # here; the breaker still honors it for runtimes that grow.
        health = ShardHealth(
            fallback_fraction=fallback,
            recall_probe=self._maybe_probe(tier, store),
        )
        self.last_health = health
        self.breaker.observe(health)
        return self.global_ids[local], dist

    def _maybe_probe(self, tier: str,
                     store: CandidateStore | None) -> float | None:
        """Recall@k of the current tier vs the exact scan, on schedule.

        Replays a seeded sample of the shard's own members.  Scan-shaped
        exact serving needs no probe — it *is* the ground truth.
        """
        spec = self.spec
        if (tier == "exact" or store is None or spec.probe_every <= 0
                or self.requests_served % spec.probe_every != 0):
            return None
        n = len(self)
        sample = min(spec.probe_sample, n)
        if sample == 0:
            return None
        rows = self._rng.choice(n, size=sample, replace=False)
        k = min(spec.probe_k, n)
        approx, _ = store.search(self.embeddings[rows], self.embeddings, k)
        exact, _ = exact_search(self.embeddings[rows], self.embeddings, k)
        return float(np.mean([len(set(a) & set(e)) / k
                              for a, e in zip(approx, exact)]))
