"""The shard worker: one process, one RCS slice, one tier breaker.

A worker is deliberately boring — it builds its :class:`ShardRuntime`
once, then loops on its request queue: pull a request, run the fault
hooks, search, push a :class:`ShardResponse`.  All fault tolerance lives
in the supervisor; the worker's only obligations are to keep its
heartbeat fresh and to answer every request it survives long enough to
see.  A worker that dies mid-request simply never answers — the
supervisor notices via the process sentinel and the missing response,
restarts the shard, and *resends* the request to the new incarnation.

Messages cross the process boundary as plain dataclasses of arrays and
scalars, picklable under both fork and spawn start methods.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..testbed.faults import FaultPlan
from .breaker import ShardHealth
from .sharding import ShardRuntime, ShardSpec

if TYPE_CHECKING:
    import multiprocessing as mp
    from multiprocessing.sharedctypes import Synchronized


@dataclass
class ShardRequest:
    """One scatter leg: search ``queries`` for ``k`` on one shard."""

    req_id: int
    queries: np.ndarray
    k: int


@dataclass
class ShardResponse:
    """One gather leg.  ``ok=False`` carries a formatted traceback in
    ``error`` instead of results; the supervisor counts it as a serving
    error against the shard's breaker."""

    shard_id: int
    req_id: int
    ok: bool
    indices: np.ndarray | None = None       # [Q, k'] global member ids
    distances: np.ndarray | None = None     # [Q, k'] squared distances
    tier: str = "exact"
    health: ShardHealth = field(default_factory=ShardHealth)
    error: str | None = None
    pid: int = 0


def shard_worker_main(spec: ShardSpec, plan: FaultPlan, incarnation: int,
                      request_queue: "mp.Queue[ShardRequest]",
                      response_queue: "mp.Queue[ShardResponse]",
                      heartbeat: "Synchronized[float]") -> None:
    """Entry point of a shard worker process.

    ``heartbeat`` is a shared ``multiprocessing.Value('d')`` the worker
    stamps with ``time.monotonic()`` whenever it makes progress; the
    supervisor treats a stale stamp plus a dead sentinel as a crash.
    ``incarnation`` counts restarts (0 = the original worker) and scopes
    the fault plan: one-shot kill/slow faults target incarnation 0 only,
    so a restarted shard serves cleanly.
    """
    runtime = ShardRuntime(spec)
    shard_id = spec.shard_id
    pid = os.getpid()
    ordinal = 0
    heartbeat.value = time.monotonic()
    while True:
        msg = request_queue.get()
        if msg is None:                      # orderly shutdown
            return
        ordinal += 1
        heartbeat.value = time.monotonic()
        if plan.should_kill(shard_id, ordinal, incarnation):
            plan.kill_now()
        plan.maybe_stall(shard_id, ordinal, incarnation)
        if plan.scramble_tier(shard_id, ordinal, incarnation):
            runtime.scramble_store()
        try:
            indices, distances = runtime.search(msg.queries, msg.k)
            response = ShardResponse(
                shard_id=shard_id, req_id=msg.req_id, ok=True,
                indices=indices, distances=distances,
                tier=runtime.breaker.tier, health=runtime.last_health,
                pid=pid)
        except Exception:
            runtime.breaker.observe(ShardHealth(errors=1))
            response = ShardResponse(
                shard_id=shard_id, req_id=msg.req_id, ok=False,
                tier=runtime.breaker.tier,
                health=ShardHealth(errors=1),
                error=traceback.format_exc(), pid=pid)
        heartbeat.value = time.monotonic()
        response_queue.put(response)
