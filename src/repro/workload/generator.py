"""Workload generation against a dataset (Stage 1, "Workload Generation").

Generates SPJ queries over the dataset's join templates with data-centered
range predicates, labels them with exact true cardinalities via the counting
substrate, and splits them into training/testing workloads for the CE models
(the paper uses 9 000 training / 1 000 testing queries; sizes are
configurable here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.counting import count_join
from ..db.schema import Dataset
from ..utils.rng import rng_from_seed
from .query import Predicate, Query


@dataclass
class Workload:
    """Training and testing queries plus the templates they touch."""

    dataset_name: str
    train: list[Query]
    test: list[Query]

    @property
    def templates(self) -> list[tuple[str, ...]]:
        seen: dict[tuple[str, ...], None] = {}
        for query in self.train + self.test:
            seen.setdefault(query.template)
        return list(seen)

    def __len__(self) -> int:
        return len(self.train) + len(self.test)


def _random_predicate(dataset: Dataset, table: str, column: str,
                      rng: np.random.Generator) -> Predicate:
    """Range predicate centered on an actual data value (avoids empty hits).

    Widths are skewed towards narrow ranges (``u²`` scaling) so the workload
    is dominated by selective predicates, as in the JOB-light / CEB
    benchmarks the paper evaluates on — the regime where estimation errors
    actually differentiate the models.
    """
    values = dataset[table][column]
    center = int(values[int(rng.integers(0, len(values)))])
    span = max(1, int(values.max()) - int(values.min()))
    width = int(span * rng.random() ** 2)
    offset = int(rng.integers(0, width + 1))
    lo = max(int(values.min()), center - offset)
    hi = min(int(values.max()), lo + width)
    if lo > hi:
        lo, hi = hi, lo
    return Predicate(table, column, lo, hi)


def generate_query(dataset: Dataset, rng: np.random.Generator,
                   templates: list[tuple[str, ...]],
                   max_predicates_per_table: int = 2) -> Query:
    """One random SPJ query over one of the given join templates."""
    template = templates[int(rng.integers(0, len(templates)))]
    predicates: list[Predicate] = []
    for table in template:
        data_cols = dataset[table].data_columns()
        if not data_cols:
            continue
        count = int(rng.integers(1, min(max_predicates_per_table, len(data_cols)) + 1))
        chosen = rng.choice(data_cols, size=count, replace=False)
        for column in chosen:
            predicates.append(_random_predicate(dataset, table, str(column), rng))
    return Query(tuple(template), tuple(predicates))


def generate_workload(dataset: Dataset, num_train: int = 80, num_test: int = 40,
                      seed: int | np.random.Generator = 0,
                      max_templates: int = 6,
                      max_template_tables: int | None = None) -> Workload:
    """Generate and label a train/test workload for one dataset.

    A bounded number of join templates is sampled (always including the full
    schema when connected) so that data-driven models fit one joint model per
    template without exploding the labeling cost.
    """
    rng = rng_from_seed(seed)
    all_templates = dataset.connected_subsets(max_size=max_template_tables)
    if len(all_templates) > max_templates:
        indices = rng.choice(len(all_templates), size=max_templates, replace=False)
        templates = [all_templates[int(i)] for i in indices]
    else:
        templates = list(all_templates)

    queries: list[Query] = []
    attempts = 0
    needed = num_train + num_test
    while len(queries) < needed and attempts < needed * 20:
        attempts += 1
        query = generate_query(dataset, rng, templates)
        card = count_join(dataset, query.tables, query.predicate_tuples())
        queries.append(query.with_cardinality(card))
    return Workload(dataset.name, queries[:num_train], queries[num_train:needed])
