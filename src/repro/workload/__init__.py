"""Query workloads: SPJ query objects, generators and featurizations."""

from .query import Predicate, Query
from .generator import Workload, generate_query, generate_workload
from .encoding import QueryEncoder, ColumnRef

__all__ = [
    "Predicate", "Query", "Workload", "generate_query", "generate_workload",
    "QueryEncoder", "ColumnRef",
]
