"""Query featurization for the query-driven CE models.

Two encodings are provided, following the papers behind the baselines:

* **Set encoding** (MSCN [Kipf et al.]): a query is three sets — table
  one-hots, join-edge one-hots, and predicate feature vectors
  ``[column one-hot, normalized lo, normalized hi]`` — padded to fixed set
  sizes with a validity mask.
* **Flat encoding** (LW-NN / LW-XGB [Dutt et al.]): one fixed-length vector
  holding, for every (table, column) pair, the normalized predicate range
  (defaulting to the full domain) plus join-edge indicator bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.schema import Dataset
from .query import Query


@dataclass(frozen=True)
class ColumnRef:
    table: str
    column: str


class QueryEncoder:
    """Vocabulary-aware encoder for one dataset's queries."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self.tables = sorted(dataset.table_names)
        self.table_index = {t: i for i, t in enumerate(self.tables)}
        self.joins = sorted((fk.child, fk.parent) for fk in dataset.foreign_keys)
        self.join_index = {j: i for i, j in enumerate(self.joins)}
        self.columns: list[ColumnRef] = []
        self.bounds: dict[tuple[str, str], tuple[int, int]] = {}
        for table in self.tables:
            for column in dataset[table].data_columns():
                self.columns.append(ColumnRef(table, column))
                values = dataset[table][column]
                self.bounds[(table, column)] = (int(values.min()), int(values.max()))
        self.column_index = {(c.table, c.column): i for i, c in enumerate(self.columns)}

    # ------------------------------------------------------------------
    def _normalize(self, table: str, column: str, value: int) -> float:
        lo, hi = self.bounds[(table, column)]
        if hi == lo:
            return 0.0
        return (value - lo) / (hi - lo)

    # ------------------------------------------------------------------
    # Flat encoding (LW-NN / LW-XGB)
    # ------------------------------------------------------------------
    @property
    def flat_dim(self) -> int:
        return 2 * len(self.columns) + len(self.joins) + len(self.tables)

    def encode_flat(self, query: Query) -> np.ndarray:
        vec = np.zeros(self.flat_dim, dtype=np.float64)
        # Default ranges cover the full domain.
        vec[0:2 * len(self.columns):2] = 0.0
        vec[1:2 * len(self.columns):2] = 1.0
        for pred in query.predicates:
            idx = self.column_index[(pred.table, pred.column)]
            vec[2 * idx] = self._normalize(pred.table, pred.column, pred.lo)
            vec[2 * idx + 1] = self._normalize(pred.table, pred.column, pred.hi)
        base = 2 * len(self.columns)
        table_set = set(query.tables)
        for (child, parent), j in self.join_index.items():
            if child in table_set and parent in table_set:
                vec[base + j] = 1.0
        base += len(self.joins)
        for table in query.tables:
            vec[base + self.table_index[table]] = 1.0
        return vec

    def encode_flat_batch(self, queries: list[Query]) -> np.ndarray:
        return np.stack([self.encode_flat(q) for q in queries])

    # ------------------------------------------------------------------
    # Set encoding (MSCN)
    # ------------------------------------------------------------------
    @property
    def table_feat_dim(self) -> int:
        return len(self.tables)

    @property
    def join_feat_dim(self) -> int:
        return max(1, len(self.joins))

    @property
    def predicate_feat_dim(self) -> int:
        return len(self.columns) + 2

    def encode_sets(self, query: Query,
                    max_tables: int, max_joins: int, max_predicates: int):
        """Padded set tensors + masks for one query."""
        t_feats = np.zeros((max_tables, self.table_feat_dim))
        t_mask = np.zeros(max_tables)
        for i, table in enumerate(query.tables[:max_tables]):
            t_feats[i, self.table_index[table]] = 1.0
            t_mask[i] = 1.0

        j_feats = np.zeros((max_joins, self.join_feat_dim))
        j_mask = np.zeros(max_joins)
        table_set = set(query.tables)
        slot = 0
        for (child, parent), j in self.join_index.items():
            if child in table_set and parent in table_set and slot < max_joins:
                j_feats[slot, j] = 1.0
                j_mask[slot] = 1.0
                slot += 1

        p_feats = np.zeros((max_predicates, self.predicate_feat_dim))
        p_mask = np.zeros(max_predicates)
        for i, pred in enumerate(query.predicates[:max_predicates]):
            idx = self.column_index[(pred.table, pred.column)]
            p_feats[i, idx] = 1.0
            p_feats[i, -2] = self._normalize(pred.table, pred.column, pred.lo)
            p_feats[i, -1] = self._normalize(pred.table, pred.column, pred.hi)
            p_mask[i] = 1.0
        return (t_feats, t_mask), (j_feats, j_mask), (p_feats, p_mask)

    def encode_sets_batch(self, queries: list[Query]):
        """Batched padded set tensors: shapes [B, S, D] with [B, S] masks."""
        max_tables = max((len(q.tables) for q in queries), default=1)
        max_joins = max((q.num_joins for q in queries), default=0) or 1
        max_preds = max((len(q.predicates) for q in queries), default=1) or 1
        tables, joins, preds = [], [], []
        t_masks, j_masks, p_masks = [], [], []
        for query in queries:
            (tf, tm), (jf, jm), (pf, pm) = self.encode_sets(
                query, max_tables, max_joins, max_preds)
            tables.append(tf); t_masks.append(tm)
            joins.append(jf); j_masks.append(jm)
            preds.append(pf); p_masks.append(pm)
        return (
            (np.stack(tables), np.stack(t_masks)),
            (np.stack(joins), np.stack(j_masks)),
            (np.stack(preds), np.stack(p_masks)),
        )
