"""SPJ query representation.

Queries in the reproduction follow the paper's workload (Sec. VII-A, queries
"similar to [36], [37]"): select-project-join queries over a connected join
template with conjunctive range predicates on non-key columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Predicate:
    """Inclusive range predicate ``lo <= table.column <= hi``."""

    table: str
    column: str
    lo: int
    hi: int

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty predicate range [{self.lo}, {self.hi}]")

    def as_tuple(self) -> tuple[str, str, int, int]:
        return (self.table, self.column, self.lo, self.hi)


@dataclass(frozen=True)
class Query:
    """A select-project-join query plus (optionally) its true cardinality."""

    tables: tuple[str, ...]
    predicates: tuple[Predicate, ...] = ()
    true_cardinality: int | None = None

    def __post_init__(self):
        table_set = set(self.tables)
        if len(table_set) != len(self.tables):
            raise ValueError("duplicate tables in query")
        for pred in self.predicates:
            if pred.table not in table_set:
                raise ValueError(f"predicate on {pred.table!r} not in FROM clause")

    @property
    def template(self) -> tuple[str, ...]:
        return tuple(sorted(self.tables))

    @property
    def num_joins(self) -> int:
        return max(0, len(self.tables) - 1)

    def predicate_tuples(self) -> list[tuple[str, str, int, int]]:
        return [p.as_tuple() for p in self.predicates]

    def with_cardinality(self, card: int) -> "Query":
        return Query(self.tables, self.predicates, card)

    def restrict(self, tables: tuple[str, ...]) -> "Query":
        """The sub-query over a subset of tables (used by the optimizer)."""
        table_set = set(tables)
        preds = tuple(p for p in self.predicates if p.table in table_set)
        return Query(tuple(tables), preds)

    def sql(self) -> str:
        """A human-readable SQL rendering (for logs and examples)."""
        from_clause = ", ".join(self.tables)
        conditions = [f"{p.table}.{p.column} BETWEEN {p.lo} AND {p.hi}"
                      for p in self.predicates]
        where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        return f"SELECT COUNT(*) FROM {from_clause}{where};"
