"""Join materialization and sampling for data-driven CE models.

Data-driven estimators (DeepDB, BayesCard, NeuroCard, UAE) learn a joint
distribution over the columns of a *join template*.  This module materializes
the row-index composition of a template's join result (bounded by a row cap,
falling back to uniform down-sampling when the join explodes) and exposes a
cache so that the testbed fits all models from one shared sample per
template.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import rng_from_seed
from .counting import join_size
from .schema import Dataset
from .table import PK_COLUMN


def _group_index(fk_values: np.ndarray, parent_rows: int):
    """Precompute child-row groups per parent key value.

    Returns ``(order, starts)`` such that ``order[starts[v]:starts[v+1]]`` are
    the child row indices whose FK equals ``v``.
    """
    order = np.argsort(fk_values, kind="stable")
    counts = np.bincount(fk_values, minlength=parent_rows)
    starts = np.concatenate(([0], np.cumsum(counts)))
    return order, starts


def materialize_join(dataset: Dataset, tables: tuple[str, ...],
                     max_rows: int = 200_000,
                     seed: int | np.random.Generator = 0) -> dict[str, np.ndarray]:
    """Row indices per table composing the join over ``tables``.

    Returns a dict ``{table: int64 array}`` where position ``i`` across all
    arrays identifies the ``i``-th joined row.  If the intermediate result
    exceeds ``max_rows`` it is uniformly down-sampled (the exact join size is
    still available from :func:`repro.db.counting.join_size`).
    """
    tables = tuple(tables)
    if not dataset.is_connected_subset(tables):
        raise ValueError(f"{tables} is not a connected join template")
    rng = rng_from_seed(seed)

    root = tables[0]
    result: dict[str, np.ndarray] = {root: np.arange(dataset[root].num_rows, dtype=np.int64)}
    attached = {root}
    remaining = set(tables) - attached

    while remaining:
        progress = False
        for fk in dataset.subset_edges(tables):
            child_in = fk.child in attached
            parent_in = fk.parent in attached
            if child_in == parent_in:
                continue
            progress = True
            if child_in:
                # Attach the parent: each joined row maps to exactly one
                # parent row (pk value == row index).
                fk_values = dataset[fk.child][fk.fk_column]
                parent_rows = fk_values[result[fk.child]]
                result[fk.parent] = parent_rows
                attached.add(fk.parent)
                remaining.discard(fk.parent)
            else:
                # Attach the child: each joined row fans out to every child
                # row referencing its parent key.
                parent = dataset[fk.parent]
                child = dataset[fk.child]
                order, starts = _group_index(child[fk.fk_column], parent.num_rows)
                parent_keys = parent[PK_COLUMN][result[fk.parent]]
                fanouts = starts[parent_keys + 1] - starts[parent_keys]
                total = int(fanouts.sum())
                keep = np.repeat(np.arange(len(parent_keys)), fanouts)
                # Enumerate matching child rows for every joined row.
                offsets = np.concatenate(([0], np.cumsum(fanouts)))[:-1]
                within = np.arange(total) - np.repeat(offsets, fanouts)
                child_rows = order[np.repeat(starts[parent_keys], fanouts) + within]
                for name in list(result):
                    result[name] = result[name][keep]
                result[fk.child] = child_rows
                attached.add(fk.child)
                remaining.discard(fk.child)
            size = len(next(iter(result.values())))
            if size > max_rows:
                chosen = rng.choice(size, size=max_rows, replace=False)
                chosen.sort()
                for name in list(result):
                    result[name] = result[name][chosen]
        if not progress:
            raise RuntimeError("join template is not connected via FK edges")
    return result


def subsample_dataset(dataset: Dataset, fraction: float,
                      seed: int | np.random.Generator = 0) -> Dataset:
    """Row-subsample every table while keeping PK-FK integrity.

    Used by the Sampling selection baseline (Sec. VII-A).  Tables are
    processed in FK-dependency order (parents before children); child rows
    are drawn only from rows whose FK targets survived, and if a table
    would end up empty one row is force-kept together with (recursively)
    the parent rows it references.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = rng_from_seed(seed)

    parents_of: dict[str, list] = {name: [] for name in dataset.table_names}
    for fk in dataset.foreign_keys:
        parents_of[fk.child].append(fk)

    # Topological order: parents before children (join graph is a forest).
    ordered: list[str] = []
    remaining = set(dataset.table_names)
    while remaining:
        progressed = False
        for name in sorted(remaining):
            if all(fk.parent not in remaining for fk in parents_of[name]):
                ordered.append(name)
                remaining.discard(name)
                progressed = True
        if not progressed:  # pragma: no cover - schema is validated acyclic
            raise RuntimeError("cyclic FK dependencies")

    keep: dict[str, set[int]] = {}

    def ensure_row(name: str, row: int) -> None:
        """Force-keep a row plus (recursively) its referenced parent rows."""
        if row in keep.setdefault(name, set()):
            return
        keep[name].add(row)
        for fk in parents_of[name]:
            parent_row = int(dataset[name][fk.fk_column][row])
            ensure_row(fk.parent, parent_row)

    for name in ordered:
        table = dataset[name]
        kept_parents = {fk.parent: keep.get(fk.parent, set())
                        for fk in parents_of[name]}
        valid = np.ones(table.num_rows, dtype=bool)
        for fk in parents_of[name]:
            parent_keep = np.zeros(dataset[fk.parent].num_rows, dtype=bool)
            parent_keep[list(kept_parents[fk.parent])] = True
            valid &= parent_keep[table[fk.fk_column]]
        candidates = np.nonzero(valid)[0]
        size = max(1, int(round(fraction * table.num_rows)))
        already = keep.setdefault(name, set())
        if len(candidates) > 0:
            chosen = rng.choice(candidates, size=min(size, len(candidates)),
                                replace=False)
            already.update(int(r) for r in chosen)
        if not already:
            ensure_row(name, int(rng.integers(0, table.num_rows)))

    # Renumber PKs and remap FKs.
    rows_by_table = {name: np.array(sorted(keep[name]), dtype=np.int64)
                     for name in dataset.table_names}
    remap: dict[str, np.ndarray] = {}
    for name, rows in rows_by_table.items():
        table = dataset[name]
        if table.has_pk:
            mapping = np.full(table.num_rows, -1, dtype=np.int64)
            mapping[rows] = np.arange(len(rows))
            remap[name] = mapping

    new_tables = []
    for name in dataset.table_names:
        table = dataset[name]
        rows = rows_by_table[name]
        columns: dict[str, np.ndarray] = {}
        for col, values in table.columns.items():
            taken = values[rows]
            if col == PK_COLUMN:
                taken = np.arange(len(rows), dtype=np.int64)
            elif col.startswith("fk_"):
                parent = next(fk.parent for fk in dataset.foreign_keys
                              if fk.child == name and fk.fk_column == col)
                taken = remap[parent][taken]
            columns[col] = taken
        new_tables.append(type(table)(name, columns))
    return Dataset(f"{dataset.name}_sample", new_tables, dataset.foreign_keys)


class JoinSampleCache:
    """Shared per-dataset cache of join samples keyed by template.

    ``sample(tables, n)`` returns ``(columns, join_cardinality)`` where
    ``columns`` maps qualified column names (``"table.column"``) to value
    arrays of length ≤ n, drawn uniformly from the template's join result.
    """

    def __init__(self, dataset: Dataset, max_rows: int = 200_000,
                 seed: int = 0):
        self.dataset = dataset
        self.max_rows = max_rows
        self.seed = seed
        self._joins: dict[tuple[str, ...], dict[str, np.ndarray]] = {}
        self._sizes: dict[tuple[str, ...], int] = {}

    def template_size(self, tables: tuple[str, ...]) -> int:
        key = tuple(sorted(tables))
        if key not in self._sizes:
            self._sizes[key] = join_size(self.dataset, key)
        return self._sizes[key]

    def _indices(self, key: tuple[str, ...]) -> dict[str, np.ndarray]:
        if key not in self._joins:
            self._joins[key] = materialize_join(
                self.dataset, key, max_rows=self.max_rows, seed=self.seed)
        return self._joins[key]

    def sample(self, tables: tuple[str, ...], n: int,
               seed: int | np.random.Generator = 0):
        key = tuple(sorted(tables))
        indices = self._indices(key)
        size = len(next(iter(indices.values()))) if indices else 0
        rng = rng_from_seed(seed)
        if size == 0:
            return {}, self.template_size(key)
        if size > n:
            chosen = rng.choice(size, size=n, replace=False)
        else:
            chosen = np.arange(size)
        columns: dict[str, np.ndarray] = {}
        for table, rows in indices.items():
            for column in self.dataset[table].data_columns():
                columns[f"{table}.{column}"] = self.dataset[table][column][rows[chosen]]
        return columns, self.template_size(key)

    def clear(self) -> None:
        self._joins.clear()
