"""Datasets: collections of tables plus a PK–FK join graph.

The paper's synthetic datasets are 1–5 tables where a "main" table exposes a
primary key and other tables reference it through foreign keys, forming an
acyclic join graph (a forest).  :class:`Dataset` stores the tables and the
foreign-key edges and offers graph utilities (connected sub-schemas, join
paths) used by the workload generator, the ground-truth counter and the
feature extractor.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .table import PK_COLUMN, Table


@dataclass(frozen=True)
class ForeignKey:
    """A PK–FK edge: ``child.fk_column`` references ``parent.pk``."""

    child: str
    fk_column: str
    parent: str

    def __post_init__(self):
        if not self.fk_column.startswith("fk_"):
            raise ValueError(f"foreign-key column {self.fk_column!r} must start with 'fk_'")


class Dataset:
    """A named set of tables with foreign-key relationships."""

    def __init__(self, name: str, tables: list[Table], foreign_keys: list[ForeignKey]):
        self.name = name
        self.tables: dict[str, Table] = {t.name: t for t in tables}
        if len(self.tables) != len(tables):
            raise ValueError("duplicate table names")
        self.foreign_keys = list(foreign_keys)
        self._validate()
        self._graph = self._build_graph()
        if not nx.is_forest(self._graph) and self._graph.number_of_nodes() > 0:
            raise ValueError("join graph must be acyclic (a forest)")

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for fk in self.foreign_keys:
            if fk.child not in self.tables or fk.parent not in self.tables:
                raise ValueError(f"foreign key {fk} references unknown table")
            child = self.tables[fk.child]
            parent = self.tables[fk.parent]
            if fk.fk_column not in child:
                raise ValueError(f"table {fk.child!r} lacks column {fk.fk_column!r}")
            if PK_COLUMN not in parent:
                raise ValueError(f"table {fk.parent!r} lacks a primary key")
            fk_values = child[fk.fk_column]
            if fk_values.min(initial=0) < 0 or fk_values.max(initial=0) >= parent.num_rows:
                raise ValueError(
                    f"foreign key {fk.child}.{fk.fk_column} has values outside "
                    f"the parent key range [0, {parent.num_rows})"
                )

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.tables)
        for fk in self.foreign_keys:
            if graph.has_edge(fk.child, fk.parent):
                # Two FKs between one table pair form a (multi-)cycle.
                raise ValueError("join graph must be acyclic (a forest)")
            graph.add_edge(fk.child, fk.parent, fk=fk)
        return graph

    # ------------------------------------------------------------------
    @property
    def table_names(self) -> list[str]:
        return list(self.tables)

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def total_rows(self) -> int:
        return sum(t.num_rows for t in self.tables.values())

    def __getitem__(self, name: str) -> Table:
        return self.tables[name]

    def __repr__(self) -> str:
        return (f"Dataset({self.name!r}, tables={self.num_tables}, "
                f"fks={len(self.foreign_keys)})")

    # ------------------------------------------------------------------
    # Join-graph utilities
    # ------------------------------------------------------------------
    def join_graph(self) -> nx.Graph:
        return self._graph.copy()

    def fk_between(self, a: str, b: str) -> ForeignKey | None:
        """The FK joining tables ``a`` and ``b`` (either direction), if any."""
        if self._graph.has_edge(a, b):
            return self._graph.edges[a, b]["fk"]
        return None

    def is_connected_subset(self, tables: tuple[str, ...]) -> bool:
        if len(tables) == 1:
            return tables[0] in self.tables
        sub = self._graph.subgraph(tables)
        return sub.number_of_nodes() == len(tables) and nx.is_connected(sub)

    def subset_edges(self, tables: tuple[str, ...]) -> list[ForeignKey]:
        """All FK edges with both endpoints inside ``tables``."""
        table_set = set(tables)
        return [fk for fk in self.foreign_keys
                if fk.child in table_set and fk.parent in table_set]

    def connected_subsets(self, max_size: int | None = None) -> list[tuple[str, ...]]:
        """Enumerate all connected table subsets (join templates)."""
        names = sorted(self.tables)
        limit = max_size or len(names)
        found: set[tuple[str, ...]] = set()
        # BFS over subsets, growing connected sets one neighbour at a time.
        frontier = [frozenset([n]) for n in names]
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            found.add(tuple(sorted(current)))
            if len(current) >= limit:
                continue
            neighbours = set()
            for node in current:
                neighbours.update(self._graph.neighbors(node))
            for neighbour in neighbours - current:
                grown = current | {neighbour}
                if grown not in seen:
                    seen.add(grown)
                    frontier.append(grown)
        return sorted(found)

    def join_correlation(self, fk: ForeignKey) -> float:
        """Feature used by AutoCE: |set(FK values)| / |set(PK values)|.

        Section V-A of the paper computes the join correlation as the ratio of
        the FK column's distinct values over the parent PK column's distinct
        values, which recovers the generation parameter ``p`` of process F3.
        """
        child = self.tables[fk.child]
        parent = self.tables[fk.parent]
        ndv_fk = len(np.unique(child[fk.fk_column]))
        return float(ndv_fk) / float(parent.num_rows)
