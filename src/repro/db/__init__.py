"""Relational substrate: columnar tables, PK–FK schemas, exact join counting.

Stands in for the PostgreSQL instance of the paper: it provides ground-truth
cardinalities (via exact acyclic-join counting) and the join samples that
data-driven CE models train on.
"""

from .table import Table, PK_COLUMN
from .schema import Dataset, ForeignKey
from .counting import count_join, join_size, selectivity
from .sampling import materialize_join, JoinSampleCache

__all__ = [
    "Table", "PK_COLUMN", "Dataset", "ForeignKey",
    "count_join", "join_size", "selectivity",
    "materialize_join", "JoinSampleCache",
]
