"""Exact cardinality counting for acyclic (PK–FK) joins.

This module replaces "run the queries in the database to get the true
cardinalities" from the paper's labeling pipeline.  Because every join graph
in the reproduction is a forest of PK–FK edges, the exact count of

    ``|σ_preds(T1 ⋈ T2 ⋈ ... ⋈ Tk)|``

can be computed in linear time by weighted message passing over the join
tree (a special case of Yannakakis' algorithm): every row starts with weight
1 if it satisfies its table-local predicates, children aggregate their
weights group-by FK value and multiply them into the parent rows, and the
final answer is the weight sum at the root.
"""

from __future__ import annotations

import numpy as np

from .schema import Dataset
from .table import PK_COLUMN


def _local_weights(dataset: Dataset, table: str,
                   predicates: dict[str, list[tuple[str, int, int]]]) -> np.ndarray:
    mask = dataset[table].select(predicates.get(table, []))
    return mask.astype(np.float64)


def count_join(dataset: Dataset, tables: tuple[str, ...],
               predicates: list[tuple[str, str, int, int]]) -> int:
    """Exact result cardinality of an SPJ query.

    Parameters
    ----------
    tables:
        Connected subset of the dataset's tables (the join template).
    predicates:
        List of ``(table, column, lo, hi)`` inclusive range predicates.
    """
    tables = tuple(tables)
    if not dataset.is_connected_subset(tables):
        raise ValueError(f"{tables} is not a connected join template of {dataset.name}")

    by_table: dict[str, list[tuple[str, int, int]]] = {}
    for table, column, lo, hi in predicates:
        if table not in tables:
            raise ValueError(f"predicate on {table!r} outside the join template")
        by_table.setdefault(table, []).append((column, lo, hi))

    weights = {t: _local_weights(dataset, t, by_table) for t in tables}
    if len(tables) == 1:
        return int(round(weights[tables[0]].sum()))

    edges = dataset.subset_edges(tables)
    # Root the join tree at the first table and compute a post-order.
    adjacency: dict[str, list[str]] = {t: [] for t in tables}
    for fk in edges:
        adjacency[fk.child].append(fk.parent)
        adjacency[fk.parent].append(fk.child)
    root = tables[0]
    order: list[str] = []
    parent_of: dict[str, str | None] = {root: None}
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbour in adjacency[node]:
            if neighbour not in parent_of:
                parent_of[neighbour] = node
                stack.append(neighbour)

    # Fold messages bottom-up (reverse of the BFS order).
    for node in reversed(order):
        up = parent_of[node]
        if up is None:
            continue
        fk = dataset.fk_between(node, up)
        if fk.child == node:
            # node holds the FK; aggregate node weights by FK value and
            # multiply into the parent rows they reference.
            message = np.bincount(
                dataset[node][fk.fk_column], weights=weights[node],
                minlength=dataset[up].num_rows,
            )
            weights[up] = weights[up] * message
        else:
            # node holds the PK; each parent row joins exactly the node row
            # whose pk equals the parent's FK value (pk value == row index).
            fk_values = dataset[up][fk.fk_column]
            weights[up] = weights[up] * weights[node][fk_values]

    return int(round(weights[root].sum()))


def join_size(dataset: Dataset, tables: tuple[str, ...]) -> int:
    """Exact size of the (unfiltered) join over ``tables``."""
    return count_join(dataset, tables, [])


def selectivity(dataset: Dataset, tables: tuple[str, ...],
                predicates: list[tuple[str, str, int, int]]) -> float:
    """Fraction of the join result surviving the predicates."""
    total = join_size(dataset, tables)
    if total == 0:
        return 0.0
    return count_join(dataset, tables, predicates) / total
