"""Column-store tables backed by numpy arrays.

This is the storage substrate standing in for PostgreSQL: every dataset in
the reproduction is a set of integer-valued columnar tables connected by
PK–FK joins.  Primary-key columns always hold the values ``0 .. n-1`` (value
== row position), which makes PK lookups O(1) array indexing throughout the
join machinery.
"""

from __future__ import annotations

import numpy as np

PK_COLUMN = "pk"


class Table:
    """An immutable columnar table.

    Parameters
    ----------
    name:
        Table identifier, unique within a :class:`~repro.db.schema.Dataset`.
    columns:
        Mapping from column name to 1-D integer numpy array.  All columns
        must share the same length.
    """

    def __init__(self, name: str, columns: dict[str, np.ndarray]):
        if not columns:
            raise ValueError(f"table {name!r} must have at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"table {name!r} has ragged columns: {lengths}")
        self.name = name
        self.columns: dict[str, np.ndarray] = {
            col: np.ascontiguousarray(values, dtype=np.int64)
            for col, values in columns.items()
        }
        self.num_rows = lengths.pop()

    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def has_pk(self) -> bool:
        return PK_COLUMN in self.columns

    def data_columns(self) -> list[str]:
        """Non-key columns (neither the PK nor any FK column)."""
        return [c for c in self.columns if c != PK_COLUMN and not c.startswith("fk_")]

    def fk_columns(self) -> list[str]:
        return [c for c in self.columns if c.startswith("fk_")]

    def __getitem__(self, column: str) -> np.ndarray:
        return self.columns[column]

    def __contains__(self, column: str) -> bool:
        return column in self.columns

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={self.column_names})"

    # ------------------------------------------------------------------
    def domain_size(self, column: str) -> int:
        return int(len(np.unique(self.columns[column])))

    def select(self, predicates: list[tuple[str, int, int]]) -> np.ndarray:
        """Boolean mask of rows satisfying all ``(column, lo, hi)`` ranges."""
        mask = np.ones(self.num_rows, dtype=bool)
        for column, lo, hi in predicates:
            values = self.columns[column]
            mask &= (values >= lo) & (values <= hi)
        return mask

    def take(self, indices: np.ndarray) -> "Table":
        """A new table holding the given rows (used by sampling selectors)."""
        return Table(self.name, {c: v[indices] for c, v in self.columns.items()})
