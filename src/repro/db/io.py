"""Dataset serialization: one ``.npz`` file per dataset.

Columns are stored as raw int64 arrays under ``{table}__{column}`` keys and
the schema (table order, column order, foreign keys) as a JSON metadata
blob, so a dataset round-trips exactly — including the PK–FK join graph.
Used by the command-line interface to pass datasets between ``generate``,
``label`` and ``recommend`` invocations.
"""

from __future__ import annotations

import json

import numpy as np

from .schema import Dataset, ForeignKey
from .table import Table

#: Bump on any change to the on-disk layout.
FORMAT_VERSION = 1

_SEPARATOR = "__"


def save_dataset(dataset: Dataset, path: str) -> None:
    """Write a dataset to ``path`` as a compressed ``.npz`` archive."""
    metadata = {
        "format_version": FORMAT_VERSION,
        "name": dataset.name,
        "tables": {t.name: t.column_names for t in dataset.tables.values()},
        "foreign_keys": [
            {"child": fk.child, "fk_column": fk.fk_column, "parent": fk.parent}
            for fk in dataset.foreign_keys
        ],
    }
    arrays: dict[str, np.ndarray] = {
        "metadata": np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
    }
    for table in dataset.tables.values():
        if _SEPARATOR in table.name:
            raise ValueError(
                f"table name {table.name!r} may not contain {_SEPARATOR!r}")
        for column, values in table.columns.items():
            arrays[f"{table.name}{_SEPARATOR}{column}"] = values
    np.savez_compressed(path, **arrays)


def load_dataset(path: str) -> Dataset:
    """Reload a dataset saved by :func:`save_dataset`."""
    with np.load(path) as data:
        metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
        version = metadata.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {version!r} "
                f"(this build reads version {FORMAT_VERSION})")
        tables = []
        for name, columns in metadata["tables"].items():
            tables.append(Table(name, {
                column: data[f"{name}{_SEPARATOR}{column}"]
                for column in columns
            }))
        foreign_keys = [ForeignKey(**fk) for fk in metadata["foreign_keys"]]
    return Dataset(metadata["name"], tables, foreign_keys)
