"""Design ablation: the two implementation choices inside DML training.

DESIGN.md calls out two places where this reproduction had to pin down
details the paper leaves open, and both are worth ablating:

* **τ policy** — Eq. 7 thresholds pair similarities at a fixed τ.  Score
  -vector cosine similarities concentrate near 1, so a fixed τ = 0.95 can
  label ~80–90 % of pairs positive.  The default re-derives τ per batch as
  a quantile of the batch's similarities.
* **similarity target** — one encoder must serve every metric weighting.
  The default (and paper-literal) protocol cycles one weight combination
  per batch; the alternative computes similarities over the concatenated
  all-weight score profile, a single consistent target.

Expected shape: the quantile τ dominates the fixed τ under either
similarity target; the two similarity targets are competitive with each
other (weight cycling wins on the default corpus).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.advisor import AutoCEConfig
from ..core.dml import DMLConfig
from .common import ExperimentSuite, format_table, get_suite

WEIGHTS = (1.0, 0.9, 0.7, 0.5, 0.3, 0.1)

#: Variant name → (tau_mode, similarity).
VARIANTS = {
    "quantile-tau + profile": ("quantile", "profile"),
    "fixed-tau + profile": ("fixed", "profile"),
    "quantile-tau + weight-cycle": ("quantile", "weight_cycle"),
    "fixed-tau + weight-cycle (paper-literal)": ("fixed", "weight_cycle"),
}


@dataclass
class AblationDMLDesignResult:
    #: d_error[variant][weight]
    d_error: dict[str, dict[float, float]]
    means: dict[str, float]
    text: str


def run(suite: ExperimentSuite | None = None,
        weights: tuple[float, ...] = WEIGHTS) -> AblationDMLDesignResult:
    suite = suite or get_suite()
    graphs, labels = suite.test_graphs_and_labels()

    d_error: dict[str, dict[float, float]] = {}
    means: dict[str, float] = {}
    rows = []
    for name, (tau_mode, similarity) in VARIANTS.items():
        # Half the default epoch budget: the protocol comparison is stable
        # well before full convergence, and four variants retrain per run.
        config = AutoCEConfig(
            seed=suite.seed,
            dml=DMLConfig(tau_mode=tau_mode, similarity=similarity,
                          epochs=40, seed=suite.seed))
        advisor = suite.autoce_variant(f"dml_{tau_mode}_{similarity}", config)
        per_weight = {}
        for w in weights:
            errors = [label.d_error(advisor.recommend(graph, w).model, w)
                      for graph, label in zip(graphs, labels)]
            per_weight[w] = float(np.mean(errors))
        d_error[name] = per_weight
        means[name] = float(np.mean(list(per_weight.values())))
        rows.append([name] + [per_weight[w] for w in weights] + [means[name]])

    text = format_table(
        ["variant"] + [f"w_a={w}" for w in weights] + ["mean"], rows,
        title="Ablation: tau policy and similarity target in DML training "
              "(mean D-error)")
    return AblationDMLDesignResult(d_error, means, text)
