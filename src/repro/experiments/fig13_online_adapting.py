"""Figure 13: ablation of online adapting (Sec. V-E).

Datasets are generated from distribution ranges *outside* the training
corpus (bigger domains, wider tables); those flagged as drifted by the
advisor's 90th-percentile distance test are split into an adaptation set
(labeled online, encoder updated) and an evaluation set.  Expected shape:
online adapting cuts the D-error on drifted datasets substantially at every
weight.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..core.advisor import AutoCE, AutoCEConfig
from .common import ExperimentSuite, format_table, get_suite
from .corpus import label_one
from ..datagen.spec import random_spec

WEIGHTS = (0.9, 0.7, 0.5)

#: Generation ranges deliberately outside the training corpus defaults.
DRIFT_RANGES = {
    "num_tables": (5, 6),
    "columns_per_table": (6, 9),
    "rows": (2600, 4000),
    "domain": (150, 400),
    "skew": (0.6, 1.0),
    "max_correlation": (0.5, 1.0),
    "interaction": (0.5, 1.0),
    "fanout_skew": (0.7, 1.0),
}


@dataclass
class Fig13Result:
    without: dict[float, float]
    with_adapting: dict[float, float]
    drift_detection_rate: float
    text: str


def run(suite: ExperimentSuite | None = None, num_drifted: int = 10,
        num_adapt: int = 5) -> Fig13Result:
    suite = suite or get_suite()
    base = suite.autoce()

    drifted = [label_one(random_spec(5_000_000 + i, ranges=DRIFT_RANGES),
                         suite.testbed)
               for i in range(num_drifted)]
    detected = [base.is_drifted(e.graph) for e in drifted]
    rate = float(np.mean(detected))

    adapt_set = drifted[:num_adapt]
    eval_set = drifted[num_adapt:]

    without = {
        w: float(np.mean([e.label.d_error(base.recommend(e.graph, w).model, w)
                          for e in eval_set]))
        for w in WEIGHTS
    }

    # A fresh advisor trained identically, then adapted online.
    entries = suite.train_corpus()
    adapted = AutoCE(AutoCEConfig(seed=suite.seed))
    adapted.fit([e.graph for e in entries], [e.label for e in entries])
    for entry in adapt_set:
        adapted.adapt_online(entry.graph, entry.label)
    with_adapting = {
        w: float(np.mean([e.label.d_error(adapted.recommend(e.graph, w).model, w)
                          for e in eval_set]))
        for w in WEIGHTS
    }

    rows = [[f"w_a = {w}", without[w], with_adapting[w]] for w in WEIGHTS]
    text = format_table(
        ["setting", "Without Online Adapting", "With Online Adapting"],
        rows,
        title=(f"Figure 13: online adapting on drifted datasets "
               f"(drift detection rate {rate:.0%})"))
    return Fig13Result(without, with_adapting, rate, text)
