"""Table V: end-to-end latency in the PostgreSQL substitute.

For single-table and multi-table workloads, every estimator's cardinalities
are injected into the optimizer and the chosen plans are executed for real.
Reported per method: total running time + total inference latency, and the
improvement of the *total* over the default PostgreSQL estimator.

Expected shapes (the paper's): TrueCard gives the best running time;
slow-inference models (NeuroCard/UAE) lose on single tables where inference
dominates; fast query-driven models (LW-NN) win single-table but lose
multi-table where plan quality dominates; AutoCE(w_a=0.5) is best
single-table, AutoCE(w_a=1.0) best multi-table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ce.base import TrainingContext
from ..ce.postgres import PostgresEstimator
from ..ce.template_base import TemplateModel
from ..datagen.multi_table import generate_dataset
from ..datagen.spec import random_spec
from ..engine.e2e import TrueCardEstimator, run_e2e
from ..testbed.runner import TestbedConfig
from ..utils.cache import DiskCache, stable_hash
from ..workload.generator import generate_workload
from .common import CANDIDATES, ExperimentSuite, format_table, get_suite
from .corpus import DEFAULT_CACHE_DIR

METHODS = ("PostgreSQL", "TrueCard") + CANDIDATES + (
    "AutoCE(w_a=0.5)", "AutoCE(w_a=1.0)")


@dataclass
class Table5Result:
    #: totals[kind][method] = (running_s, inference_s)
    totals: dict[str, dict[str, tuple[float, float]]]
    #: improvement[kind][method] vs the PostgreSQL estimator (total time)
    improvement: dict[str, dict[str, float]]
    text: str


def _all_subtemplates(dataset, queries):
    templates = set()
    for query in queries:
        tables = query.template
        for candidate in dataset.connected_subsets():
            if set(candidate) <= set(tables):
                templates.add(candidate)
    return sorted(templates)


def _run_kind(suite: ExperimentSuite, kind: str, specs, num_queries: int):
    testbed = suite.testbed
    totals: dict[str, list[float]] = {m: [0.0, 0.0] for m in METHODS}
    advisor = suite.autoce()
    for spec in specs:
        dataset = generate_dataset(spec)
        workload = generate_workload(
            dataset, num_train=testbed.num_train_queries,
            num_test=num_queries, seed=suite.seed + 5)
        ctx = TrainingContext.build(dataset, workload, seed=suite.seed,
                                    sample_size=testbed.sample_size)
        candidates = testbed.build_candidates()
        sub_templates = _all_subtemplates(dataset, workload.test)
        fitted = {}
        for name in CANDIDATES:
            model = candidates[name]
            model.fit(ctx)
            if isinstance(model, TemplateModel):
                model.prepare_templates(sub_templates)
            fitted[name] = model
        postgres = PostgresEstimator()
        postgres.fit(ctx)
        fitted["PostgreSQL"] = postgres
        fitted["TrueCard"] = TrueCardEstimator(dataset)

        graph = advisor.featurize(dataset)
        fitted["AutoCE(w_a=0.5)"] = fitted[advisor.recommend(graph, 0.5).model]
        fitted["AutoCE(w_a=1.0)"] = fitted[advisor.recommend(graph, 1.0).model]

        for method in METHODS:
            result = run_e2e(dataset, workload.test, fitted[method])
            totals[method][0] += result.execution_time
            inference = (0.0 if method == "TrueCard" else result.inference_time)
            totals[method][1] += inference
    return {m: (v[0], v[1]) for m, v in totals.items()}


def run(suite: ExperimentSuite | None = None, num_single: int = 2,
        num_multi: int = 2, num_queries: int = 30,
        use_cache: bool = True) -> Table5Result:
    suite = suite or get_suite()
    cache = DiskCache(suite.cache_dir or DEFAULT_CACHE_DIR)
    key = "table5_" + stable_hash({
        "version": 3, "num_single": num_single, "num_multi": num_multi,
        "num_queries": num_queries, "corpus": suite.num_train,
        "seed": suite.seed,
    })

    def compute():
        single_specs = [random_spec(
            3_000_000 + i,
            ranges={"num_tables": (1, 1), "rows": (12_000, 20_000),
                    "columns_per_table": (4, 7)})
            for i in range(num_single)]
        multi_specs = [random_spec(
            4_000_000 + i,
            ranges={"num_tables": (3, 5), "rows": (8_000, 15_000)})
            for i in range(num_multi)]
        return {
            "single-table": _run_kind(suite, "single", single_specs, num_queries),
            "multi-table": _run_kind(suite, "multi", multi_specs, num_queries),
        }

    totals = cache.get_or_compute(key, compute) if use_cache else compute()

    improvement: dict[str, dict[str, float]] = {}
    for kind, per_method in totals.items():
        pg_total = sum(per_method["PostgreSQL"])
        improvement[kind] = {
            method: (pg_total - sum(times)) / pg_total
            for method, times in per_method.items()
        }

    rows = []
    for method in METHODS:
        s_run, s_inf = totals["single-table"][method]
        m_run, m_inf = totals["multi-table"][method]
        rows.append([
            method,
            f"{s_run:.3f}s + {s_inf:.3f}s",
            f"{m_run:.3f}s + {m_inf:.3f}s",
            f"{improvement['single-table'][method]:+.1%}",
            f"{improvement['multi-table'][method]:+.1%}",
        ])
    text = format_table(
        ["method", "single-table (run + infer)", "multi-table (run + infer)",
         "single impr.", "multi impr."],
        rows, title="Table V: end-to-end latency in the PostgreSQL substitute")
    return Table5Result(totals, improvement, text)
