"""Table V: end-to-end latency in the PostgreSQL substitute.

For single-table and multi-table workloads, every estimator's cardinalities
are injected into the optimizer (through the provider layer of
:mod:`repro.engine.providers`) and the chosen plans are executed for real.
Reported per method: total running time + total inference latency, and the
improvement of the *total* over the default PostgreSQL estimator.

Expected shapes (the paper's): TrueCard gives the best running time;
slow-inference models (NeuroCard/UAE) lose on single tables where inference
dominates; fast query-driven models (LW-NN) win single-table but lose
multi-table where plan quality dominates; AutoCE(w_a=0.5) is best
single-table, AutoCE(w_a=1.0) best multi-table.

The AutoCE rows are *recommendations over already-fitted models*: when the
advisor picks a model the sweep has measured, the measured result is reused
(same totals bit-for-bit) instead of re-planning and re-executing the whole
workload — dedupe is by fitted-model identity, so two weights that pick the
same model share one run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..ce.base import CEModel, TrainingContext
from ..ce.postgres import PostgresEstimator
from ..ce.template_base import TemplateModel
from ..datagen.multi_table import generate_dataset
from ..datagen.spec import random_spec
from ..engine.e2e import E2EResult, TrueCardEstimator, run_e2e
from ..utils.cache import DiskCache, stable_hash
from ..workload.generator import generate_workload
from .common import CANDIDATES, ExperimentSuite, format_table, get_suite
from .corpus import DEFAULT_CACHE_DIR

METHODS = ("PostgreSQL", "TrueCard") + CANDIDATES + (
    "AutoCE(w_a=0.5)", "AutoCE(w_a=1.0)")

#: The advisor rows and the accuracy weight each one serves under.
_ADVISOR_WEIGHTS = {"AutoCE(w_a=0.5)": 0.5, "AutoCE(w_a=1.0)": 1.0}


@dataclass
class Table5Result:
    #: totals[kind][method] = (running_s, inference_s)
    totals: dict[str, dict[str, tuple[float, float]]]
    #: improvement[kind][method] vs the PostgreSQL estimator (total time);
    #: NaN when the PostgreSQL total is ~zero (rendered "n/a").
    improvement: dict[str, dict[str, float]]
    text: str
    #: per-kind diagnostics: advisor picks and how many workload runs the
    #: fitted-model dedupe skipped.
    stats: dict[str, dict] = field(default_factory=dict)


def _all_subtemplates(dataset, queries):
    templates = set()
    for query in queries:
        tables = query.template
        for candidate in dataset.connected_subsets():
            if set(candidate) <= set(tables):
                templates.add(candidate)
    return sorted(templates)


def _run_kind(suite: ExperimentSuite, kind: str, specs, num_queries: int):
    """Measure every method on every spec of one workload ``kind``.

    Returns ``(totals, stats)`` where ``totals[method] = (run_s, infer_s)``
    and ``stats`` records, per ``kind``, the advisor's picks and the runs
    the fitted-model dedupe saved.
    """
    testbed = suite.testbed
    totals: dict[str, list[float]] = {m: [0.0, 0.0] for m in METHODS}
    advisor = suite.autoce()
    stats: dict = {"kind": kind, "datasets": len(specs),
                   "advisor_picks": {}, "deduped_runs": 0}
    for spec in specs:
        dataset = generate_dataset(spec)
        workload = generate_workload(
            dataset, num_train=testbed.num_train_queries,
            num_test=num_queries, seed=suite.seed + 5)
        ctx = TrainingContext.build(dataset, workload, seed=suite.seed,
                                    sample_size=testbed.sample_size)
        candidates = testbed.build_candidates()
        sub_templates = _all_subtemplates(dataset, workload.test)
        fitted: dict[str, CEModel] = {}
        for name in CANDIDATES:
            model = candidates[name]
            model.fit(ctx)
            if isinstance(model, TemplateModel):
                model.prepare_templates(sub_templates)
            fitted[name] = model
        postgres = PostgresEstimator()
        postgres.fit(ctx)
        fitted["PostgreSQL"] = postgres
        fitted["TrueCard"] = TrueCardEstimator(dataset)

        graph = advisor.featurize(dataset)
        picks = {row: advisor.recommend(graph, weight).model
                 for row, weight in _ADVISOR_WEIGHTS.items()}
        stats["advisor_picks"][spec.name] = dict(picks)

        # One workload run per *fitted model*: an AutoCE row whose pick the
        # sweep has already measured reuses that result bit-for-bit.
        measured: dict[int, E2EResult] = {}

        def measure(model: CEModel) -> E2EResult:
            key = id(model)
            if key in measured:
                stats["deduped_runs"] += 1
            else:
                measured[key] = run_e2e(dataset, workload.test, model)
            return measured[key]

        for method in METHODS:
            model = fitted[picks.get(method, method)]
            result = measure(model)
            totals[method][0] += result.execution_time
            totals[method][1] += result.inference_time
    return {m: (v[0], v[1]) for m, v in totals.items()}, stats


def improvements(totals: dict[str, dict[str, tuple[float, float]]]
                 ) -> dict[str, dict[str, float]]:
    """Per-kind improvement of each method's total over PostgreSQL's.

    A zero (or vanishing) PostgreSQL total — possible on tiny smoke
    workloads — yields ``NaN`` for every method rather than a
    ``ZeroDivisionError``; the table renders it as ``n/a``.
    """
    out: dict[str, dict[str, float]] = {}
    for kind, per_method in totals.items():
        pg_total = sum(per_method["PostgreSQL"])
        out[kind] = {
            method: (float("nan") if pg_total <= 0.0
                     else (pg_total - sum(times)) / pg_total)
            for method, times in per_method.items()
        }
    return out


def _format_improvement(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value:+.1%}"


def run(suite: ExperimentSuite | None = None, num_single: int = 2,
        num_multi: int = 2, num_queries: int = 30,
        use_cache: bool = True) -> Table5Result:
    suite = suite or get_suite()
    cache = DiskCache(suite.cache_dir or DEFAULT_CACHE_DIR)
    # Every testbed knob shapes the fitted models (and therefore the
    # totals), so the whole config folds into the key — a changed
    # num_train_queries/sample_size must miss, not serve stale totals.
    key = "table5_" + stable_hash({
        "version": 4, "num_single": num_single, "num_multi": num_multi,
        "num_queries": num_queries, "corpus": suite.num_train,
        "seed": suite.seed, "testbed": vars(suite.testbed),
    })

    def compute():
        single_specs = [random_spec(
            3_000_000 + i,
            ranges={"num_tables": (1, 1), "rows": (12_000, 20_000),
                    "columns_per_table": (4, 7)})
            for i in range(num_single)]
        multi_specs = [random_spec(
            4_000_000 + i,
            ranges={"num_tables": (3, 5), "rows": (8_000, 15_000)})
            for i in range(num_multi)]
        single = _run_kind(suite, "single-table", single_specs, num_queries)
        multi = _run_kind(suite, "multi-table", multi_specs, num_queries)
        return {
            "totals": {"single-table": single[0], "multi-table": multi[0]},
            "stats": {"single-table": single[1], "multi-table": multi[1]},
        }

    payload = cache.get_or_compute(key, compute) if use_cache else compute()
    totals, stats = payload["totals"], payload["stats"]
    improvement = improvements(totals)

    rows = []
    for method in METHODS:
        s_run, s_inf = totals["single-table"][method]
        m_run, m_inf = totals["multi-table"][method]
        rows.append([
            method,
            f"{s_run:.3f}s + {s_inf:.3f}s",
            f"{m_run:.3f}s + {m_inf:.3f}s",
            _format_improvement(improvement["single-table"][method]),
            _format_improvement(improvement["multi-table"][method]),
        ])
    text = format_table(
        ["method", "single-table (run + infer)", "multi-table (run + infer)",
         "single impr.", "multi impr."],
        rows, title="Table V: end-to-end latency in the PostgreSQL substitute")
    return Table5Result(totals, improvement, text, stats)
