"""Experiment drivers regenerating every table and figure of Sec. VII.

Each module exposes ``run(suite=None, ...)`` returning a result object with
a ``text`` rendering of the paper's table/figure plus structured data; the
``benchmarks/`` directory wires each one into pytest-benchmark.
"""

from .common import ExperimentSuite, get_suite, format_table
from .corpus import (CorpusConfig, LabeledEntry, build_corpus, label_one,
                     label_datasets)

__all__ = [
    "ExperimentSuite", "get_suite", "format_table",
    "CorpusConfig", "LabeledEntry", "build_corpus", "label_one",
    "label_datasets",
]
