"""Table II: recommendation accuracy of the five advisors.

Accuracy = fraction of datasets whose selected model has D-error ≤ ε, for
ε ∈ {0.1, 0.15, 0.2} and w_a ∈ {1.0, 0.9, 0.7}, over the synthetic test
corpus, IMDB-20 and STATS-20.  Expected shape: AutoCE highest everywhere,
Rule lowest, MLP between Knn and AutoCE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.selection_baselines import OnlineSelectorConfig, SamplingSelector
from .common import ExperimentSuite, format_table, get_suite

EPSILONS = (0.1, 0.15, 0.2)
WEIGHTS = (1.0, 0.9, 0.7)
ADVISORS = ("MLP", "Rule", "Knn", "Sampling", "AutoCE")


@dataclass
class Table2Result:
    #: accuracy[suite][w_a][advisor][epsilon]
    accuracy: dict[str, dict[float, dict[str, dict[float, float]]]]
    text: str


def run(suite: ExperimentSuite | None = None,
        max_sampling_datasets: int = 8) -> Table2Result:
    suite = suite or get_suite()
    autoce = suite.autoce()
    mlp = suite.baseline("MLP")
    rule = suite.baseline("Rule")
    knn = suite.baseline("Knn")
    sampling = SamplingSelector(OnlineSelectorConfig(seed=suite.seed))

    suites: dict[str, tuple] = {}
    graphs, labels = suite.test_graphs_and_labels()
    entries = suite.test_corpus()
    suites[f"Synthetic({len(graphs)})"] = (
        [e.dataset for e in entries], graphs, labels)
    for name, loader in (("IMDB-20", suite.imdb20), ("STATS-20", suite.stats20)):
        datasets, s_graphs, s_labels = loader()
        suites[name] = ([lambda d=d: d for d in datasets], s_graphs, s_labels)

    accuracy: dict = {}
    for suite_name, (dataset_fns, s_graphs, s_labels) in suites.items():
        accuracy[suite_name] = {}
        for w in WEIGHTS:
            errors = {a: [] for a in ADVISORS}
            for i, (graph, label) in enumerate(zip(s_graphs, s_labels)):
                errors["AutoCE"].append(
                    label.d_error(autoce.recommend(graph, w).model, w))
                errors["MLP"].append(label.d_error(mlp.recommend(graph, w), w))
                errors["Rule"].append(label.d_error(rule.recommend(graph, w), w))
                errors["Knn"].append(label.d_error(knn.recommend(graph, w), w))
                if i < max_sampling_datasets:
                    model = sampling.recommend_dataset(dataset_fns[i](), w)
                    errors["Sampling"].append(label.d_error(model, w))
            accuracy[suite_name][w] = {
                a: {eps: float(np.mean(np.asarray(errs) <= eps))
                    for eps in EPSILONS}
                for a, errs in errors.items() if errs
            }

    blocks = []
    for suite_name, per_weight in accuracy.items():
        for w, per_advisor in per_weight.items():
            rows = [[a] + [f"{per_advisor[a][eps]:.0%}" for eps in EPSILONS]
                    for a in ADVISORS if a in per_advisor]
            blocks.append(format_table(
                ["advisor"] + [f"ε={eps}" for eps in EPSILONS], rows,
                title=f"Table II [{suite_name}, w_a={w}]: recommendation accuracy"))
    return Table2Result(accuracy, "\n\n".join(blocks))
