"""Table I: statistics of the evaluation datasets."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datagen.presets import imdb_light_like, power_like, stats_light_like
from ..datagen.spec import random_spec
from ..datagen.multi_table import generate_dataset
from .common import ExperimentSuite, format_table, get_suite


@dataclass
class Table1Result:
    rows: list[list]
    text: str


def _stats(dataset) -> list:
    rows = [t.num_rows for t in dataset.tables.values()]
    cols = sum(len(t.data_columns()) for t in dataset.tables.values())
    domain = sum(t.domain_size(c) for t in dataset.tables.values()
                 for c in t.data_columns())
    return [dataset.name, dataset.num_tables,
            f"{min(rows)}-{max(rows)}", cols, domain]


def run(suite: ExperimentSuite | None = None,
        num_synthetic_probe: int = 5) -> Table1Result:
    suite = suite or get_suite()
    rows = [_stats(imdb_light_like()), _stats(stats_light_like()),
            _stats(power_like())]
    synthetic = [generate_dataset(random_spec(i)) for i in range(num_synthetic_probe)]
    tables = [d.num_tables for d in synthetic]
    table_rows = [t.num_rows for d in synthetic for t in d.tables.values()]
    cols = [sum(len(t.data_columns()) for t in d.tables.values())
            for d in synthetic]
    rows.append([
        "synthetic", f"{min(tables)}-{max(tables)}",
        f"{min(table_rows)}-{max(table_rows)}",
        f"{min(cols)}-{max(cols)}", "-",
    ])
    text = format_table(
        ["dataset", "#tables", "#rows", "#columns", "total domain size"],
        rows, title="Table I: statistics of datasets")
    return Table1Result(rows, text)
