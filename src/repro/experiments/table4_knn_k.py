"""Table IV: AutoCE's D-error as the KNN predictor's k varies.

Expected shape: a U-shaped curve — k = 1 is hostage to a single neighbor,
very large k mixes in distant labels.  The paper's optimum on a
1 000-dataset corpus is k = 2; on this reproduction's smaller default
corpus the minimum sits at a moderately larger k (label noise averages out
over a few more neighbors), which is why the sweep extends beyond 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import ExperimentSuite, format_table, get_suite

KS = (1, 2, 3, 4, 5, 7, 9)
WEIGHTS = (1.0, 0.9, 0.7, 0.5)


@dataclass
class Table4Result:
    #: d_error[w_a][k]
    d_error: dict[float, dict[int, float]]
    text: str


def run(suite: ExperimentSuite | None = None) -> Table4Result:
    suite = suite or get_suite()
    advisor = suite.autoce()
    graphs, labels = suite.test_graphs_and_labels()

    d_error: dict[float, dict[int, float]] = {}
    for w in WEIGHTS:
        d_error[w] = {}
        for k in KS:
            errors = [
                label.d_error(advisor.recommend(graph, w, k=k).model, w)
                for graph, label in zip(graphs, labels)
            ]
            d_error[w][k] = float(np.mean(errors))

    rows = [[f"D-error (w_a={w})"] + [f"{d_error[w][k]:.2%}" for k in KS]
            for w in WEIGHTS]
    text = format_table(["metric"] + [f"k={k}" for k in KS], rows,
                        title="Table IV: AutoCE's D-error under different k")
    return Table4Result(d_error, text)
