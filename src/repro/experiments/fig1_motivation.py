"""Figure 1: the motivating experiment.

Q-error of DeepDB / NeuroCard / MSCN on an IMDB-like multi-table dataset
vs a Power-like single-table dataset, plus inference latency on Power.
Expected shape: the accuracy ranking flips between the two datasets and
MSCN is the fastest of the three, NeuroCard the slowest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datagen.presets import imdb_light_like, power_like
from ..testbed.runner import TestbedConfig, run_testbed
from .common import ExperimentSuite, format_table, get_suite

MODELS = ["DeepDB", "NeuroCard", "MSCN"]


@dataclass
class Fig1Result:
    imdb_qerrors: dict[str, float]
    power_qerrors: dict[str, float]
    power_latency_ms: dict[str, float]
    text: str


def run(suite: ExperimentSuite | None = None) -> Fig1Result:
    suite = suite or get_suite()
    testbed = TestbedConfig(seed=suite.seed)
    imdb = run_testbed(imdb_light_like(), config=testbed, model_names=MODELS)
    power = run_testbed(power_like(), config=testbed, model_names=MODELS)

    imdb_q = dict(zip(imdb.model_names, imdb.qerror_means))
    power_q = dict(zip(power.model_names, power.qerror_means))
    power_l = {n: v * 1000.0 for n, v in
               zip(power.model_names, power.latency_means)}

    rows = [[m, imdb_q[m], power_q[m], power_l[m]] for m in MODELS]
    text = format_table(
        ["model", "Q-error (IMDB-like)", "Q-error (Power-like)",
         "latency on Power (ms)"],
        rows, title="Figure 1: CE models across datasets (motivation)")
    return Fig1Result(imdb_q, power_q, power_l, text)
