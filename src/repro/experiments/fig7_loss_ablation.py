"""Figure 7: weighted contrastive loss (Eq. 9) vs basic contrastive (Eq. 10).

Two advisors differ only in the DML loss; both are evaluated by mean
D-error on the held-out synthetic datasets at w_q ∈ {0.9, 0.7, 0.5}.
Expected shape: the weighted loss dominates at every weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.advisor import AutoCEConfig
from ..core.dml import DMLConfig
from .common import ExperimentSuite, format_table, get_suite

WEIGHTS = (0.9, 0.7, 0.5)


@dataclass
class Fig7Result:
    weighted: dict[float, float]
    basic: dict[float, float]
    text: str


def run(suite: ExperimentSuite | None = None) -> Fig7Result:
    suite = suite or get_suite()
    weighted = suite.autoce()
    basic = suite.autoce_variant(
        "basic_loss",
        AutoCEConfig(dml=DMLConfig(loss="basic"), seed=suite.seed))
    graphs, labels = suite.test_graphs_and_labels()

    results = {"weighted": {}, "basic": {}}
    for name, advisor in (("weighted", weighted), ("basic", basic)):
        for w in WEIGHTS:
            errors = [label.d_error(advisor.recommend(graph, w).model, w)
                      for graph, label in zip(graphs, labels)]
            results[name][w] = float(np.mean(errors))

    rows = [[f"w_q = {w}", results["weighted"][w], results["basic"][w]]
            for w in WEIGHTS]
    text = format_table(
        ["setting", "Weighted Contrastive Loss (D-error)",
         "Basic Contrastive Loss (D-error)"],
        rows, title="Figure 7: contrastive loss comparison")
    return Fig7Result(results["weighted"], results["basic"], text)
