"""Figure 11: ablations of the two core components.

(a) Deep metric learning: AutoCE vs AutoCE(Without DML) — the same GIN
    trained as a score-vector regressor — at w_a ∈ {0.9, 0.7, 0.5}.
(b) Incremental learning: AutoCE vs No-Augmentation vs Without-IL while
    varying the fraction of training data from 70 % to 100 % (w_a = 0.9).

Expected shapes: DML strictly lowers D-error; incremental learning with
Mixup dominates both ablations at every training-data fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.advisor import AutoCEConfig
from .common import ExperimentSuite, format_table, get_suite

DML_WEIGHTS = (0.9, 0.7, 0.5)
FRACTIONS = (1.0, 0.9, 0.8, 0.7)
IL_WEIGHT = 0.9


@dataclass
class Fig11Result:
    dml: dict[str, dict[float, float]]
    incremental: dict[str, dict[float, float]]
    text: str


def _mean_d_error(recommend, graphs, labels, w) -> float:
    return float(np.mean([label.d_error(recommend(graph, w), w)
                          for graph, label in zip(graphs, labels)]))


def run(suite: ExperimentSuite | None = None) -> Fig11Result:
    suite = suite or get_suite()
    graphs, labels = suite.test_graphs_and_labels()

    # --- (a) DML ablation -------------------------------------------------
    autoce = suite.autoce()
    without_dml = suite.baseline("Without-DML")
    dml = {"AutoCE": {}, "Without DML": {}}
    for w in DML_WEIGHTS:
        dml["AutoCE"][w] = _mean_d_error(
            lambda g, w_: autoce.recommend(g, w_).model, graphs, labels, w)
        dml["Without DML"][w] = _mean_d_error(
            without_dml.recommend, graphs, labels, w)

    # --- (b) Incremental-learning ablation --------------------------------
    variants = {
        "AutoCE": AutoCEConfig(seed=suite.seed),
        "No Augmentation": AutoCEConfig(seed=suite.seed,
                                        incremental_augment=False),
        "Without IL": AutoCEConfig(seed=suite.seed, use_incremental=False),
    }
    incremental = {name: {} for name in variants}
    for fraction in FRACTIONS:
        for name, config in variants.items():
            advisor = suite.autoce_variant(
                f"il_{name}_{fraction}", config, fraction=fraction)
            incremental[name][fraction] = _mean_d_error(
                lambda g, w_: advisor.recommend(g, w_).model,
                graphs, labels, IL_WEIGHT)

    rows_a = [[f"w_a = {w}", dml["AutoCE"][w], dml["Without DML"][w]]
              for w in DML_WEIGHTS]
    rows_b = [[f"{int(frac * 100)}%"] +
              [incremental[name][frac] for name in variants]
              for frac in FRACTIONS]
    text = "\n\n".join([
        format_table(["setting", "AutoCE", "Without DML"], rows_a,
                     title="Figure 11(a): ablation of deep metric learning (mean D-error)"),
        format_table(["training data"] + list(variants), rows_b,
                     title="Figure 11(b): ablation of incremental learning (mean D-error)"),
    ])
    return Fig11Result(dml, incremental, text)
