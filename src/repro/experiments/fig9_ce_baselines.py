"""Figure 9: AutoCE vs nine fixed CE baselines (D-error distributions).

Every fixed strategy always deploys the same model; AutoCE picks per
dataset.  Expected shape (the paper's headline): each fixed model is
competitive only in its niche — data-driven models at accuracy-leaning
weights, query-driven ones at efficiency-leaning weights — while AutoCE
stays near-optimal across the whole weight range, giving it a many-times
smaller *mean* D-error than any fixed model.

Scoring basis: D-error compares a strategy's pick against the best model
*available to that strategy*, so each row is normalized over a coherent
score set (Eqs. 3–4 renormalize over the candidate set M):

* AutoCE and the seven fixed candidates → the 7-candidate label;
* Postgres / Ensemble (comparison baselines outside the candidate set) →
  the 7 candidates plus that baseline.

Judging the advisor against models it is not allowed to select (e.g. the
Ensemble, which is often the most accurate but by construction the slowest)
would measure the candidate set's ceiling, not the advisor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import CANDIDATES, ExperimentSuite, format_table, get_suite

WEIGHTS = (1.0, 0.9, 0.7, 0.5, 0.3)
EXTRA_BASELINES = ("Postgres", "Ensemble")


@dataclass
class Fig9Result:
    #: mean_d_error[strategy][w_a]; distributions[w_a][strategy] = list
    mean_d_error: dict[str, dict[float, float]]
    distributions: dict[float, dict[str, list[float]]]
    text: str


def run(suite: ExperimentSuite | None = None,
        weights: tuple[float, ...] = WEIGHTS) -> Fig9Result:
    suite = suite or get_suite()
    entries = suite.test_corpus()          # labels include the 9 models
    graphs, cand_labels = suite.test_graphs_and_labels()
    autoce = suite.autoce()

    # Per-strategy label bases (see module docstring).
    extra_labels = {
        extra: [e.label.subset(list(CANDIDATES) + [extra]) for e in entries]
        for extra in EXTRA_BASELINES
    }

    strategies = ("AutoCE",) + CANDIDATES + EXTRA_BASELINES
    mean_d = {s: {} for s in strategies}
    dists: dict[float, dict[str, list[float]]] = {}
    for w in weights:
        dists[w] = {s: [] for s in strategies}
        for i, (graph, label7) in enumerate(zip(graphs, cand_labels)):
            chosen = autoce.recommend(graph, w).model
            dists[w]["AutoCE"].append(label7.d_error(chosen, w))
            for model in CANDIDATES:
                dists[w][model].append(label7.d_error(model, w))
            for extra in EXTRA_BASELINES:
                dists[w][extra].append(extra_labels[extra][i].d_error(extra, w))
        for s in strategies:
            mean_d[s][w] = float(np.mean(dists[w][s]))

    def basis(strategy: str) -> str:
        return "candidates" if strategy not in EXTRA_BASELINES else f"+{strategy}"

    rows = [[s, basis(s)] + [mean_d[s][w] for w in weights]
            + [float(np.mean([mean_d[s][w] for w in weights]))]
            for s in strategies]
    text = format_table(
        ["strategy", "basis"] + [f"w_a={w}" for w in weights] + ["mean"],
        rows, title="Figure 9: mean D-error, AutoCE vs fixed CE models")
    return Fig9Result(mean_d, dists, text)
