"""Labeled corpus construction with disk caching (Stage 1 at scale).

The paper labels 1 200 synthetic datasets.  Here a corpus is a list of
:class:`LabeledEntry` — dataset spec + feature graph + testbed label — built
deterministically from a :class:`CorpusConfig` and cached on disk so that
every benchmark and experiment shares a single labeling pass.

The corpus size defaults (200 training / 40 held-out) keep a full labeling
pass under ~15 CPU-minutes; set the environment variables ``REPRO_CORPUS``
and ``REPRO_TEST`` to scale the experiments up towards the paper's setup
(1 000 / 200).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..core.graph import DEFAULT_MAX_COLUMNS, FeatureGraph, build_feature_graph
from ..datagen.multi_table import generate_dataset
from ..datagen.spec import DEFAULT_RANGES, DatasetSpec, random_spec
from ..db.schema import Dataset
from ..testbed.runner import TestbedConfig, run_testbed
from ..testbed.scores import DatasetLabel
from ..utils.cache import DiskCache, stable_hash

#: Bump when labeling semantics change, to invalidate stale caches.
_CACHE_VERSION = 4

DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR", os.path.join(os.path.dirname(__file__), "..", "..", "..",
                                    ".repro_cache"))


def env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@dataclass
class CorpusConfig:
    """Deterministic description of a labeled corpus."""

    num_datasets: int = 60
    base_seed: int = 0
    ranges: dict | None = None
    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    max_columns: int = DEFAULT_MAX_COLUMNS

    def cache_key(self) -> str:
        payload = {
            "version": _CACHE_VERSION,
            "num_datasets": self.num_datasets,
            "base_seed": self.base_seed,
            # Resolve the default ranges into the key so editing
            # DEFAULT_RANGES can never collide with a stale cache entry.
            "ranges": self.ranges or DEFAULT_RANGES,
            "testbed": vars(self.testbed),
            "max_columns": self.max_columns,
        }
        return "corpus_" + stable_hash(payload)


@dataclass
class LabeledEntry:
    """One labeled dataset: regenerable spec + feature graph + label."""

    spec: DatasetSpec
    graph: FeatureGraph
    label: DatasetLabel

    @property
    def name(self) -> str:
        return self.spec.name

    def dataset(self) -> Dataset:
        """Regenerate the full dataset (kept out of the cache for size)."""
        return generate_dataset(self.spec)


def label_one(spec: DatasetSpec, testbed: TestbedConfig,
              max_columns: int = DEFAULT_MAX_COLUMNS) -> LabeledEntry:
    dataset = generate_dataset(spec)
    graph = build_feature_graph(dataset, max_columns=max_columns)
    label = run_testbed(dataset, config=testbed)
    return LabeledEntry(spec=spec, graph=graph, label=label)


def build_corpus(config: CorpusConfig | None = None,
                 cache_dir: str | None = None,
                 progress: bool = False) -> list[LabeledEntry]:
    """Build (or load from cache) a labeled corpus."""
    config = config or CorpusConfig()
    cache = DiskCache(cache_dir or DEFAULT_CACHE_DIR)
    key = config.cache_key()

    def compute() -> list[LabeledEntry]:
        entries = []
        for i in range(config.num_datasets):
            spec = random_spec(config.base_seed * 1_000_003 + i,
                               ranges=config.ranges)
            entries.append(label_one(spec, config.testbed, config.max_columns))
            if progress:
                print(f"  labeled {i + 1}/{config.num_datasets}: {spec.name}",
                      flush=True)
        return entries

    return cache.get_or_compute(key, compute)


def label_datasets(datasets: list[Dataset], testbed: TestbedConfig | None = None,
                   max_columns: int = DEFAULT_MAX_COLUMNS,
                   cache_dir: str | None = None,
                   cache_tag: str | None = None):
    """Label concrete datasets (used for IMDB-20 / STATS-20 style suites).

    Returns parallel lists (graphs, labels).  When ``cache_tag`` is given,
    results are cached under that tag + testbed configuration.
    """
    testbed = testbed or TestbedConfig()

    def compute():
        graphs, labels = [], []
        for dataset in datasets:
            graphs.append(build_feature_graph(dataset, max_columns=max_columns))
            labels.append(run_testbed(dataset, config=testbed))
        return graphs, labels

    if cache_tag is None:
        return compute()
    cache = DiskCache(cache_dir or DEFAULT_CACHE_DIR)
    key = "labeled_" + stable_hash({
        "version": _CACHE_VERSION,
        "tag": cache_tag,
        "names": [d.name for d in datasets],
        "testbed": vars(testbed),
        "max_columns": max_columns,
    })
    return cache.get_or_compute(key, compute)
