"""Table III: efficacy on the CEB-like benchmark (query-driven models only).

As in the paper, data-driven models are excluded on CEB (they are too
expensive to train on the wide IMDB schema), so the candidate set is
{MSCN, LW-NN, LW-XGB}.  A dedicated advisor is trained on the synthetic
corpus with labels renormalized over the three query-driven models, and
evaluated on sub-schemas of the CEB-like clone.  Expected shape: AutoCE has
the lowest D-error at every w_a; MSCN's error grows as w_a falls (accurate
but slower), LW-NN's shrinks; LW-XGB is worst throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ce.registry import QUERY_DRIVEN_MODELS
from ..core.advisor import AutoCE, AutoCEConfig
from ..datagen.presets import ceb_like, derive_subschemas
from .common import ExperimentSuite, format_table, get_suite
from .corpus import label_datasets

WEIGHTS = (1.0, 0.9, 0.7, 0.5)


@dataclass
class Table3Result:
    #: d_error[strategy][w_a]
    d_error: dict[str, dict[float, float]]
    text: str


def run(suite: ExperimentSuite | None = None, num_subschemas: int = 10) -> Table3Result:
    suite = suite or get_suite()

    # Advisor over the query-driven candidate subset.
    entries = suite.train_corpus()
    qd_labels = [e.label.subset(QUERY_DRIVEN_MODELS) for e in entries]
    advisor = AutoCE(AutoCEConfig(seed=suite.seed))
    advisor.fit([e.graph for e in entries], qd_labels)

    datasets = derive_subschemas(ceb_like(), count=num_subschemas, seed=33,
                                 max_tables=5)
    graphs, labels = label_datasets(datasets, suite.testbed,
                                    cache_dir=suite.cache_dir, cache_tag="ceb")
    labels = [label.subset(QUERY_DRIVEN_MODELS) for label in labels]

    strategies = ("AutoCE",) + tuple(QUERY_DRIVEN_MODELS)
    d_error = {s: {} for s in strategies}
    for w in WEIGHTS:
        per = {s: [] for s in strategies}
        for graph, label in zip(graphs, labels):
            per["AutoCE"].append(
                label.d_error(advisor.recommend(graph, w).model, w))
            for model in QUERY_DRIVEN_MODELS:
                per[model].append(label.d_error(model, w))
        for s in strategies:
            d_error[s][w] = float(np.mean(per[s]))

    rows = [[f"D-error (w_a={w})"] + [f"{d_error[s][w]:.2%}" for s in strategies]
            for w in WEIGHTS]
    text = format_table(["metric"] + list(strategies), rows,
                        title="Table III: efficacy on the CEB-like benchmark")
    return Table3Result(d_error, text)
