"""Figure 10: advisor efficacy on the real-world suites (IMDB-20, STATS-20).

All advisors are trained on the synthetic corpus only; the 20 random
sub-schemas per real-world clone are completely unseen.  Expected shape:
AutoCE's mean D-error is several times lower than MLP / Rule / Sampling /
Knn on both suites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.graph import build_feature_graph
from ..core.selection_baselines import OnlineSelectorConfig, SamplingSelector
from .common import ExperimentSuite, format_table, get_suite

ADVISORS = ("AutoCE", "MLP", "Rule", "Sampling", "Knn")
WEIGHTS = (1.0, 0.9, 0.7)


@dataclass
class Fig10Result:
    #: mean_d_error[suite][advisor]
    mean_d_error: dict[str, dict[str, float]]
    text: str


def run(suite: ExperimentSuite | None = None,
        max_sampling_datasets: int = 6) -> Fig10Result:
    suite = suite or get_suite()
    autoce = suite.autoce()
    mlp = suite.baseline("MLP")
    rule = suite.baseline("Rule")
    knn = suite.baseline("Knn")
    sampling = SamplingSelector(OnlineSelectorConfig(seed=suite.seed))

    result: dict[str, dict[str, float]] = {}
    for suite_name, loader in (("IMDB-20", suite.imdb20),
                               ("STATS-20", suite.stats20)):
        datasets, graphs, labels = loader()
        errors = {a: [] for a in ADVISORS}
        for i, (dataset, graph, label) in enumerate(zip(datasets, graphs, labels)):
            for w in WEIGHTS:
                errors["AutoCE"].append(
                    label.d_error(autoce.recommend(graph, w).model, w))
                errors["MLP"].append(label.d_error(mlp.recommend(graph, w), w))
                errors["Rule"].append(label.d_error(rule.recommend(graph, w), w))
                errors["Knn"].append(label.d_error(knn.recommend(graph, w), w))
                if i < max_sampling_datasets:
                    errors["Sampling"].append(
                        label.d_error(sampling.recommend_dataset(dataset, w), w))
        result[suite_name] = {a: float(np.mean(errs))
                              for a, errs in errors.items() if errs}

    rows = [[a, result["IMDB-20"].get(a, float("nan")),
             result["STATS-20"].get(a, float("nan"))] for a in ADVISORS]
    text = format_table(
        ["advisor", "IMDB-20 mean D-error", "STATS-20 mean D-error"],
        rows, title="Figure 10: efficacy on real-world datasets")
    return Fig10Result(result, text)
