"""Shared resources and helpers for the evaluation-section experiments.

An :class:`ExperimentSuite` lazily builds (and memoizes) the expensive
shared artifacts — the labeled training corpus, the held-out test corpus
(labeled with the Fig. 9 comparison baselines included), the trained AutoCE
advisor and the trained selection baselines — so each benchmark pays only
for what it uses, and the labeling pass is shared via the disk cache.

Scale knobs (environment variables):
  ``REPRO_CORPUS``  training datasets (default 200; the paper uses 1 000)
  ``REPRO_TEST``    held-out test datasets (default 40; the paper uses 200)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..core.advisor import AutoCE, AutoCEConfig
from ..core.dml import DMLConfig
from ..core.selection_baselines import (MLPSelector, RawFeatureKnnSelector,
                                        RegressionSelector, RuleSelector)
from ..datagen.presets import (derive_subschemas, imdb_light_like,
                               stats_light_like)
from ..testbed.runner import TestbedConfig
from ..testbed.scores import DatasetLabel
from .corpus import (CorpusConfig, LabeledEntry, build_corpus, env_int,
                     label_datasets)

#: Model-name order used everywhere (candidates first, then baselines).
CANDIDATES = ("BayesCard", "DeepDB", "NeuroCard", "MSCN", "LW-NN", "LW-XGB", "UAE")


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a fixed-width text table (the harness' 'figure output')."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.4g}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def summarize(values: list[float]) -> dict[str, float]:
    arr = np.asarray(values, dtype=np.float64)
    if len(arr) == 0:
        return {"mean": 0.0, "median": 0.0, "p90": 0.0}
    return {
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p90": float(np.percentile(arr, 90)),
    }


class ExperimentSuite:
    """Lazily-built shared artifacts for all experiments."""

    def __init__(self, num_train: int | None = None, num_test: int | None = None,
                 cache_dir: str | None = None, seed: int = 0):
        self.num_train = num_train or env_int("REPRO_CORPUS", 200)
        self.num_test = num_test or env_int("REPRO_TEST", 40)
        self.cache_dir = cache_dir
        self.seed = seed
        self.testbed = TestbedConfig(seed=seed)
        self._memo: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _cached(self, key: str, build):
        if key not in self._memo:
            self._memo[key] = build()
        return self._memo[key]

    # ------------------------------------------------------------------
    # Corpora
    # ------------------------------------------------------------------
    def train_corpus(self) -> list[LabeledEntry]:
        return self._cached("train_corpus", lambda: build_corpus(
            CorpusConfig(num_datasets=self.num_train, base_seed=self.seed,
                         testbed=self.testbed),
            cache_dir=self.cache_dir))

    def test_corpus(self) -> list[LabeledEntry]:
        """Held-out datasets labeled with Postgres + Ensemble included."""
        testbed = TestbedConfig(seed=self.seed, include_baselines=True)
        return self._cached("test_corpus", lambda: build_corpus(
            CorpusConfig(num_datasets=self.num_test, base_seed=self.seed + 77,
                         testbed=testbed),
            cache_dir=self.cache_dir))

    def test_graphs_and_labels(self):
        """Test graphs plus 7-candidate labels (renormalized)."""
        entries = self.test_corpus()
        graphs = [e.graph for e in entries]
        labels = [e.label.subset(list(CANDIDATES)) for e in entries]
        return graphs, labels

    # ------------------------------------------------------------------
    # Real-world suites (IMDB-20 / STATS-20 protocol)
    # ------------------------------------------------------------------
    def imdb20(self):
        def build():
            datasets = derive_subschemas(imdb_light_like(), count=20, seed=11)
            return datasets, *label_datasets(
                datasets, self.testbed, cache_dir=self.cache_dir,
                cache_tag="imdb20")
        return self._cached("imdb20", build)

    def stats20(self):
        def build():
            datasets = derive_subschemas(stats_light_like(), count=20, seed=22)
            return datasets, *label_datasets(
                datasets, self.testbed, cache_dir=self.cache_dir,
                cache_tag="stats20")
        return self._cached("stats20", build)

    # ------------------------------------------------------------------
    # Advisors
    # ------------------------------------------------------------------
    def autoce(self) -> AutoCE:
        def build():
            entries = self.train_corpus()
            advisor = AutoCE(AutoCEConfig(seed=self.seed))
            advisor.fit([e.graph for e in entries], [e.label for e in entries])
            return advisor
        return self._cached("autoce", build)

    def autoce_variant(self, key: str, config: AutoCEConfig,
                       fraction: float = 1.0) -> AutoCE:
        """A variant advisor (ablations); trained on a data fraction."""
        def build():
            entries = self.train_corpus()
            count = max(2, int(round(fraction * len(entries))))
            advisor = AutoCE(config)
            advisor.fit([e.graph for e in entries[:count]],
                        [e.label for e in entries[:count]])
            return advisor
        return self._cached(f"autoce_{key}", build)

    def baseline(self, name: str):
        """A fitted selection baseline: 'MLP', 'Rule', 'Knn', 'Without-DML'."""
        def build():
            entries = self.train_corpus()
            graphs = [e.graph for e in entries]
            labels = [e.label for e in entries]
            selector = {
                "MLP": lambda: MLPSelector(seed=self.seed),
                "Rule": lambda: RuleSelector(seed=self.seed),
                "Knn": lambda: RawFeatureKnnSelector(),
                "Without-DML": lambda: RegressionSelector(seed=self.seed),
            }[name]()
            selector.fit(graphs, labels)
            return selector
        return self._cached(f"baseline_{name}", build)


_DEFAULT_SUITE: ExperimentSuite | None = None


def get_suite() -> ExperimentSuite:
    """Process-wide default suite (shared across benchmarks)."""
    global _DEFAULT_SUITE
    if _DEFAULT_SUITE is None:
        _DEFAULT_SUITE = ExperimentSuite()
    return _DEFAULT_SUITE
