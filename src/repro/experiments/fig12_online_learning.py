"""Figure 12: AutoCE vs online learning (Sampling, Learning-All).

(a) Selection wall-clock vs number of target datasets — online methods
    retrain every CE model per dataset, AutoCE only embeds + KNN-searches.
(b) Mean Q-error of the selected models.
(c) Mean D-error.

Expected shapes: AutoCE is orders of magnitude faster; its Q-error matches
Learning-All; Sampling fluctuates (high-variance samples) and is both slow
and inaccurate.  Dataset counts are scaled down from the paper's
10/50/200 (configurable) because online labeling is exactly the cost this
figure demonstrates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.selection_baselines import (LearningAllSelector,
                                        OnlineSelectorConfig,
                                        SamplingSelector)
from .common import ExperimentSuite, format_table, get_suite

SIZES = (4, 8, 16)
WEIGHT = 0.9


@dataclass
class Fig12Result:
    #: seconds[method][n_datasets]
    seconds: dict[str, dict[int, float]]
    q_error: dict[str, float]
    d_error: dict[str, float]
    text: str


def run(suite: ExperimentSuite | None = None,
        sizes: tuple[int, ...] = SIZES) -> Fig12Result:
    suite = suite or get_suite()
    entries = suite.test_corpus()
    graphs, labels = suite.test_graphs_and_labels()
    autoce = suite.autoce()
    sampling = SamplingSelector(OnlineSelectorConfig(seed=suite.seed))
    learning_all = LearningAllSelector(OnlineSelectorConfig(seed=suite.seed))

    max_n = min(max(sizes), len(entries))
    datasets = [entries[i].dataset() for i in range(max_n)]

    # Pre-measure per-dataset costs once, then report cumulative times.
    per_dataset: dict[str, list[float]] = {"AutoCE": [], "Sampling": [],
                                           "Learning-All": []}
    selections: dict[str, list[str]] = {"AutoCE": [], "Sampling": [],
                                        "Learning-All": []}
    for i in range(max_n):
        start = time.perf_counter()
        selections["AutoCE"].append(autoce.recommend(graphs[i], WEIGHT).model)
        per_dataset["AutoCE"].append(time.perf_counter() - start)

        start = time.perf_counter()
        selections["Sampling"].append(
            sampling.recommend_dataset(datasets[i], WEIGHT))
        per_dataset["Sampling"].append(time.perf_counter() - start)

        start = time.perf_counter()
        selections["Learning-All"].append(
            learning_all.recommend_dataset(datasets[i], WEIGHT))
        per_dataset["Learning-All"].append(time.perf_counter() - start)

    seconds = {m: {} for m in per_dataset}
    for method, costs in per_dataset.items():
        for n in sizes:
            bounded = min(n, max_n)
            mean_cost = float(np.mean(costs))
            seconds[method][n] = float(np.sum(costs[:bounded])
                                       + mean_cost * (n - bounded))

    q_error = {}
    d_error = {}
    for method, models in selections.items():
        qs = [labels[i].qerror_means[labels[i].index_of(m)]
              for i, m in enumerate(models)]
        ds = [labels[i].d_error(m, WEIGHT) for i, m in enumerate(models)]
        q_error[method] = float(np.mean(qs))
        d_error[method] = float(np.mean(ds))

    rows = []
    for method in per_dataset:
        rows.append([method]
                    + [seconds[method][n] for n in sizes]
                    + [q_error[method], d_error[method]])
    text = format_table(
        ["method"] + [f"time(s) n={n}" for n in sizes]
        + ["mean Q-error", "mean D-error"],
        rows, title="Figure 12: AutoCE vs online learning methods")
    return Fig12Result(seconds, q_error, d_error, text)
