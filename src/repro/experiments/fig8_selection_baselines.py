"""Figure 8: AutoCE vs the four selection strategies across weights.

For every accuracy weight w_a from 1.0 down to 0.1, each advisor selects a
model per held-out dataset; we report (a) mean Q-error of the selected
models, (b) mean inference latency of the selected models, and (c) mean
D-error.  Expected shape: AutoCE has the lowest D-error everywhere; Rule is
the worst; Sampling is unstable; Knn sits between Rule and MLP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.selection_baselines import OnlineSelectorConfig, SamplingSelector
from .common import ExperimentSuite, format_table, get_suite

WEIGHTS = tuple(round(0.1 * i, 1) for i in range(10, 0, -1))
ADVISORS = ("AutoCE", "MLP", "Rule", "Sampling", "Knn")


@dataclass
class Fig8Result:
    #: d_error[advisor][w_a] etc.
    d_error: dict[str, dict[float, float]]
    q_error: dict[str, dict[float, float]]
    latency_ms: dict[str, dict[float, float]]
    text: str


def _selected_metrics(label, model: str):
    idx = label.index_of(model)
    return float(label.qerror_means[idx]), float(label.latency_means[idx]) * 1000


def run(suite: ExperimentSuite | None = None,
        weights: tuple[float, ...] = WEIGHTS,
        max_sampling_datasets: int = 10) -> Fig8Result:
    suite = suite or get_suite()
    graphs, labels = suite.test_graphs_and_labels()
    entries = suite.test_corpus()

    autoce = suite.autoce()
    mlp = suite.baseline("MLP")
    rule = suite.baseline("Rule")
    knn = suite.baseline("Knn")
    sampling = SamplingSelector(OnlineSelectorConfig(seed=suite.seed))

    # Sampling is online learning per dataset — bound its dataset count.
    sampling_count = min(max_sampling_datasets, len(entries))

    d_error = {a: {} for a in ADVISORS}
    q_error = {a: {} for a in ADVISORS}
    latency = {a: {} for a in ADVISORS}
    for w in weights:
        per_advisor = {a: [] for a in ADVISORS}
        for i, (graph, label) in enumerate(zip(graphs, labels)):
            selections = {
                "AutoCE": autoce.recommend(graph, w).model,
                "MLP": mlp.recommend(graph, w),
                "Rule": rule.recommend(graph, w),
                "Knn": knn.recommend(graph, w),
            }
            if i < sampling_count:
                selections["Sampling"] = sampling.recommend_dataset(
                    entries[i].dataset(), w)
            for advisor, model in selections.items():
                q, lat = _selected_metrics(label, model)
                per_advisor[advisor].append(
                    (label.d_error(model, w), q, lat))
        for advisor in ADVISORS:
            rows = per_advisor[advisor]
            if not rows:
                continue
            arr = np.array(rows)
            d_error[advisor][w] = float(arr[:, 0].mean())
            q_error[advisor][w] = float(arr[:, 1].mean())
            latency[advisor][w] = float(arr[:, 2].mean())

    table_rows = []
    for advisor in ADVISORS:
        for w in weights:
            if w in d_error[advisor]:
                table_rows.append([advisor, w, d_error[advisor][w],
                                   q_error[advisor][w], latency[advisor][w]])
    text = format_table(
        ["advisor", "w_a", "mean D-error", "mean Q-error (selected)",
         "mean latency ms (selected)"],
        table_rows,
        title="Figure 8: AutoCE vs selection strategies across metric weights")
    return Fig8Result(d_error, q_error, latency, text)
