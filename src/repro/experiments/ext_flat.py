"""Extensibility: dropping an eighth CE model (FLAT) into the testbed.

Sec. IV-B1 of the paper: "to incorporate a new cardinality estimation
baseline into AutoCE, we deploy the baseline to the cardinality estimation
testbed, which conducts the dataset labeling and produces the corresponding
score vectors."  This experiment does exactly that with FLAT (the FSPN
estimator of [54]): label fresh datasets over the 7 stock candidates plus
FLAT and report where the newcomer lands.

Expected shape: FLAT wins on some (not all) datasets — it joins the
no-free-lunch pattern of Fig. 1 rather than dominating — and its latency
sits in the data-driven band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ce.registry import CANDIDATE_MODELS
from ..datagen.multi_table import generate_dataset
from ..datagen.spec import random_spec
from ..testbed.runner import TestbedConfig, run_testbed
from .common import ExperimentSuite, format_table, get_suite

NUM_DATASETS = 10
WEIGHTS = (1.0, 0.5)


@dataclass
class ExtFlatResult:
    #: wins[w][model] over the labeled datasets.
    wins: dict[float, dict[str, int]]
    #: Mean normalized score of each model at w_a = 1.0.
    mean_scores: dict[str, float]
    model_names: tuple[str, ...]
    text: str


def run(suite: ExperimentSuite | None = None,
        num_datasets: int = NUM_DATASETS) -> ExtFlatResult:
    suite = suite or get_suite()
    names = [n for n in CANDIDATE_MODELS if n != "FLAT"] + ["FLAT"]
    config = TestbedConfig(seed=suite.seed)

    labels = []
    for i in range(num_datasets):
        spec = random_spec(905_000 + i)
        labels.append(run_testbed(generate_dataset(spec), config=config,
                                  model_names=names))

    wins: dict[float, dict[str, int]] = {}
    for w in WEIGHTS:
        counts = {name: 0 for name in names}
        for label in labels:
            counts[label.best_model(w)] += 1
        wins[w] = counts
    mean_scores = {
        name: float(np.mean([label.score_vector(1.0)[label.index_of(name)]
                             for label in labels]))
        for name in names
    }

    rows = []
    for name in names:
        rows.append([name,
                     wins[1.0][name], wins[0.5][name],
                     mean_scores[name],
                     float(np.mean([l.qerror_means[l.index_of(name)]
                                    for l in labels])),
                     float(np.mean([l.latency_means[l.index_of(name)]
                                    for l in labels])) * 1000])
    text = format_table(
        ["model", "wins w_a=1.0", "wins w_a=0.5", "mean score (acc)",
         "mean Q-error", "mean latency ms"],
        rows,
        title=f"Extensibility: FLAT as an 8th candidate over "
              f"{num_datasets} datasets")
    return ExtFlatResult(wins, mean_scores, tuple(names), text)
