"""``repro.analysis``: the AST invariant checker behind ``repro check``.

Six PRs of growth rested three correctness contracts on reviewer
eyeballs: bit-for-bit determinism (seeded RNG everywhere), strict
dtype-tier discipline on the serving path (no silent float64
promotion), and fork/pickle safety across the supervisor↔worker queue
boundary.  This package machine-checks them:

========  ==========================================================
REP001    unseeded RNG (``np.random.default_rng()`` with no seed,
          module-level ``np.random.*`` calls, stdlib ``random``)
REP002    wall-clock reads outside the declared timing modules
REP003    implicit float64 promotion in the serving-tier modules
REP004    fork/pickle-unsafe process targets, queue payloads and
          worker module state
REP005    supervisor↔worker message-protocol drift (cross-file)
REP006    the core/predictor.py shim must stay a thin re-export layer
========  ==========================================================

See ``docs/static_analysis.md`` for the rule catalog and
``repro check --explain REPxxx`` for any single rule's contract.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineDiff
from .engine import (CheckReport, Finding, ModuleSource, Project, Rule,
                     run_check)
from .rules import all_rules, rule_by_id

__all__ = [
    "Baseline", "BaselineDiff", "CheckReport", "Finding", "ModuleSource",
    "Project", "Rule", "run_check", "all_rules", "rule_by_id",
]
