"""The grandfathered-findings baseline of ``repro check``.

The baseline is a committed JSON file mapping finding keys
(``RULE::path::message`` — line numbers deliberately excluded, so
unrelated edits that shift code do not churn it) to occurrence counts.
``repro check`` fails only on findings *beyond* the baseline; stale
entries (baselined findings that no longer fire) are reported so the
file ratchets down toward empty instead of fossilizing.

The file format is sorted and pretty-printed: a baseline change in a PR
must read as a reviewable diff, not a blob.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .engine import Finding

_VERSION = 1


@dataclass
class BaselineDiff:
    """Current findings split against a baseline."""

    new: list[Finding]                 # beyond the baselined count
    baselined: list[Finding]           # covered by the baseline
    stale: dict[str, int]              # key -> baselined-but-unseen count


@dataclass
class Baseline:
    entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(
                f"baseline {path} is not a repro-check baseline "
                "(expected an object with an 'entries' map)")
        entries = {str(key): int(count)
                   for key, count in data["entries"].items()}
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts = Counter(f.baseline_key for f in findings)
        return cls(entries=dict(counts))

    def save(self, path: Path | str) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _VERSION,
            "comment": "Grandfathered `repro check` findings. Keys are "
                       "RULE::path::message; shrink this file, never "
                       "grow it (new findings need a fix or a pragma).",
            "entries": dict(sorted(self.entries.items())),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                        + "\n", encoding="utf-8")

    def diff(self, findings: list[Finding]) -> BaselineDiff:
        """Split ``findings`` into new vs baselined, and list stale keys.

        With several findings sharing a key, the first ``count`` of them
        (in the engine's deterministic order) are treated as baselined and
        the remainder as new — the split itself never depends on dict or
        set iteration order.
        """
        remaining = Counter(self.entries)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = {key: count for key, count in sorted(remaining.items())
                 if count > 0}
        return BaselineDiff(new=new, baselined=baselined, stale=stale)
