"""The rule engine of ``repro check``: sources, pragmas, findings, runner.

The analyzer is deliberately a *static* pass — it never imports the code
it checks.  Every module is parsed once into a :class:`ModuleSource`
(AST + import-alias map + the inline ``# repro: allow[RULE]`` pragma
table), rules walk the trees and yield :class:`Finding` values, and the
engine applies pragma suppression and a deterministic sort.  Rules come
in two shapes:

* **per-module** — :meth:`Rule.check_module` sees one file at a time
  (REP001–REP004);
* **cross-file** — :meth:`Rule.finalize` sees the whole :class:`Project`
  after every module is parsed (REP005, which compares the message
  fields the supervisor produces against the ones the worker consumes).

Determinism is a contract of the analyzer itself: the file walk is
sorted, findings are sorted, and no report field depends on wall-clock
time or iteration order — two runs over the same tree must emit
byte-identical reports (there is a regression test for exactly that).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Inline suppression: ``# repro: allow[REP003]`` (comma-separate several
#: rule ids; ``allow[*]`` silences every rule on the line).  The pragma
#: applies to findings anchored on its own physical line, so for a
#: wrapped call it belongs on the line the call starts.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

#: Directory names never descended into during the file walk.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position.

    ``baseline_key`` deliberately excludes the line/column so grandfathered
    findings survive unrelated edits that shift them around; duplicate
    keys are disambiguated by count (see :mod:`~repro.analysis.baseline`).
    """

    rule: str
    path: str                 # posix path, relative to the scan root
    line: int
    col: int
    severity: str             # "error" | "warning"
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    @property
    def baseline_key(self) -> str:
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")

    def to_dict(self) -> dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "severity": self.severity,
                "message": self.message}


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module paths they import.

    ``import numpy as np`` → ``{"np": "numpy"}``; ``from numpy import
    random`` → ``{"random": "numpy.random"}``; ``from time import
    perf_counter`` → ``{"perf_counter": "time.perf_counter"}``.  Relative
    imports keep their leading dots (``from .worker import f`` →
    ``{"f": ".worker.f"}``) so rules can still tell "an imported name"
    from a local one.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    head = name.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = "." * node.level + (node.module or "")
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{base}.{name.name}"
    return aliases


def resolve_call_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The fully-qualified dotted name of a Name/Attribute chain.

    Returns ``None`` when the chain is not rooted in an imported name
    (e.g. ``self.ctx.Process`` — the head is a local object, so no module
    identity can be claimed statically).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or node.id not in aliases:
        return None
    parts.append(aliases[node.id])
    return ".".join(reversed(parts))


def _parse_pragmas(text: str) -> dict[int, set[str]]:
    """Line → set of rule ids allowed there (``*`` = every rule)."""
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_RE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")
                     if part.strip()}
            allowed.setdefault(token.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass                    # the parse error is reported separately
    return allowed


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function (fork hazards)."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


@dataclass
class ModuleSource:
    """One parsed file plus everything rules repeatedly need from it."""

    path: str                       # display path (posix, relative to root)
    module_rel: str | None          # path inside src/repro, e.g. "cli.py"
    text: str
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)
    pragmas: dict[int, set[str]] = field(default_factory=dict)
    nested_functions: set[str] = field(default_factory=set)

    @classmethod
    def from_text(cls, text: str, path: str = "<memory>",
                  module_rel: str | None = None) -> "ModuleSource":
        tree = ast.parse(text, filename=path)
        return cls(path=path, module_rel=module_rel, text=text, tree=tree,
                   aliases=_collect_aliases(tree),
                   pragmas=_parse_pragmas(text),
                   nested_functions=_nested_function_names(tree))

    def allows(self, rule_id: str, line: int) -> bool:
        rules = self.pragmas.get(line)
        return rules is not None and (rule_id in rules or "*" in rules)


def _package_relative(path: Path) -> str | None:
    """The path inside the ``src/repro`` package, if the file lives there.

    Rules scope themselves by this (e.g. REP003 applies to
    ``core/predictor.py`` and ``serving/*``); files outside the package —
    test fixtures, scripts — get ``None`` and only the unscoped rules.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 2):
        if parts[i] == "src" and parts[i + 1] == "repro":
            return "/".join(parts[i + 2:])
    return None


class Rule:
    """Base class: one invariant, one id, one severity.

    Subclasses fill the class attributes (they feed ``--explain`` and the
    rule catalog in ``docs/static_analysis.md``) and override
    :meth:`check_module` and/or :meth:`finalize`.
    """

    id: str = "REP000"
    title: str = ""
    severity: str = "error"
    contract: str = ""
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def finalize(self, project: "Project") -> Iterator[Finding]:
        return iter(())

    def finding(self, module_path: str, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=self.id, path=module_path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0),
                       severity=self.severity, message=message)

    def explain(self) -> str:
        lines = [f"{self.id}: {self.title}", "=" * (len(self.id) + 2 + len(self.title)),
                 "", f"severity: {self.severity}", "",
                 "Contract", "--------", self.contract.strip(), "",
                 "Rationale", "---------", self.rationale.strip()]
        if self.example_bad:
            lines += ["", "Flagged", "-------", self.example_bad.strip()]
        if self.example_good:
            lines += ["", "Clean", "-----", self.example_good.strip()]
        lines += ["", "Suppression", "-----------",
                  f"Append `# repro: allow[{self.id}]` to the offending "
                  "line (comma-separate several ids). Pragmas are for "
                  "deliberate, commented exceptions; recurring suppressions "
                  "belong in the rule's allowlist or a code fix."]
        return "\n".join(lines)


@dataclass
class Project:
    """Every parsed module of one ``repro check`` invocation."""

    modules: list[ModuleSource]

    def by_module_rel(self, rel: str) -> ModuleSource | None:
        for module in self.modules:
            if module.module_rel == rel:
                return module
        return None

    def by_path(self, path: str) -> ModuleSource | None:
        for module in self.modules:
            if module.path == path:
                return module
        return None


@dataclass
class CheckReport:
    """The post-suppression result of one analyzer run."""

    findings: list[Finding]
    files: int
    suppressed: int

    def to_dict(self) -> dict[str, object]:
        return {"files": self.files, "suppressed": self.suppressed,
                "findings": [f.to_dict() for f in self.findings]}


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Deterministic (sorted, deduplicated) .py file list for the inputs."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_file():
            candidates = [path]
        else:
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts)))
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_check(paths: Iterable[Path | str], rules: Iterable[Rule],
              root: Path | None = None) -> CheckReport:
    """Parse every file under ``paths`` and run ``rules`` over the project.

    Unparseable files surface as ``PARSE`` findings instead of crashing
    the run — a syntax error in one module must not hide the findings of
    the other two hundred.
    """
    root = root or Path.cwd()
    rules = list(rules)
    files = iter_python_files(Path(p) for p in paths)
    modules: list[ModuleSource] = []
    findings: list[Finding] = []
    for file_path in files:
        display = _display_path(file_path, root)
        text = file_path.read_text(encoding="utf-8")
        try:
            module = ModuleSource.from_text(
                text, path=display, module_rel=_package_relative(file_path))
        except SyntaxError as error:
            findings.append(Finding(
                rule="PARSE", path=display, line=error.lineno or 0,
                col=error.offset or 0, severity="error",
                message=f"file does not parse: {error.msg}"))
            continue
        modules.append(module)
    project = Project(modules)
    for module in modules:
        for rule in rules:
            findings.extend(rule.check_module(module))
    for rule in rules:
        findings.extend(rule.finalize(project))

    kept: list[Finding] = []
    suppressed = 0
    by_path = {module.path: module for module in modules}
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.allows(finding.rule, finding.line):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: f.sort_key)
    return CheckReport(findings=kept, files=len(files),
                       suppressed=suppressed)
