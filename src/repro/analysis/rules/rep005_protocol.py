"""REP005: the supervisor and the worker must agree on message fields."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..engine import Finding, ModuleSource, Project, Rule, resolve_call_name


@dataclass(frozen=True)
class ProtocolSpec:
    """One message class and the modules on each side of its queue."""

    message: str                      # dataclass name, e.g. "ShardRequest"
    declared_in: str                  # module_rel holding the dataclass
    producers: tuple[str, ...]        # module_rels constructing it
    consumers: tuple[str, ...]        # module_rels reading its attributes


#: The PR-6 scatter/gather protocol: requests flow supervisor → worker,
#: responses flow back.  Both sides read the classes declared in
#: serving/worker.py, so a renamed or dropped field must fail lint on
#: whichever side still uses the old name.
DEFAULT_PROTOCOLS = (
    ProtocolSpec(message="ShardRequest", declared_in="serving/worker.py",
                 producers=("serving/supervisor.py",),
                 consumers=("serving/worker.py", "serving/supervisor.py")),
    ProtocolSpec(message="ShardResponse", declared_in="serving/worker.py",
                 producers=("serving/worker.py",),
                 consumers=("serving/supervisor.py",)),
)

#: Variables assigned from ``<queue>.get(...)`` are typed by the queue's
#: name: a response queue mentions "resp", a request queue "req".
_QUEUE_HINTS = (("resp", "ShardResponse"), ("req", "ShardRequest"))


def _chain_text(node: ast.expr) -> str:
    """Lower-cased dotted text of a Name/Attribute chain ("self._resp_queue")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _annotation_name(node: ast.expr | None) -> str | None:
    """The class named by an annotation (handles string annotations and
    `X | None` unions shallowly)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("|")[0].strip().split(".")[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_name(node.left)
    return None


@dataclass
class _MessageDecl:
    fields: dict[str, bool]           # field name -> has a default
    methods: set[str]


def _find_decl(module: ModuleSource, name: str) -> _MessageDecl | None:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == name):
            continue
        fields: dict[str, bool] = {}
        methods: set[str] = set()
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                fields[stmt.target.id] = stmt.value is not None
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(stmt.name)
        return _MessageDecl(fields=fields, methods=methods)
    return None


class ProtocolDriftRule(Rule):
    id = "REP005"
    title = "supervisor/worker message-protocol drift"
    severity = "error"
    contract = """\
The scatter/gather messages (ShardRequest, ShardResponse — declared in
serving/worker.py) are checked cross-file: every constructor call on the
producing side must pass only declared fields and cover every field
without a default, and every attribute read on the consuming side must
name a declared field.  Consumer variables are recognized by annotation
(`resp: ShardResponse`), by direct construction, or by assignment from a
queue whose name says which side it is (`request_queue.get()` →
ShardRequest, `_resp_queue.get()` → ShardResponse)."""
    rationale = """\
A renamed request field is invisible to the single-process tests and
only surfaces as a fault drill timing out on a worker AttributeError —
the most expensive possible way to find a typo.  The protocol is three
dataclasses away from being self-describing, so lint can check both
sides of the queue against the declaration and fail in seconds instead."""
    example_bad = """\
# supervisor.py
request = ShardRequest(req_id=3, queries=q)        # forgot required `k`
# worker.py
deadline = msg.deadline                            # field nobody sends"""
    example_good = """\
request = ShardRequest(req_id=3, queries=q, k=5)
indices, distances = runtime.search(msg.queries, msg.k)"""

    def __init__(self,
                 protocols: tuple[ProtocolSpec, ...] = DEFAULT_PROTOCOLS) -> None:
        self.protocols = protocols

    def finalize(self, project: Project) -> Iterator[Finding]:
        for spec in self.protocols:
            decl_module = project.by_module_rel(spec.declared_in)
            if decl_module is None:
                continue                  # scan did not cover the protocol
            decl = _find_decl(decl_module, spec.message)
            if decl is None:
                yield Finding(
                    rule=self.id, path=decl_module.path, line=1, col=0,
                    severity=self.severity,
                    message=f"message class {spec.message} is no longer "
                            f"declared in {spec.declared_in}; the "
                            "scatter/gather protocol has lost its schema")
                continue
            for rel in spec.producers:
                module = project.by_module_rel(rel)
                if module is not None:
                    yield from self._check_producer(module, spec, decl)
            for rel in spec.consumers:
                module = project.by_module_rel(rel)
                if module is not None:
                    yield from self._check_consumer(module, spec, decl)

    # -- producer side -----------------------------------------------------
    def _check_producer(self, module: ModuleSource, spec: ProtocolSpec,
                        decl: _MessageDecl) -> Iterator[Finding]:
        field_order = list(decl.fields)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, module.aliases)
            is_ctor = (
                (isinstance(node.func, ast.Name)
                 and node.func.id == spec.message)
                or (name is not None
                    and name.rsplit(".", 1)[-1] == spec.message))
            if not is_ctor:
                continue
            provided: set[str] = set(field_order[:len(node.args)])
            has_splat = False
            for keyword in node.keywords:
                if keyword.arg is None:
                    has_splat = True
                    continue
                provided.add(keyword.arg)
                if keyword.arg not in decl.fields:
                    yield self.finding(
                        module.path, node,
                        f"{spec.message}(... {keyword.arg}=...) passes a "
                        f"field {spec.declared_in} does not declare; the "
                        "consumer will never see it")
            if has_splat:
                continue                  # **kwargs: coverage unknowable
            missing = [f for f, has_default in decl.fields.items()
                       if not has_default and f not in provided]
            if missing:
                yield self.finding(
                    module.path, node,
                    f"{spec.message}(...) misses required field(s) "
                    f"{', '.join(missing)}; the message would fail to "
                    "construct at serving time")

    # -- consumer side -----------------------------------------------------
    def _check_consumer(self, module: ModuleSource, spec: ProtocolSpec,
                        decl: _MessageDecl) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            typed = self._typed_vars(func, spec)
            if not typed:
                continue
            for node in ast.walk(func):
                if not (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)
                        and isinstance(node.value, ast.Name)
                        and node.value.id in typed):
                    continue
                attr = node.attr
                if (attr in decl.fields or attr in decl.methods
                        or attr.startswith("__")):
                    continue
                yield self.finding(
                    module.path, node,
                    f"{node.value.id}.{attr} reads a field "
                    f"{spec.message} does not declare "
                    f"(declared: {', '.join(decl.fields)}); the "
                    "producer never sends it")

    def _typed_vars(self, func: ast.AST, spec: ProtocolSpec) -> set[str]:
        """Variables in ``func`` statically known to hold ``spec.message``."""
        typed: set[str] = set()
        args = func.args  # type: ignore[attr-defined]
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if _annotation_name(arg.annotation) == spec.message:
                typed.add(arg.arg)
        for node in ast.walk(func):
            if (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and _annotation_name(node.annotation) == spec.message):
                typed.add(node.target.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == spec.message):
                    typed.add(target.id)
                elif (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr in ("get", "get_nowait")):
                    queue_text = _chain_text(value.func.value)
                    for hint, message in _QUEUE_HINTS:
                        if hint in queue_text:
                            if message == spec.message:
                                typed.add(target.id)
                            break
        return typed
