"""REP003: no silent float64 promotion in the serving-tier modules."""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule, resolve_call_name

#: numpy constructors that *materialize* a new array and default to
#: float64 when no dtype is given, mapped to the positional index their
#: dtype argument occupies.  np.asarray / np.atleast_2d / the *_like
#: family are deliberately absent: they preserve the input's tier, which
#: is exactly the behavior the contract wants.
_CTOR_DTYPE_POS = {
    "array": 1, "zeros": 1, "ones": 1, "empty": 1,
    "full": 2, "identity": 1, "eye": 3,
}

#: Modules the rule scopes itself to (paths inside src/repro).
#: ``core/predictor.py`` stays listed even though it is a re-exporting
#: shim since the split — if code ever regrows there it is back in scope.
DEFAULT_SCOPE_FILES = frozenset({"core/predictor.py", "core/ivf.py",
                                 "engine/providers.py"})
DEFAULT_SCOPE_PREFIXES = ("serving/", "core/serving/")


def _is_bare_float(node: ast.expr) -> bool:
    """``float`` / ``"float"`` — the implicit-float64 spellings."""
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    return isinstance(node, ast.Constant) and node.value == "float"


class DtypePromotionRule(Rule):
    id = "REP003"
    title = "implicit float64 promotion in a serving-tier module"
    severity = "warning"
    contract = """\
In the serving-tier modules (core/serving/*, core/ivf.py, serving/*,
engine/providers.py — the estimator-provider layer sits on the serving
path of the optimizer loop — and the core/predictor.py shim) every
array *constructor* that defaults to float64 — np.array, np.zeros,
np.ones, np.empty, np.full, np.eye, np.identity — must name its dtype
explicitly (dtype=np.float64 when full precision is the point,
dtype=x.dtype when the tier must follow an input).  `.astype(float)`,
dtype=float and bare np.float64(...) conversions are flagged outright:
`float` is float64 spelled so quietly that the mixed-tier audit cannot
see it.  Tier-preserving constructors (np.asarray, np.atleast_2d,
np.zeros_like, ...) are exempt, and an explicit dtype=np.float64 is
always legal — the contract is about *stated* intent, not about banning
the reference tier."""
    rationale = """\
PRs 3-5 built the precision ladder: float32 end-to-end, float32 serving
over float64 weights, int8/PQ candidate tiers with float re-rank.  The
agreement and golden matrices pin those paths bit-for-bit, and the bug
class they kept catching by hand was a kernel quietly materializing a
float64 intermediate inside a float32 path.  An array constructor with
no dtype is exactly that bug waiting to happen; one with an explicit
dtype is a reviewed decision."""
    example_bad = """\
pool = np.zeros(dim)               # silently float64 in a float32 path
dists = member.astype(float)       # implicit promotion
scale = np.float64(cfg.radius)     # float64 scalar contaminates the GEMM"""
    example_good = """\
pool = np.zeros(dim, dtype=queries.dtype)     # follows the serving tier
acc = np.zeros(dim, dtype=np.float64)         # full precision on purpose
row = np.asarray(embedding)                   # tier-preserving: exempt"""

    def __init__(self, scope_files: frozenset[str] = DEFAULT_SCOPE_FILES,
                 scope_prefixes: tuple[str, ...] = DEFAULT_SCOPE_PREFIXES) -> None:
        self.scope_files = scope_files
        self.scope_prefixes = scope_prefixes

    def applies(self, module: ModuleSource) -> bool:
        rel = module.module_rel
        if rel is None:
            return False
        return (rel in self.scope_files
                or any(rel.startswith(p) for p in self.scope_prefixes))

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        if not self.applies(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, module.aliases)
            if name is not None and name.startswith("numpy."):
                attr = name.split(".", 1)[1]
                if attr in _CTOR_DTYPE_POS:
                    yield from self._check_ctor(module, node, attr)
                    continue
                if attr == "float64":
                    yield self.finding(
                        module.path, node,
                        "bare np.float64(...) conversion materializes a "
                        "float64 scalar/array in a serving-tier module; "
                        "use the serving tier's dtype, or an explicit "
                        "dtype=np.float64 constructor argument if full "
                        "precision is the point")
                    continue
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype" and node.args
                    and _is_bare_float(node.args[0])):
                yield self.finding(
                    module.path, node,
                    ".astype(float) promotes to float64 implicitly; name "
                    "the target tier (.astype(np.float64) if full "
                    "precision is intended, .astype(x.dtype) to follow "
                    "an input)")

    def _check_ctor(self, module: ModuleSource, node: ast.Call,
                    attr: str) -> Iterator[Finding]:
        pos = _CTOR_DTYPE_POS[attr]
        dtype_value: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                dtype_value = keyword.value
        if dtype_value is None and len(node.args) > pos:
            dtype_value = node.args[pos]
        if dtype_value is None:
            yield self.finding(
                module.path, node,
                f"np.{attr}(...) without an explicit dtype= defaults to "
                "float64; state the tier (dtype=x.dtype to follow an "
                "input, dtype=np.float64 when full precision is the "
                "point)")
        elif _is_bare_float(dtype_value):
            yield self.finding(
                module.path, node,
                f"np.{attr}(..., dtype=float) is float64 spelled "
                "implicitly; write dtype=np.float64 (or the serving "
                "tier's dtype) so the promotion is visible")
