"""REP006: the predictor shim must stay a shim."""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule

#: Shim modules pinned by this rule, mapped to their line budget.  The
#: budget is deliberately generous (a docstring plus re-export imports)
#: — anything past it means code is accreting where it was evicted from.
DEFAULT_SHIMS = {"core/predictor.py": 100}

#: Top-level statement types a re-exporting shim legitimately contains:
#: the module docstring (Expr), imports, and the ``__all__`` assignment.
_ALLOWED_TOP_LEVEL = (ast.Import, ast.ImportFrom, ast.Assign, ast.Expr)


class ShimGuardRule(Rule):
    id = "REP006"
    title = "a re-exporting shim regrew implementation code"
    severity = "error"
    contract = """\
core/predictor.py was reduced to a re-exporting shim when the predictor
monolith split into core/serving/ (kernels / quantizers / indexes /
probe / store).  It must stay one: under 100 lines, and containing only
a docstring, import statements and simple name assignments (__all__).
Function or class definitions, loops, conditionals — any executable
logic — belong in the core/serving/ module that owns the concern, not
in the shim."""
    rationale = """\
The monolith took five PRs to accrete and one painful PR to split.  A
shim is the cheapest place for it to regrow: every historical import
path still resolves there, so "just one helper" added to the shim works
fine and silently restarts the accretion.  Pinning the shim's size and
statement shapes makes the regression a lint failure instead of a
five-PR cleanup."""
    example_bad = """\
# in core/predictor.py (the shim)
def exact_search(queries, embeddings, k):   # code is back in the shim
    ..."""
    example_good = """\
# in core/predictor.py (the shim)
from .serving.kernels import exact_search   # re-export only"""

    def __init__(self, shims: dict[str, int] | None = None) -> None:
        self.shims = dict(DEFAULT_SHIMS if shims is None else shims)

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        budget = self.shims.get(module.module_rel or "")
        if budget is None:
            return
        lines = module.text.count("\n") + (0 if module.text.endswith("\n")
                                           else 1)
        if lines >= budget:
            yield self.finding(
                module.path, module.tree,
                f"shim is {lines} lines (budget < {budget}): the module "
                "must stay a thin re-export layer; move implementation "
                "into core/serving/")
        for node in module.tree.body:
            if isinstance(node, _ALLOWED_TOP_LEVEL):
                # Expr is only legal as the docstring; Assign only for
                # simple name targets like __all__.
                if (isinstance(node, ast.Expr)
                        and not (isinstance(node.value, ast.Constant)
                                 and isinstance(node.value.value, str))):
                    pass  # falls through to the finding below
                elif (isinstance(node, ast.Assign)
                        and not all(isinstance(t, ast.Name)
                                    for t in node.targets)):
                    pass
                else:
                    continue
            yield self.finding(
                module.path, node,
                f"{type(node).__name__} statement in a re-exporting shim; "
                "only a docstring, imports and __all__ are allowed — "
                "implementation lives in core/serving/")
