"""REP002: wall-clock reads stay out of deterministic paths."""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule, resolve_call_name

#: Clock reads that make a code path depend on when (or how fast) it ran.
_WALLCLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Modules (paths inside src/repro) whose *contract* is to measure time:
#: the timing utility, the latency metrics/labeling harness, the
#: supervisor's deadline + heartbeat machinery, and the latency
#: experiments/simulators.  Everything else needs a per-line pragma.
DEFAULT_ALLOWLIST = frozenset({
    "utils/timing.py",
    "testbed/metrics.py",
    "testbed/runner.py",
    "serving/supervisor.py",
    "serving/worker.py",
    "serving/batching.py",
    "engine/e2e.py",
    "engine/execution.py",
    "engine/providers.py",
    "experiments/fig12_online_learning.py",
})


class WallclockRule(Rule):
    id = "REP002"
    title = "wall-clock read in a deterministic path"
    severity = "warning"
    contract = """\
time.time / time.perf_counter / time.monotonic (and _ns variants,
process_time, datetime.now/utcnow/today) are confined to the modules
whose job is timing: utils/timing.py, testbed/metrics.py,
testbed/runner.py (latency labeling), serving/supervisor.py,
serving/worker.py and serving/batching.py (deadlines, heartbeats and
the micro-batch window), and the latency
experiments (engine/e2e.py, engine/execution.py, engine/providers.py —
the provider layer times every estimator source call —
fig12_online_learning.py).  Anywhere else a clock read is either dead
weight or — worse — feeding a value that varies run to run into a path
the determinism matrix believes is pure."""
    rationale = """\
Deadlines, backoff and latency percentiles are legitimately wall-clock
driven, and the breaker is deliberately request-counted instead so the
fault drills replay bit-identically.  Keeping the clock reads inside the
declared timing modules makes "does anything nondeterministic feed this
kernel?" a grep instead of an audit."""
    example_bad = """\
# inside core/predictor.py
cache_stamp = time.time()          # run-dependent value in a kernel path"""
    example_good = """\
start = time.perf_counter()        # inside testbed/runner.py (allowlisted)
latency = time.perf_counter() - start"""

    def __init__(self, allowlist: frozenset[str] = DEFAULT_ALLOWLIST) -> None:
        self.allowlist = allowlist

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        if module.module_rel in self.allowlist:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, module.aliases)
            if name in _WALLCLOCK:
                yield self.finding(
                    module.path, node,
                    f"{name}() read outside the timing-module allowlist; "
                    "move the measurement into a timing module or mark "
                    "the deliberate exception with a pragma")
