"""REP004: everything that crosses a process boundary must pickle."""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule, resolve_call_name

#: The module inside src/repro whose handlers must stay stateless.
_WORKER_MODULE = "serving/worker.py"


def _is_process_ctor(node: ast.Call, aliases: dict[str, str]) -> bool:
    """`multiprocessing.Process(...)` or any `<ctx>.Process(...)` call.

    Context objects (`mp.get_context("fork").Process`, `self._ctx.Process`)
    cannot be resolved to a module statically, so any attribute call named
    `Process` counts — a false positive here is a pragma away, a false
    negative is a worker that dies on spawn."""
    name = resolve_call_name(node.func, aliases)
    if name is not None:
        return name == "multiprocessing.Process" or name.endswith(".Process")
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr == "Process")


class ForkSafetyRule(Rule):
    id = "REP004"
    title = "fork/pickle-unsafe process boundary"
    severity = "error"
    contract = """\
Worker process targets and queue messages must survive pickling under
both fork and spawn start methods.  Flagged: a lambda or a nested
(function-local) function passed as the target= of a Process
constructor; a bound method (`self.method`, `obj.method`) as a Process
target; a lambda placed directly on a queue via .put()/.put_nowait();
and `global` statements inside functions of serving/worker.py — worker
handlers must not accumulate module-level state, because a restarted
incarnation starts from a fresh interpreter and silently forgets it."""
    rationale = """\
The PR-6 supervisor restarts crashed shard workers and *resends* the
request the dead worker was holding; that story only holds if every
request, response and worker entry point rebuilds identically in a fresh
process.  Lambdas and closures pickle under neither start method, bound
methods drag their whole instance through the boundary, and hidden
module state diverges between incarnations — each one turns a clean
restart into a fault drill that only fails sometimes."""
    example_bad = """\
proc = ctx.Process(target=lambda: serve(shard))      # unpicklable target
queue.put(lambda: retry(req))                        # closure on a queue
def handler(msg):
    global served_total                              # state a restart loses
    served_total += 1"""
    example_good = """\
proc = ctx.Process(target=shard_worker_main,         # module-level function
                   args=(spec, plan, incarnation, req_q, resp_q, beat))
queue.put(ShardRequest(req_id=7, queries=q, k=5))    # plain dataclass"""

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if _is_process_ctor(node, module.aliases):
                    yield from self._check_target(module, node)
                yield from self._check_queue_put(module, node)
        if module.module_rel == _WORKER_MODULE:
            yield from self._check_worker_state(module)

    def _check_target(self, module: ModuleSource,
                      node: ast.Call) -> Iterator[Finding]:
        target: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg == "target":
                target = keyword.value
        if target is None and len(node.args) > 1:
            target = node.args[1]            # Process(group, target, ...)
        if target is None:
            return
        if isinstance(target, ast.Lambda):
            yield self.finding(
                module.path, node,
                "lambda as a Process target does not pickle under the "
                "spawn start method; pass a module-level function")
        elif (isinstance(target, ast.Name)
              and target.id in module.nested_functions):
            yield self.finding(
                module.path, node,
                f"nested function {target.id!r} as a Process target does "
                "not pickle under the spawn start method; hoist it to "
                "module level")
        elif (isinstance(target, ast.Attribute)
              and resolve_call_name(target, module.aliases) is None):
            yield self.finding(
                module.path, node,
                "bound method as a Process target pickles its whole "
                "instance (or fails outright for non-module-level "
                "classes); pass a module-level function taking the state "
                "as explicit arguments")

    def _check_queue_put(self, module: ModuleSource,
                         node: ast.Call) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in ("put", "put_nowait")):
            return
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                yield self.finding(
                    module.path, node,
                    "lambda placed on a queue cannot cross the process "
                    "boundary; send a plain dataclass of arrays and "
                    "scalars instead")

    def _check_worker_state(self, module: ModuleSource) -> Iterator[Finding]:
        for outer in ast.walk(module.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(outer):
                if isinstance(stmt, ast.Global):
                    names = ", ".join(stmt.names)
                    yield self.finding(
                        module.path, stmt,
                        f"worker handler mutates module-level state "
                        f"(global {names}); a restarted incarnation "
                        "starts from a fresh interpreter and loses it — "
                        "keep per-shard state on the ShardRuntime")
