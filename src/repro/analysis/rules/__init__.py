"""The rule registry of ``repro check``.

Rules are instantiated once, in id order; ``repro check --explain REPxxx``
and the docs catalog both read the class attributes, so a rule's whole
story (contract, rationale, examples, suppression policy) lives next to
its implementation.
"""

from __future__ import annotations

from ..engine import Rule
from .rep001_rng import UnseededRngRule
from .rep002_wallclock import WallclockRule
from .rep003_dtype import DtypePromotionRule
from .rep004_fork import ForkSafetyRule
from .rep005_protocol import ProtocolDriftRule
from .rep006_shim import ShimGuardRule

__all__ = [
    "UnseededRngRule", "WallclockRule", "DtypePromotionRule",
    "ForkSafetyRule", "ProtocolDriftRule", "ShimGuardRule",
    "all_rules", "rule_by_id",
]


def all_rules() -> list[Rule]:
    """A fresh instance of every registered rule, in id order."""
    return [UnseededRngRule(), WallclockRule(), DtypePromotionRule(),
            ForkSafetyRule(), ProtocolDriftRule(), ShimGuardRule()]


def rule_by_id(rule_id: str) -> Rule | None:
    for rule in all_rules():
        if rule.id == rule_id.upper():
            return rule
    return None
