"""REP001: every random draw must flow from an explicit seed."""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, Rule, resolve_call_name

#: numpy.random attributes that *construct* seeded generators — the
#: sanctioned entry points.  Everything else on the module (``rand``,
#: ``normal``, ``shuffle``, even ``seed`` itself) draws from or mutates
#: the hidden process-global BitGenerator.
_SEEDED_FACTORIES = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


class UnseededRngRule(Rule):
    id = "REP001"
    title = "unseeded RNG"
    severity = "error"
    contract = """\
Every source of randomness under src/repro must be an explicitly seeded
np.random.Generator: construct it with np.random.default_rng(seed) (or
np.random.SeedSequence(entropy)) and thread it through `rng:
np.random.Generator` parameters.  Flagged: np.random.default_rng() /
np.random.SeedSequence() with no argument, any other np.random.* module
call (they read or mutate the hidden process-global state), and any use
of the stdlib `random` module."""
    rationale = """\
The repo's correctness story is bit-for-bit determinism: golden and
metamorphic matrices, the double-run CI jobs, and the seeded fault
drills all diff two runs against each other.  One unseeded draw anywhere
in a serving or training path silently breaks every one of those checks
— and "Are We Ready For Learned Cardinality Estimation?" shows learned-CE
results are fragile to exactly this kind of hidden nondeterminism."""
    example_bad = """\
rng = np.random.default_rng()          # unseeded
noise = np.random.standard_normal(8)   # hidden global state
jitter = random.random()               # stdlib global Mersenne Twister"""
    example_good = """\
rng = np.random.default_rng(config.seed)
noise = rng.standard_normal(8)
child = np.random.default_rng(np.random.SeedSequence(entropy))"""

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, module.aliases)
            if name is None:
                continue
            if name in ("numpy.random.default_rng",
                        "numpy.random.SeedSequence"):
                if not node.args and not node.keywords:
                    short = name.rsplit(".", 1)[-1]
                    yield self.finding(
                        module.path, node,
                        f"np.random.{short}() without a seed draws fresh "
                        "OS entropy every run; pass an explicit seed (or "
                        "SeedSequence) and thread the generator through "
                        "`rng: np.random.Generator` parameters")
            elif name.startswith("numpy.random."):
                attr = name.split(".", 2)[2]
                if attr.split(".")[0] not in _SEEDED_FACTORIES:
                    yield self.finding(
                        module.path, node,
                        f"module-level np.random.{attr}() uses the hidden "
                        "process-global BitGenerator; draw from an "
                        "explicitly seeded np.random.default_rng(seed) "
                        "generator instead")
            elif name == "random" or name.startswith("random."):
                attr = name.split(".", 1)[1] if "." in name else name
                yield self.finding(
                    module.path, node,
                    f"stdlib random.{attr}() is banned under src/repro "
                    "(process-global Mersenne Twister, not covered by the "
                    "golden/metamorphic determinism matrix); use a seeded "
                    "np.random.default_rng(seed)")
