"""Rendering for ``repro check``: operator text and machine-readable JSON.

Both renderings are deterministic functions of the findings — no
timestamps, no absolute paths, no environment — so the double-run
determinism test can diff them byte-for-byte.
"""

from __future__ import annotations

import json

from .baseline import BaselineDiff
from .engine import CheckReport, Finding


def render_text(report: CheckReport, diff: BaselineDiff,
                baseline_path: str) -> str:
    """The human report: new findings in full, the rest as accounting."""
    lines: list[str] = []
    for finding in diff.new:
        lines.append(finding.render())
    if diff.stale:
        lines.append("")
        lines.append(f"stale baseline entries in {baseline_path} "
                     "(baselined findings that no longer fire — run "
                     "`repro check --update-baseline` to shrink the file):")
        for key, count in diff.stale.items():
            suffix = f" (x{count})" if count > 1 else ""
            lines.append(f"  - {key}{suffix}")
    lines.append("")
    summary = (f"{len(report.findings)} finding(s) across {report.files} "
               f"file(s): {len(diff.new)} new, {len(diff.baselined)} "
               f"baselined, {report.suppressed} suppressed by pragma")
    if diff.stale:
        summary += f", {sum(diff.stale.values())} stale baseline entr" + (
            "y" if sum(diff.stale.values()) == 1 else "ies")
    lines.append(summary)
    return "\n".join(lines).lstrip("\n")


def render_json(report: CheckReport, diff: BaselineDiff,
                baseline_path: str) -> str:
    """Stable machine-readable report (sorted keys, trailing newline)."""
    new_keys = {id(f) for f in diff.new}
    payload = {
        "version": 1,
        "baseline": baseline_path,
        "files": report.files,
        "suppressed": report.suppressed,
        "counts": {
            "total": len(report.findings),
            "new": len(diff.new),
            "baselined": len(diff.baselined),
            "stale": sum(diff.stale.values()),
        },
        "findings": [dict(f.to_dict(), new=(id(f) in new_keys))
                     for f in report.findings],
        "stale": diff.stale,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_finding_line(finding: Finding) -> str:
    return finding.render()
