"""The ``repro check`` command: the analyzer behind an operator-grade CLI.

Exit codes are part of the contract (CI scripts branch on them):

* ``0`` — clean: no findings beyond the committed baseline (and, under
  ``--fail-on-new``, no stale baseline entries either);
* ``1`` — findings: something new fired (or the baseline is stale under
  ``--fail-on-new``);
* ``2`` — usage: a path that does not exist, an unknown rule id, an
  unreadable baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import run_check
from .report import render_json, render_text
from .rules import all_rules, rule_by_id

#: Default scan target, baseline location and JSON report destination —
#: all relative to the repo root the command is run from.
DEFAULT_PATHS = ("src/repro",)
DEFAULT_BASELINE = "analysis/baseline.json"
DEFAULT_JSON = "results/repro_check.json"


def add_check_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "check",
        help="run the determinism/dtype/fork-safety static-analysis rules")
    p.add_argument("paths", nargs="*", default=None,
                   help=f"files or directories to scan (default: "
                        f"{' '.join(DEFAULT_PATHS)})")
    p.add_argument("--baseline", default=DEFAULT_BASELINE,
                   help="grandfathered-findings file (missing = empty)")
    p.add_argument("--fail-on-new", action="store_true",
                   help="CI mode: also fail on stale baseline entries, so "
                        "the baseline can only shrink")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline to the current findings and "
                        "exit 0")
    p.add_argument("--json", nargs="?", const=DEFAULT_JSON, default=None,
                   metavar="PATH",
                   help=f"write the machine-readable report (default "
                        f"path: {DEFAULT_JSON}; '-' for stdout)")
    p.add_argument("--explain", metavar="RULE", default=None,
                   help="print one rule's contract/rationale/examples and "
                        "exit")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered rules and exit")
    p.set_defaults(func=cmd_check)


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def cmd_check(args: argparse.Namespace) -> int:
    rules = all_rules()
    if args.explain:
        rule = rule_by_id(args.explain)
        if rule is None:
            known = ", ".join(r.id for r in rules)
            return _usage_error(
                f"unknown rule {args.explain!r} (known rules: {known})")
        print(rule.explain())
        return 0
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.severity:<7}  {rule.title}")
        return 0

    paths = [Path(p) for p in (args.paths or DEFAULT_PATHS)]
    for path in paths:
        if not path.exists():
            return _usage_error(f"path {str(path)!r} does not exist")
    try:
        baseline = Baseline.load(args.baseline)
    except (ValueError, OSError) as error:
        return _usage_error(f"cannot read baseline {args.baseline!r}: "
                            f"{error}")

    report = run_check(paths, rules)
    if args.update_baseline:
        Baseline.from_findings(report.findings).save(args.baseline)
        print(f"wrote {args.baseline}: {len(report.findings)} "
              "grandfathered finding(s)")
        return 0

    diff = baseline.diff(report.findings)
    print(render_text(report, diff, args.baseline))
    if args.json:
        payload = render_json(report, diff, args.baseline)
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            json_path = Path(args.json)
            json_path.parent.mkdir(parents=True, exist_ok=True)
            json_path.write_text(payload, encoding="utf-8")
            print(f"wrote {args.json}")

    if diff.new:
        return 1
    if args.fail_on_new and diff.stale:
        return 1
    return 0
