"""Command-line interface: ``python -m repro <command>``.

Wires the library's offline/online workflow into five commands:

``generate``
    Sample a synthetic dataset (or build a real-world-shaped preset) and
    write it to a ``.npz`` file.
``label``
    Run the CE testbed on a dataset file and print the per-model Q-error /
    latency / score table — Stage 1 for a single dataset.
``train``
    Build (or load from cache) a labeled corpus, train the advisor, and
    save it — Stages 1–3.
``recommend``
    Load a trained advisor and a dataset, print the recommended CE model
    and the full ranking — Stage 4.
``serve``
    Batch-serve recommendations for many datasets from one advisor — the
    scale-out serving path: parallel featurization, a persistent embedding
    cache that survives process restarts, and (above the configured RCS
    threshold) approximate KNN.
``experiment``
    Re-run one of the paper's evaluation-section experiments and print its
    table.
``check``
    Run the repo's static-analysis rules (determinism, dtype-tier and
    fork-safety contracts) over the source tree — see
    ``docs/static_analysis.md``.

Every command is importable and unit-testable (:func:`main` takes argv).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import zipfile
from dataclasses import replace
from pathlib import Path

import numpy as np

from .core.advisor import AutoCE, AutoCEConfig
from .core.persistence import AdvisorLoadError, load_advisor, save_advisor
from .datagen.multi_table import generate_dataset
from .datagen.presets import (ceb_like, imdb_light_like, power_like,
                              stats_light_like)
from .datagen.spec import random_spec
from .db.io import load_dataset, save_dataset
from .db.schema import Dataset
from .testbed.runner import TestbedConfig, run_testbed
from .testbed.scores import ACCURACY_METRICS

PRESETS = {
    "imdb-light": imdb_light_like,
    "stats-light": stats_light_like,
    "power": power_like,
    "ceb": ceb_like,
}

#: Experiment name → (module name, description); resolved lazily because
#: the experiment drivers import the full stack.
EXPERIMENTS = {
    "fig1": ("fig1_motivation", "CE models across datasets (motivation)"),
    "fig7": ("fig7_loss_ablation", "weighted vs basic contrastive loss"),
    "fig8": ("fig8_selection_baselines", "AutoCE vs selection strategies"),
    "fig9": ("fig9_ce_baselines", "AutoCE vs fixed CE models"),
    "fig10": ("fig10_realworld", "efficacy on IMDB-20 / STATS-20"),
    "fig11": ("fig11_ablations", "DML and incremental-learning ablations"),
    "fig12": ("fig12_online_learning", "AutoCE vs online learning"),
    "fig13": ("fig13_online_adapting", "online adapting ablation"),
    "table1": ("table1_datasets", "dataset statistics"),
    "table2": ("table2_accuracy", "recommendation accuracy"),
    "table3": ("table3_ceb", "CEB benchmark (query-driven)"),
    "table4": ("table4_knn_k", "D-error under different k"),
    "table5": ("table5_e2e", "end-to-end latency in the engine"),
    "ablation-dml": ("ablation_dml_design",
                     "tau policy / similarity target ablation"),
    "ext-flat": ("ext_flat", "FLAT as an eighth candidate model"),
}


def fast_testbed_config(seed: int = 0) -> TestbedConfig:
    """A reduced-budget testbed for interactive use (seconds, not minutes)."""
    return TestbedConfig(
        num_train_queries=60, num_test_queries=12, sample_size=400,
        mscn_epochs=10, lwnn_epochs=15, made_epochs=2, latency_reps=1,
        seed=seed)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    if args.preset:
        # Presets carry their own canonical seeds; only override when the
        # user asked for a specific one.
        kwargs = {} if args.seed is None else {"seed": args.seed}
        dataset = PRESETS[args.preset](**kwargs)
    else:
        dataset = generate_dataset(random_spec(args.seed or 0))
    save_dataset(dataset, args.out)
    rows = sum(t.num_rows for t in dataset.tables.values())
    cols = sum(t.num_columns for t in dataset.tables.values())
    print(f"wrote {args.out}: dataset {dataset.name!r} with "
          f"{len(dataset.tables)} tables, {rows} rows, {cols} columns, "
          f"{len(dataset.foreign_keys)} foreign keys")
    return 0


def cmd_label(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    config = fast_testbed_config(args.seed) if args.fast else TestbedConfig(seed=args.seed)
    label = run_testbed(dataset, config=config)
    scored = label.with_accuracy_metric(args.metric)
    scores = scored.score_vector(args.weight)
    stats = label.accuracy_stat(args.metric)

    print(f"dataset {dataset.name!r}  (accuracy metric: {args.metric}, "
          f"w_a = {args.weight})")
    header = f"{'model':<12} {'Q-error':>10} {'latency ms':>11} {'score':>7}"
    print(header)
    print("-" * len(header))
    order = np.argsort(-scores)
    for i in order:
        print(f"{label.model_names[i]:<12} {stats[i]:>10.3f} "
              f"{label.latency_means[i] * 1000:>11.4f} {scores[i]:>7.3f}")
    print(f"best model: {scored.best_model(args.weight)}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from .experiments.corpus import CorpusConfig, build_corpus

    testbed = fast_testbed_config(args.seed) if args.fast else TestbedConfig(seed=args.seed)
    config = CorpusConfig(num_datasets=args.corpus, base_seed=args.seed,
                          testbed=testbed)
    print(f"labeling corpus of {args.corpus} datasets "
          f"(cached under {args.cache or 'the default cache dir'}) ...")
    entries = build_corpus(config, cache_dir=args.cache)
    print(f"training AutoCE on {len(entries)} labeled datasets "
          f"({args.dtype} precision tier) ...")
    advisor = AutoCE(AutoCEConfig(seed=args.seed, dtype=args.dtype))
    advisor.fit([e.graph for e in entries], [e.label for e in entries])
    save_advisor(advisor, args.out)
    print(f"wrote {args.out}: advisor over {len(entries)} labeled datasets, "
          f"final DML loss {advisor.loss_history[-1]:.4f}")
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    advisor = load_advisor(args.advisor)
    dataset = load_dataset(args.dataset)
    if advisor.is_drifted(dataset):
        print("warning: dataset looks out-of-distribution for this advisor "
              "(drift detected); consider online adaptation", file=sys.stderr)
    rec = advisor.recommend(dataset, accuracy_weight=args.weight, k=args.k)
    print(f"dataset {dataset.name!r}  (w_a = {args.weight})")
    print(f"recommended model: {rec.model}")
    print("ranking:")
    for name, score in rec.ranking():
        marker = " <--" if name == rec.model else ""
        print(f"  {name:<12} {score:.3f}{marker}")
    return 0


def _serve_error(message: str) -> int:
    """Readable operator-facing failure: one stderr line, exit code 2."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def cmd_serve(args: argparse.Namespace) -> int:
    if not args.datasets and not args.daemon:
        return _serve_error("no datasets given (pass dataset files, or "
                            "--daemon to read paths from stdin)")
    try:
        advisor = load_advisor(args.advisor)
    except AdvisorLoadError as error:
        return _serve_error(str(error))
    if args.cache_dir:
        # Fail fast with a readable message when the cache directory cannot
        # be used, instead of a traceback mid-serve.
        try:
            Path(args.cache_dir).mkdir(parents=True, exist_ok=True)
            if not os.access(args.cache_dir, os.W_OK | os.X_OK):
                raise OSError("directory is not writable")
        except OSError as error:
            return _serve_error(
                f"cache dir {args.cache_dir!r} is unusable: {error}")
    if args.dtype:
        # Destructive full-tier cast (weights included); raises on an
        # upcast attempt against the persisted tier.
        advisor.set_dtype(args.dtype)
    if args.serving_dtype:
        # Mixed-tier mode: serving embeddings move to this tier while the
        # encoder keeps its trained precision.
        advisor.set_serving_dtype(args.serving_dtype)
    if args.ivf is not None or args.nprobe is not None:
        # IVF knobs ride on the quantization config; --ivf (with an
        # optional cell count, 0 = auto ~sqrt(N)) turns the coarse
        # partition on, --nprobe tunes how many cells each query probes.
        updates: dict[str, object] = {}
        if args.ivf is not None:
            updates["ivf"] = True
            updates["ivf_cells"] = args.ivf
        if args.nprobe is not None:
            updates["nprobe"] = args.nprobe
        advisor.config.quantization = replace(advisor.config.quantization,
                                              **updates)
    if args.quantize or args.ivf is not None:
        # Optional layout pin ("auto" resolves on the embedding width:
        # flat int8 up to 260 dims, product quantization past that).
        # --ivf implies the quantized tier — the coarse partition only
        # exists over code blocks — and without --quantize it keeps the
        # advisor's saved layout (mode=None leaves it untouched).
        advisor.set_quantization(True, mode=args.quantize)
    advisor.config.featurize_workers = args.workers
    if args.cache_dir:
        # Write-through disk tier: a restarted node warm-starts from here
        # and skips the GIN forward for every dataset it has served before.
        advisor.config.embedding_cache_dir = args.cache_dir

    server = None
    if args.shards:
        from .serving import ShardedServer

        deadline = (args.deadline_ms / 1000.0
                    if args.deadline_ms is not None else None)
        server = ShardedServer.from_advisor(
            advisor, num_shards=args.shards, deadline=deadline)
    tier_report = []
    try:
        served, degraded, latencies = _serve_requests(args, advisor, server)
    finally:
        if server is not None:
            # Snapshot shard status while the workers are still up — a
            # report taken after stop() would show every shard down.
            tier_report = server.tier_report()
            server.stop()

    line = f"served {served} recommendations (w_a = {args.weight})"
    if degraded:
        line += f" ({degraded} degraded)"
    print(line)
    cache = advisor.embedding_cache
    if cache is not None:
        tier = ("persistent" if args.cache_dir else "in-memory")
        line = (f"embedding cache ({tier}): {cache.hits} hits / "
                f"{cache.misses} misses")
        if args.cache_dir:
            line += f" ({cache.disk_hits} served from disk)"
        print(line)
        failures = getattr(cache, "storage_failures", 0)
        if failures:
            print(f"degraded storage: {failures} embedding-cache writes "
                  "failed (entries are recomputed instead of persisted)")
    if server is not None:
        from .testbed.metrics import summarize_latencies

        # Degraded (partial-coverage) responses return early by design, so
        # pooling them with healthy ones would drag the percentiles down
        # and mask a healthy-path regression: report the two populations
        # separately whenever both exist.
        healthy = [t for t, was_degraded in latencies if not was_degraded]
        cut_short = [t for t, was_degraded in latencies if was_degraded]

        def _latency_line(label: str, values: list[float]) -> str:
            stats = summarize_latencies(values)
            return (f"latency{label}: p50 {stats['p50'] * 1000:.1f} ms, "
                    f"p95 {stats['p95'] * 1000:.1f} ms, "
                    f"p99 {stats['p99'] * 1000:.1f} ms "
                    f"over {len(values)} requests")

        if cut_short:
            if healthy:
                print(_latency_line(" (healthy)", healthy))
            print(_latency_line(" (degraded)", cut_short))
        else:
            print(_latency_line("", healthy))
        for report_line in tier_report:
            print(report_line)
    else:
        index = advisor.rcs.index
        kinds = {"ANNIndex": "ANN (sign-hash LSH)",
                 "E2LSHIndex": "ANN (quantized E2LSH)"}
        kind = kinds.get(type(index).__name__, "exact") if index else "exact"
        tier = f"{advisor.serving_dtype.name} tier"
        if advisor.config.serving_dtype:
            tier += f" over {advisor.config.dtype} weights"
        if advisor.rcs.quantized is not None:
            tier += f" + {advisor.rcs.quantized.kind} candidates"
        print(f"neighbor search: {kind} over {len(advisor.rcs)} RCS members "
              f"({tier})")
    return 0


def _serve_requests(args: argparse.Namespace, advisor: AutoCE,
                    server) -> tuple[int, int, list[tuple[float, bool]]]:
    """Serve the batch (or the stdin stream under ``--daemon``).

    Returns (recommendations served, degraded responses, per-request
    ``(latency_seconds, was_degraded)`` samples — one per *request* even
    when requests were answered by one coalesced batch: the batch elapsed
    time is attributed evenly and the degraded flag is each response's
    own).  Under ``--daemon`` the stdin stream is coalesced into
    micro-batches (``--batch-window-ms`` / ``--max-batch``) so concurrent
    callers amortize the GIN forward and the scatter, and a malformed or
    unreadable dataset costs one stderr line, never the daemon.
    """
    from .serving import BatchingConfig, DegradedServiceError, iter_batches

    latencies: list[tuple[float, bool]] = []
    served = 0
    degraded = 0

    def serve(paths: list[str], *, lenient: bool = False) -> None:
        nonlocal served, degraded
        datasets = []
        for path in paths:
            if not lenient:
                datasets.append(load_dataset(path))
                continue
            try:
                datasets.append(load_dataset(path))
            except (OSError, ValueError, KeyError,
                    zipfile.BadZipFile) as error:
                # A missing, truncated or malformed dataset file must not
                # kill the stream — report it and serve the rest.
                print(f"  {path} -> ERROR: {error}", file=sys.stderr)
        if not datasets:
            return
        # The serve report's latency percentiles are the one place the CLI
        # legitimately reads the clock.
        start = time.perf_counter()  # repro: allow[REP002]
        if server is not None:
            recs = server.recommend_batch(datasets,
                                          accuracy_weight=args.weight,
                                          k=args.k)
        else:
            recs = advisor.recommend_batch(datasets,
                                           accuracy_weight=args.weight,
                                           k=args.k)
        elapsed = time.perf_counter() - start  # repro: allow[REP002]
        # Per-request accounting: the percentiles are labeled per-request,
        # so a coalesced batch contributes one sample per member (its even
        # share of the batch time) with that member's own degraded flag.
        share = elapsed / len(recs)
        for dataset, rec in zip(datasets, recs):
            latencies.append((share, getattr(rec, "degraded", False)))
            line = f"  {dataset.name:<24} -> {rec.model}"
            if getattr(rec, "degraded", False):
                line += f"  [degraded: coverage {rec.coverage:.2f}]"
            print(line)
        served += len(recs)
        degraded += sum(1 for rec in recs if getattr(rec, "degraded", False))

    if args.daemon:
        print("daemon: reading dataset paths from stdin (one per line, "
              "EOF stops)", flush=True)
        batching = BatchingConfig(max_batch=args.max_batch,
                                  window_ms=args.batch_window_ms)
        for batch in iter_batches(sys.stdin, batching):
            try:
                serve(batch, lenient=True)
            except (OSError, ValueError, DegradedServiceError) as error:
                for path in batch:
                    print(f"  {path} -> ERROR: {error}", file=sys.stderr)
            sys.stdout.flush()
    elif server is not None:
        for path in args.datasets:
            try:
                serve([path])
            except DegradedServiceError as error:
                print(f"  {path} -> ERROR: {error}", file=sys.stderr)
    else:
        serve(list(args.datasets))
    return served, degraded, latencies


def cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    names = list(EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        module_name, _ = EXPERIMENTS[name]
        module = importlib.import_module(f".experiments.{module_name}",
                                         package=__package__)
        result = module.run()
        print(result.text)
        print()
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    from .ce.registry import (CANDIDATE_MODELS, DATA_DRIVEN_MODELS,
                              QUERY_DRIVEN_MODELS, available_models)

    print("candidate models:", ", ".join(CANDIDATE_MODELS))
    print("  query-driven:  ", ", ".join(QUERY_DRIVEN_MODELS))
    print("  data-driven:   ", ", ".join(DATA_DRIVEN_MODELS))
    extras = [m for m in available_models() if m not in CANDIDATE_MODELS]
    if extras:
        print("also registered: ", ", ".join(extras))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AutoCE reproduction: a model advisor for learned "
                    "cardinality estimation.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--preset", choices=sorted(PRESETS),
                   help="use a real-world-shaped preset schema")
    p.add_argument("--out", default="dataset.npz", help="output .npz path")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("label", help="run the CE testbed on a dataset")
    p.add_argument("dataset", help="dataset .npz produced by 'generate'")
    p.add_argument("--weight", type=float, default=1.0,
                   help="accuracy weight w_a in [0, 1]")
    p.add_argument("--metric", choices=ACCURACY_METRICS, default="mean",
                   help="Q-error statistic used as the accuracy score")
    p.add_argument("--fast", action="store_true",
                   help="reduced-budget testbed (seconds instead of minutes)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_label)

    p = sub.add_parser("train", help="label a corpus and train the advisor")
    p.add_argument("--corpus", type=int, default=60,
                   help="number of synthetic training datasets")
    p.add_argument("--out", default="advisor.npz", help="output advisor path")
    p.add_argument("--cache", default=None, help="label cache directory")
    p.add_argument("--fast", action="store_true",
                   help="reduced-budget testbed for labeling")
    p.add_argument("--dtype", choices=("float64", "float32"),
                   default="float64",
                   help="precision tier of the encoder and embeddings "
                        "(float32 = fast tier)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("recommend", help="recommend a CE model for a dataset")
    p.add_argument("dataset", help="dataset .npz produced by 'generate'")
    p.add_argument("--advisor", required=True, help="advisor .npz from 'train'")
    p.add_argument("--weight", type=float, default=1.0,
                   help="accuracy weight w_a in [0, 1]")
    p.add_argument("--k", type=int, default=None,
                   help="KNN neighbours (default: the advisor's k)")
    p.set_defaults(func=cmd_recommend)

    p = sub.add_parser("serve",
                       help="batch-serve recommendations for many datasets")
    p.add_argument("datasets", nargs="*",
                   help="dataset .npz files produced by 'generate' "
                        "(optional with --daemon)")
    p.add_argument("--shards", type=int, default=0,
                   help="serve through this many supervised shard worker "
                        "processes (0 = in-process serving); crashed shards "
                        "are restarted with bounded backoff")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request latency budget; shards that miss it "
                        "are cut from the merge and the response is "
                        "returned degraded with coverage fractions "
                        "(requires --shards)")
    p.add_argument("--daemon", action="store_true",
                   help="read dataset paths from stdin (one per line) and "
                        "serve each until EOF; streaming requests are "
                        "coalesced into micro-batches (see "
                        "--batch-window-ms / --max-batch)")
    p.add_argument("--batch-window-ms", type=float, default=5.0,
                   help="how long a daemon micro-batch stays open after "
                        "its first request, waiting for more (0 = only "
                        "already-buffered lines join; default 5)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="largest number of daemon requests coalesced into "
                        "one batched recommend call (default 16)")
    p.add_argument("--advisor", required=True, help="advisor .npz from 'train'")
    p.add_argument("--weight", type=float, default=1.0,
                   help="accuracy weight w_a in [0, 1]")
    p.add_argument("--k", type=int, default=None,
                   help="KNN neighbours (default: the advisor's k)")
    p.add_argument("--cache-dir", default=None,
                   help="persistent embedding-cache directory (survives "
                        "restarts; invalidated when the encoder changes)")
    p.add_argument("--workers", type=int, default=0,
                   help="featurization threads (0 = one per CPU, 1 = serial)")
    p.add_argument("--dtype", choices=("float64", "float32"), default=None,
                   help="destructively cast the whole advisor (weights "
                        "included) to this tier; upcasting a float32-saved "
                        "advisor is refused — prefer --serving-dtype for "
                        "serving-only casts")
    p.add_argument("--serving-dtype", choices=("float64", "float32"),
                   default=None,
                   help="mixed-tier mode: serve RCS and query embeddings at "
                        "this tier while the encoder keeps its trained "
                        "precision (e.g. float32 serving over float64 "
                        "weights)")
    p.add_argument("--quantize", nargs="?", const="auto", default=None,
                   choices=("auto", "int8", "pq"),
                   help="add the quantized candidate tier: corpus scans "
                        "and LSH re-rank pools rank compressed codes and "
                        "re-rank the top k*overfetch candidates in the "
                        "float serving tier.  Optional layout: 'int8' "
                        "(flat codes, exact integer arithmetic up to 260 "
                        "dims), 'pq' (product quantization for wider "
                        "embeddings; one byte per ~32 dims, add "
                        "residual refinement via the advisor config for "
                        "recall-critical corpora), or 'auto' (the "
                        "default: int8 up to 260 dims, pq past that)")
    p.add_argument("--ivf", nargs="?", const=0, default=None, type=int,
                   metavar="CELLS",
                   help="add an IVF coarse partition over the quantized "
                        "tier (implies --quantize): corpus scans probe "
                        "only the --nprobe nearest of CELLS k-means cells "
                        "instead of every member.  Omit the value (or "
                        "pass 0) for the auto cell count ~sqrt(N)")
    p.add_argument("--nprobe", type=int, default=None,
                   help="cells probed per query under --ivf (default 8); "
                        "higher = better recall, slower scans; nprobe >= "
                        "cells serves bit-for-bit as the flat scan")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("experiment",
                       help="re-run a paper experiment and print its table")
    p.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"],
                   help="figure/table id, or 'all'")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("models", help="list the registered CE models")
    p.set_defaults(func=cmd_models)

    from .analysis.cli import add_check_parser
    add_check_parser(sub)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
