"""Evaluation metrics: Q-error and its summaries (Sec. II of the paper)."""

from __future__ import annotations

import numpy as np

MIN_CARD = 1.0


def qerror(estimate: float | np.ndarray, true: float | np.ndarray) -> np.ndarray:
    """Q-error = max(est, true) / min(est, true), both floored at 1 row.

    Flooring at one row is the standard convention (Moerkotte et al. [21]):
    an estimate of 0.3 rows for a true count of 0 is a perfect answer for
    planning purposes, not an infinite error.
    """
    est = np.maximum(np.asarray(estimate, dtype=np.float64), MIN_CARD)
    tru = np.maximum(np.asarray(true, dtype=np.float64), MIN_CARD)
    return np.maximum(est, tru) / np.minimum(est, tru)


def summarize_qerrors(errors: np.ndarray) -> dict[str, float]:
    errors = np.asarray(errors, dtype=np.float64)
    if len(errors) == 0:
        return {"mean": 1.0, "median": 1.0, "p95": 1.0, "p99": 1.0, "max": 1.0}
    return {
        "mean": float(errors.mean()),
        "median": float(np.median(errors)),
        "p95": float(np.percentile(errors, 95)),
        "p99": float(np.percentile(errors, 99)),
        "max": float(errors.max()),
    }
