"""Evaluation metrics: Q-error and its summaries (Sec. II of the paper)."""

from __future__ import annotations

import numpy as np

MIN_CARD = 1.0


def qerror(estimate: float | np.ndarray, true: float | np.ndarray) -> np.ndarray:
    """Q-error = max(est, true) / min(est, true), both floored at 1 row.

    Flooring at one row is the standard convention (Moerkotte et al. [21]):
    an estimate of 0.3 rows for a true count of 0 is a perfect answer for
    planning purposes, not an infinite error.
    """
    est = np.maximum(np.asarray(estimate, dtype=np.float64), MIN_CARD)
    tru = np.maximum(np.asarray(true, dtype=np.float64), MIN_CARD)
    return np.maximum(est, tru) / np.minimum(est, tru)


def summarize_qerrors(errors: np.ndarray) -> dict[str, float]:
    errors = np.asarray(errors, dtype=np.float64)
    if len(errors) == 0:
        return {"mean": 1.0, "median": 1.0, "p95": 1.0, "p99": 1.0, "max": 1.0}
    return {
        "mean": float(errors.mean()),
        "median": float(np.median(errors)),
        "p95": float(np.percentile(errors, 95)),
        "p99": float(np.percentile(errors, 99)),
        "max": float(errors.max()),
    }


def summarize_latencies(seconds) -> dict[str, float]:
    """Tail-latency summary of per-request latencies (seconds).

    The SLA percentiles serving dashboards quote: p50/p95/p99 plus the
    mean and max.  An empty sample summarizes to all-zeros rather than
    raising, so reports stay printable before traffic arrives.
    """
    seconds = np.asarray(seconds, dtype=np.float64)
    if len(seconds) == 0:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": float(seconds.mean()),
        "p50": float(np.median(seconds)),
        "p95": float(np.percentile(seconds, 95)),
        "p99": float(np.percentile(seconds, 99)),
        "max": float(seconds.max()),
    }
