"""The unified CE testbed (Sec. IV-B1): train, test and time every model.

Implements the paper's four labeling steps for one dataset: (1) generate a
workload, (2) obtain true cardinalities (exact counting), (3) train the
candidate CE models — data-driven ones from join samples, query-driven ones
from encoded training queries — and (4) measure per-model mean Q-error and
mean inference latency on the testing queries, yielding the dataset's
:class:`~repro.testbed.scores.DatasetLabel`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..ce.base import CEModel, TrainingContext
from ..ce.bayescard import BayesCard, BayesCardConfig
from ..ce.deepdb import DeepDB, DeepDBConfig
from ..ce.lwnn import LWNN, LWNNConfig
from ..ce.lwxgb import LWXGB, LWXGBConfig
from ..ce.mscn import MSCN, MSCNConfig
from ..ce.neurocard import NeuroCard, NeuroCardConfig
from ..ce.registry import CANDIDATE_MODELS
from ..ce.uae import UAE, UAEConfig
from ..db.schema import Dataset
from ..workload.generator import Workload, generate_workload
from .metrics import qerror
from .scores import DatasetLabel


@dataclass
class TestbedConfig:
    """Knobs trading labeling fidelity for CPU time.

    The defaults are sized so that labeling one dataset takes a couple of
    seconds on a laptop CPU while preserving the accuracy/latency orderings
    between model families.
    """

    num_train_queries: int = 300
    num_test_queries: int = 40
    sample_size: int = 1200
    mscn_epochs: int = 60
    lwnn_epochs: int = 100
    made_epochs: int = 8
    made_hidden: int = 32
    made_samples: int = 64
    #: Inference-latency repetitions per query; the minimum is kept.  A
    #: single-shot timing fluctuates 2–4x between runs (scheduler jitter,
    #: allocator state), which would bake irreducible noise into the
    #: efficiency half of every label.
    latency_reps: int = 3
    #: Run one untimed estimation pass first so lazily-fitted sub-models
    #: and cold caches don't inflate the first query's latency.
    warmup: bool = True
    #: Also measure the Postgres estimator and the weighted Ensemble
    #: (comparison baselines of Fig. 9 — not selection candidates).
    include_baselines: bool = False
    #: Training queries used to compute the Ensemble's accuracy weights.
    ensemble_weight_queries: int = 60
    seed: int = 0

    def build_candidates(self) -> dict[str, CEModel]:
        """Instantiate the seven candidate models with config-scaled budgets."""
        neuro = NeuroCardConfig(hidden=self.made_hidden, epochs=self.made_epochs,
                                num_samples=self.made_samples, seed=self.seed)
        uae = UAEConfig(hidden=self.made_hidden, epochs=self.made_epochs,
                        num_samples=self.made_samples, seed=self.seed)
        return {
            "BayesCard": BayesCard(BayesCardConfig(seed=self.seed)),
            "DeepDB": DeepDB(DeepDBConfig(seed=self.seed)),
            "NeuroCard": NeuroCard(neuro),
            "MSCN": MSCN(MSCNConfig(epochs=self.mscn_epochs, seed=self.seed)),
            "LW-NN": LWNN(LWNNConfig(epochs=self.lwnn_epochs, seed=self.seed)),
            "LW-XGB": LWXGB(LWXGBConfig(seed=self.seed)),
            "UAE": UAE(uae),
        }


@dataclass
class ModelPerformance:
    """Measured performance of one model on one dataset."""

    name: str
    qerror_mean: float
    qerror_median: float
    latency_mean: float
    fit_time: float
    qerror_p95: float = float("nan")
    qerror_p99: float = float("nan")
    estimates: np.ndarray = field(repr=False, default=None)


def evaluate_model(model: CEModel, ctx: TrainingContext,
                   latency_reps: int = 3, warmup: bool = True) -> ModelPerformance:
    """Fit one model and measure Q-error + per-query inference latency.

    Latency is the per-query minimum over ``latency_reps`` timed repetitions
    (after an optional warm-up pass), the standard robust wall-clock
    protocol: the minimum estimates the true cost with the least scheduler
    and allocator noise, keeping the efficiency half of the label stable
    across labeling runs.
    """
    start = time.perf_counter()
    model.fit(ctx)
    fit_time = time.perf_counter() - start

    test = ctx.workload.test
    true = np.array([q.true_cardinality for q in test], dtype=np.float64)
    estimates = np.empty(len(test))
    latencies = np.full(len(test), np.inf)
    if warmup:
        for query in test:
            model.estimate(query)
    for _ in range(max(1, latency_reps)):
        for i, query in enumerate(test):
            t0 = time.perf_counter()
            estimates[i] = model.estimate(query)
            elapsed = time.perf_counter() - t0
            if elapsed < latencies[i]:
                latencies[i] = elapsed
    errors = qerror(estimates, true)
    return ModelPerformance(
        name=model.name,
        qerror_mean=float(errors.mean()),
        qerror_median=float(np.median(errors)),
        latency_mean=float(latencies.mean()),
        fit_time=fit_time,
        qerror_p95=float(np.percentile(errors, 95)),
        qerror_p99=float(np.percentile(errors, 99)),
        estimates=estimates,
    )


def run_testbed(dataset: Dataset, workload: Workload | None = None,
                config: TestbedConfig | None = None,
                model_names: list[str] | None = None) -> DatasetLabel:
    """Label one dataset: the full Stage-1 testbed pass."""
    config = config or TestbedConfig()
    if workload is None:
        workload = generate_workload(
            dataset, num_train=config.num_train_queries,
            num_test=config.num_test_queries, seed=config.seed)
    ctx = TrainingContext.build(dataset, workload, seed=config.seed,
                                sample_size=config.sample_size)
    candidates = config.build_candidates()
    names = model_names if model_names is not None else list(CANDIDATE_MODELS)
    performances = []
    fitted = []
    for name in names:
        if name not in candidates:
            # Custom models added via repro.ce.register are built from the
            # registry with their default configuration.
            from ..ce.registry import _REGISTRY
            if name not in _REGISTRY:
                raise KeyError(f"testbed has no candidate named {name!r}")
            candidates[name] = _REGISTRY[name]()
        performances.append(evaluate_model(
            candidates[name], ctx, latency_reps=config.latency_reps,
            warmup=config.warmup))
        fitted.append(candidates[name])

    all_names = list(names)
    if config.include_baselines:
        from ..ce.ensemble import EnsembleCE
        from ..ce.postgres import PostgresEstimator

        performances.append(evaluate_model(
            PostgresEstimator(), ctx, latency_reps=config.latency_reps,
            warmup=config.warmup))
        all_names.append("Postgres")
        # The Ensemble reuses the already-fitted candidates; cap the number
        # of training queries used to compute its weights.
        weight_workload = Workload(
            ctx.workload.dataset_name,
            ctx.workload.train[:config.ensemble_weight_queries],
            ctx.workload.test)
        ensemble_ctx = TrainingContext(
            dataset=ctx.dataset, workload=weight_workload,
            encoder=ctx.encoder, samples=ctx.samples, seed=ctx.seed,
            sample_size=ctx.sample_size)
        performances.append(evaluate_model(
            EnsembleCE(fitted), ensemble_ctx,
            latency_reps=config.latency_reps, warmup=config.warmup))
        all_names.append("Ensemble")

    return DatasetLabel(
        model_names=tuple(all_names),
        qerror_means=np.array([p.qerror_mean for p in performances]),
        latency_means=np.array([p.latency_mean for p in performances]),
        qerror_medians=np.array([p.qerror_median for p in performances]),
        fit_times=np.array([p.fit_time for p in performances]),
        qerror_p95=np.array([p.qerror_p95 for p in performances]),
        qerror_p99=np.array([p.qerror_p99 for p in performances]),
    )
