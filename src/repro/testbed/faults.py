"""Deterministic fault injection for the serving runtime and its storage.

Every failure mode the fault-tolerant serving runtime claims to survive —
a SIGKILLed shard worker, a shard stalled past its deadline, a torn or
corrupted cache entry, a NaN-poisoned embedding, a stale cache generation
— is reproducible from one seeded :class:`FaultPlan`.  The plan is a plain
picklable dataclass: the supervisor ships it to every worker process, the
workers consult it at fixed hook points (keyed by their request ordinal),
and the storage helpers derive all randomness from the plan seed, so a CI
fault drill replays bit-identically on every run.

Hook points:

* **worker loop** — :meth:`FaultPlan.should_kill` /
  :meth:`FaultPlan.sleep_seconds` / :meth:`FaultPlan.scramble_tier` fire
  on the worker's (shard, ordinal, incarnation) coordinates.  Kill and
  slow faults target a worker's *first* incarnation only, so a restarted
  shard serves cleanly — unless the shard is listed in ``kill_always``,
  which models a permanently poisoned shard for restart-exhaustion tests.
* **embedding path** — :meth:`FaultPlan.poison_embeddings` overwrites a
  query batch's rows with NaN at the configured batch ordinals, modeling
  a poisoned cache row or an encoder NaN blow-up.
* **storage** — :meth:`FaultPlan.tear_file` truncates a file mid-payload
  (a torn write surviving a crash) and :meth:`FaultPlan.corrupt_file`
  flips seeded bytes in place (bit rot, bad sector).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass
class FaultPlan:
    """A seeded, picklable schedule of injected faults.

    Ordinals are 1-based request counters, worker-local (each worker
    counts its own requests).  An empty plan injects nothing, so the
    production path can thread a plan unconditionally.
    """

    seed: int = 0
    #: shard id -> request ordinal: SIGKILL the worker as it picks up that
    #: request (first incarnation only — restarts serve cleanly).
    kill_at: dict[int, int] = field(default_factory=dict)
    #: shard ids whose workers die on *every* request, every incarnation
    #: (restart-exhaustion drills).
    kill_always: frozenset = frozenset()
    #: shard id -> (ordinal, seconds): stall before serving that request
    #: (first incarnation only).
    slow_at: dict[int, tuple[int, float]] = field(default_factory=dict)
    #: shard id -> ordinal: deterministically scramble the shard's current
    #: quantized tier's codes before serving (recall degradation drills).
    scramble_at: dict[int, int] = field(default_factory=dict)
    #: supervisor-side embed-batch ordinals whose embeddings are poisoned
    #: with NaN rows.
    poison_embedding_at: frozenset = frozenset()
    #: Fraction of a file kept by :meth:`tear_file`.
    tear_fraction: float = 0.5
    #: Bytes flipped by :meth:`corrupt_file`.
    corrupt_bytes: int = 8
    #: A wrong cache-generation stamp for stale-generation drills (None =
    #: fault disabled).
    stale_generation: str | None = None

    # -- worker-loop hooks ------------------------------------------------
    def should_kill(self, shard_id: int, ordinal: int,
                    incarnation: int) -> bool:
        if shard_id in self.kill_always:
            return True
        return incarnation == 0 and self.kill_at.get(shard_id) == ordinal

    def kill_now(self) -> None:  # pragma: no cover - the process dies
        """SIGKILL the calling process — no cleanup, no goodbye message,
        exactly the crash the supervisor must detect from outside."""
        os.kill(os.getpid(), signal.SIGKILL)

    def sleep_seconds(self, shard_id: int, ordinal: int,
                      incarnation: int) -> float:
        if incarnation != 0:
            return 0.0
        at, seconds = self.slow_at.get(shard_id, (0, 0.0))
        return float(seconds) if at == ordinal else 0.0

    def maybe_stall(self, shard_id: int, ordinal: int,
                    incarnation: int) -> None:
        seconds = self.sleep_seconds(shard_id, ordinal, incarnation)
        if seconds > 0:
            time.sleep(seconds)

    def scramble_tier(self, shard_id: int, ordinal: int,
                      incarnation: int) -> bool:
        return (incarnation == 0
                and self.scramble_at.get(shard_id) == ordinal)

    # -- embedding-path hook ----------------------------------------------
    def poison_embeddings(self, embeddings: np.ndarray,
                          batch_ordinal: int) -> np.ndarray:
        """NaN-poison a batch's rows when its ordinal is scheduled.

        Returns a poisoned copy (the cache's pristine rows are never
        mutated); unscheduled batches pass through untouched.
        """
        if batch_ordinal not in self.poison_embedding_at:
            return embeddings
        poisoned = np.array(embeddings, copy=True)
        rng = np.random.default_rng(self.seed + batch_ordinal)
        rows = max(1, len(poisoned))
        row = int(rng.integers(rows)) if len(poisoned) else 0
        if len(poisoned):
            poisoned[row, :: 2] = np.nan
            poisoned[row, 1:: 2] = np.inf
        return poisoned

    # -- storage hooks ----------------------------------------------------
    def tear_file(self, path: str | Path) -> None:
        """Truncate ``path`` to ``tear_fraction`` of its bytes: the torn
        write a crashed process leaves behind when its writes were not
        routed through an atomic temp-file replace."""
        path = Path(path)
        size = path.stat().st_size
        keep = int(size * self.tear_fraction)
        with open(path, "rb+") as handle:
            handle.truncate(keep)

    def corrupt_file(self, path: str | Path) -> None:
        """Flip ``corrupt_bytes`` seeded byte positions of ``path`` in
        place (bit rot: size unchanged, payload silently wrong)."""
        path = Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            return
        rng = np.random.default_rng(self.seed)
        for pos in rng.integers(0, len(data), size=self.corrupt_bytes):
            data[int(pos)] ^= 0xFF
        path.write_bytes(bytes(data))
