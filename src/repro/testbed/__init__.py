"""The unified cardinality-estimation testbed (dataset labeling)."""

from .faults import FaultPlan
from .metrics import qerror, summarize_latencies, summarize_qerrors
from .scores import DatasetLabel, ScoreLabel, minmax_scores, WEIGHT_GRID, SCORE_FLOOR
from .runner import TestbedConfig, ModelPerformance, evaluate_model, run_testbed

__all__ = [
    "FaultPlan",
    "qerror", "summarize_latencies", "summarize_qerrors",
    "DatasetLabel", "ScoreLabel", "minmax_scores", "WEIGHT_GRID", "SCORE_FLOOR",
    "TestbedConfig", "ModelPerformance", "evaluate_model", "run_testbed",
]
