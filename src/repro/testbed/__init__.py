"""The unified cardinality-estimation testbed (dataset labeling)."""

from .metrics import qerror, summarize_qerrors
from .scores import DatasetLabel, ScoreLabel, minmax_scores, WEIGHT_GRID, SCORE_FLOOR
from .runner import TestbedConfig, ModelPerformance, evaluate_model, run_testbed

__all__ = [
    "qerror", "summarize_qerrors",
    "DatasetLabel", "ScoreLabel", "minmax_scores", "WEIGHT_GRID", "SCORE_FLOOR",
    "TestbedConfig", "ModelPerformance", "evaluate_model", "run_testbed",
]
