"""Score normalization, score vectors and D-error (Sec. IV-B2, Def. 1).

A dataset's *label* is the per-model performance measured by the testbed:
mean Q-error and mean inference latency for every candidate model.  Under a
user weighting ``w = (w_a, w_e)`` these are min–max normalized per dataset
(Eqs. 3–4) and combined into a score vector (Eq. 2); the model with the
highest score is optimal, and D-error (Def. 1) measures how far a selected
model's score falls short of the optimum.

Two label classes share one interface:

* :class:`DatasetLabel` — computed from raw testbed measurements.
* :class:`ScoreLabel` — holds normalized scores directly; produced by the
  Mixup augmentation of the incremental-learning phase (Eq. 14), where
  labels are interpolated in normalized-score space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Floor applied to normalized scores so that D-error (which divides by the
#: selected model's score) stays finite when the worst model is selected.
SCORE_FLOOR = 1e-3

#: The paper varies the accuracy weight from 0 to 1 with a step of 0.1.
WEIGHT_GRID: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(11))


def minmax_scores(values: np.ndarray) -> np.ndarray:
    """Eq. 3 / Eq. 4: (max - v) / (max - min); best (smallest) value → 1."""
    values = np.asarray(values, dtype=np.float64)
    v_max = values.max()
    v_min = values.min()
    if v_max <= v_min:
        return np.ones_like(values)
    return (v_max - values) / (v_max - v_min)


@dataclass
class ScoreLabel:
    """Normalized per-model scores (S_a, S_e) for one (possibly synthetic) dataset."""

    model_names: tuple[str, ...]
    sa: np.ndarray
    se: np.ndarray

    def __post_init__(self):
        self.sa = np.asarray(self.sa, dtype=np.float64)
        self.se = np.asarray(self.se, dtype=np.float64)
        if len(self.model_names) != len(self.sa) or len(self.model_names) != len(self.se):
            raise ValueError("model_names and score arrays must have equal length")

    # ------------------------------------------------------------------
    @property
    def num_models(self) -> int:
        return len(self.model_names)

    def index_of(self, model: str) -> int:
        return self.model_names.index(model)

    def accuracy_scores(self) -> np.ndarray:
        """Eq. 3: normalized accuracy score per model."""
        return self.sa

    def efficiency_scores(self) -> np.ndarray:
        """Eq. 4: normalized efficiency score per model."""
        return self.se

    def score_vector(self, accuracy_weight: float) -> np.ndarray:
        """Eq. 2: S = w_a · S_a + w_e · S_e with w_e = 1 − w_a."""
        if not 0.0 <= accuracy_weight <= 1.0:
            raise ValueError(f"accuracy weight must be in [0, 1], got {accuracy_weight}")
        w_e = 1.0 - accuracy_weight
        scores = accuracy_weight * self.sa + w_e * self.se
        return np.maximum(scores, SCORE_FLOOR)

    def best_model(self, accuracy_weight: float) -> str:
        return self.model_names[int(np.argmax(self.score_vector(accuracy_weight)))]

    def d_error(self, model: str, accuracy_weight: float,
                clip: float | None = 1.0) -> float:
        """Def. 1: (S_opt − S_M) / S_M for the selected model ``M``.

        ``clip`` bounds the error at 1 (100 %) as in the paper's reporting;
        pass ``clip=None`` for the raw value.
        """
        scores = self.score_vector(accuracy_weight)
        s_opt = float(scores.max())
        s_model = float(scores[self.index_of(model)])
        error = (s_opt - s_model) / s_model
        if clip is not None:
            error = min(error, clip)
        return error

    def label_matrix(self, weights: tuple[float, ...] = WEIGHT_GRID) -> np.ndarray:
        """Score vectors stacked for every weight combination: [len(weights), m]."""
        return np.stack([self.score_vector(w) for w in weights])

    def mix_with(self, other: "ScoreLabel", lam: float) -> "ScoreLabel":
        """Eq. 14 (label half): ⃗y' = λ·⃗y_i + (1−λ)·⃗y_j in normalized space."""
        if self.model_names != other.model_names:
            raise ValueError("cannot mix labels over different model sets")
        return ScoreLabel(
            model_names=self.model_names,
            sa=lam * self.sa + (1.0 - lam) * other.sa,
            se=lam * self.se + (1.0 - lam) * other.se,
        )


#: Accuracy statistics a label may be re-normalized on (Sec. IV-B2 note:
#: "it is possible to use other percentiles of the metrics, such as 50-th,
#: 95-th, and 99-th of Q-error").
ACCURACY_METRICS: tuple[str, ...] = ("mean", "median", "p95", "p99")


class DatasetLabel(ScoreLabel):
    """Raw per-model testbed measurements, normalized on construction."""

    def subset(self, names: list[str] | tuple[str, ...]) -> "DatasetLabel":
        """Re-normalized label over a subset of models.

        Eq. 3/4 normalize over the candidate set M, so restricting M (e.g.
        to query-driven models for the CEB experiment, Table III) requires
        renormalizing from the raw metrics.
        """
        def cut(array):
            return None if array is None else array[indices]

        indices = [self.index_of(n) for n in names]
        return DatasetLabel(
            model_names=tuple(names),
            qerror_means=self.qerror_means[indices],
            latency_means=self.latency_means[indices],
            qerror_medians=cut(self.qerror_medians),
            fit_times=cut(self.fit_times),
            qerror_p95=cut(self.qerror_p95),
            qerror_p99=cut(self.qerror_p99),
        )

    def __init__(self, model_names: tuple[str, ...], qerror_means,
                 latency_means, qerror_medians=None, fit_times=None,
                 qerror_p95=None, qerror_p99=None):
        def as_array(values):
            return (None if values is None
                    else np.asarray(values, dtype=np.float64))

        self.qerror_means = np.asarray(qerror_means, dtype=np.float64)
        self.latency_means = np.asarray(latency_means, dtype=np.float64)
        self.qerror_medians = as_array(qerror_medians)
        self.fit_times = as_array(fit_times)
        self.qerror_p95 = as_array(qerror_p95)
        self.qerror_p99 = as_array(qerror_p99)
        super().__init__(
            model_names=tuple(model_names),
            sa=minmax_scores(self.qerror_means),
            se=minmax_scores(self.latency_means),
        )

    # ------------------------------------------------------------------
    # Alternative accuracy statistics (Sec. IV-B2 note)
    # ------------------------------------------------------------------
    def accuracy_stat(self, metric: str = "mean") -> np.ndarray:
        """Raw per-model Q-error statistic: mean, median, p95 or p99."""
        arrays = {
            "mean": self.qerror_means,
            # Old pickled labels predate the percentile fields; fall back
            # to None so the error below names the actual problem.
            "median": getattr(self, "qerror_medians", None),
            "p95": getattr(self, "qerror_p95", None),
            "p99": getattr(self, "qerror_p99", None),
        }
        if metric not in arrays:
            raise ValueError(
                f"unknown accuracy metric {metric!r}; choose from {ACCURACY_METRICS}")
        values = arrays[metric]
        if values is None:
            raise ValueError(
                f"label was measured without the {metric!r} statistic; "
                "re-run the testbed to record Q-error percentiles")
        return values

    def with_accuracy_metric(self, metric: str) -> "ScoreLabel":
        """Label re-normalized on a different Q-error statistic (Eq. 3).

        The efficiency half (Eq. 4) is unchanged; only the accuracy scores
        are recomputed from the chosen percentile.
        """
        return ScoreLabel(
            model_names=self.model_names,
            sa=minmax_scores(self.accuracy_stat(metric)),
            se=self.se,
        )
