"""repro: a full reproduction of AutoCE (ICDE 2023).

AutoCE is a *model advisor* for learned cardinality estimation: given any
dataset and a user-specified weighting between estimation accuracy and
inference efficiency, it recommends which CE model to deploy - without
training a single CE model on the target dataset.

Public entry points
-------------------
* :class:`repro.core.AutoCE` - the advisor (fit / recommend / adapt).
* :mod:`repro.datagen` - synthetic dataset generation (skew, correlations).
* :mod:`repro.workload` - SPJ workload generation with exact true cards.
* :mod:`repro.ce` - nine cardinality estimators (MSCN, LW-NN, LW-XGB,
  DeepDB, BayesCard, NeuroCard, UAE, Ensemble, Postgres).
* :mod:`repro.testbed` - the unified CE testbed that labels datasets.
* :mod:`repro.engine` - a cost-based optimizer + executor for end-to-end
  latency experiments (the PostgreSQL substitute).
* :mod:`repro.experiments` - drivers regenerating every table and figure of
  the paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
