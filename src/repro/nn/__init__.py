"""A self-contained numpy neural-network library (autodiff, layers, optim).

This package replaces the GPU deep-learning frameworks used by the original
paper.  Everything needed by the reproduction — MLPs, set-convolution style
pooling, masked autoregressive layers, the GIN graph encoder — is built on the
:class:`~repro.nn.autograd.Tensor` reverse-mode engine defined here.
"""

from .autograd import Tensor, no_grad, concatenate, stack, where
from .layers import Module, Linear, MaskedLinear, Sequential, ReLU, Tanh, Sigmoid, MLP
from .optim import SGD, Adam, clip_grad_norm
from .functional import mse_loss, mae_loss, cross_entropy, nll_from_logits, msle_loss

__all__ = [
    "Tensor", "no_grad", "concatenate", "stack", "where",
    "Module", "Linear", "MaskedLinear", "Sequential", "ReLU", "Tanh", "Sigmoid", "MLP",
    "SGD", "Adam", "clip_grad_norm",
    "mse_loss", "mae_loss", "cross_entropy", "nll_from_logits", "msle_loss",
]
