"""Gradient-descent optimizers for the numpy NN library."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Optimizer:
    def __init__(self, params: list[Tensor]):
        self.params = [p for p in params if p.requires_grad]

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params: list[Tensor], lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW when ``decoupled=True``)."""

    def __init__(self, params: list[Tensor], lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
