"""Gradient-descent optimizers for the numpy NN library."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            flat = param.grad.ravel()
            total += float(np.dot(flat, flat))
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Optimizer:
    def __init__(self, params: list[Tensor]):
        self.params = [p for p in params if p.requires_grad]

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params: list[Tensor], lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW when ``decoupled=True``).

    The moment buffers live in one flat array per kind; when every parameter
    has a gradient (the common case) the whole update runs as a handful of
    vectorized operations over the flat buffers instead of a Python loop of
    small per-parameter kernels.  Elementwise math is identical either way.
    """

    def __init__(self, params: list[Tensor], lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        sizes = [p.data.size for p in self.params]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        self._slices = [(int(offsets[i]), int(offsets[i + 1]))
                        for i in range(len(self.params))]
        # Optimizer state lives in the parameters' dtype: a float32 model
        # (the fast precision tier) trains with float32 moments, halving the
        # optimizer's memory traffic along with the model's.
        dtype = (np.result_type(*[p.data.dtype for p in self.params])
                 if self.params else np.float64)
        self._m_flat = np.zeros(int(offsets[-1]), dtype=dtype)
        self._v_flat = np.zeros(int(offsets[-1]), dtype=dtype)
        self._grad_flat = np.empty(int(offsets[-1]), dtype=dtype)
        self._scratch = np.empty(int(offsets[-1]), dtype=dtype)
        self._rebind_data()
        # Per-parameter views of the flat state (used by the fallback loop).
        self._m = [self._m_flat[s:e].reshape(p.data.shape)
                   for p, (s, e) in zip(self.params, self._slices)]
        self._v = [self._v_flat[s:e].reshape(p.data.shape)
                   for p, (s, e) in zip(self.params, self._slices)]
        self._t = 0

    def _rebind_data(self) -> None:
        """Re-home parameter data into one flat buffer (views per param).

        Lets the fused update write ``flat -= update`` in one pass instead
        of a Python scatter loop.  Parameters whose ``.data`` is reassigned
        elsewhere (e.g. ``load_state_dict`` or a ``Module.to`` precision
        switch) are detected per step and re-homed — including a dtype
        change, which also re-casts the optimizer state — before the next
        fused update.
        """
        self._data_flat = np.concatenate(
            [param.data.ravel() for param in self.params]) if self.params \
            else np.zeros(0)
        for param, (start, stop) in zip(self.params, self._slices):
            param.data = self._data_flat[start:stop].reshape(param.data.shape)
        self._data_views = [param.data for param in self.params]
        dtype = self._data_flat.dtype
        if getattr(self, "_m_flat", None) is not None \
                and self._m_flat.dtype != dtype:
            self._m_flat = self._m_flat.astype(dtype)
            self._v_flat = self._v_flat.astype(dtype)
            self._grad_flat = np.empty(len(self._grad_flat), dtype=dtype)
            self._scratch = np.empty(len(self._scratch), dtype=dtype)
            self._m = [self._m_flat[s:e].reshape(p.data.shape)
                       for p, (s, e) in zip(self.params, self._slices)]
            self._v = [self._v_flat[s:e].reshape(p.data.shape)
                       for p, (s, e) in zip(self.params, self._slices)]

    def step(self, grad_clip: float | None = None) -> None:
        """One update; ``grad_clip`` folds global-norm clipping into the
        flat-gradient gather (same math as ``clip_grad_norm`` + ``step``)."""
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        grads = [param.grad for param in self.params]
        if self.params and all(grad is not None for grad in grads):
            flat_grad = self._grad_flat
            for grad, (start, stop) in zip(grads, self._slices):
                flat_grad[start:stop] = grad.ravel()
            if grad_clip is not None:
                norm = float(np.sqrt(np.dot(flat_grad, flat_grad)))
                if norm > grad_clip > 0:
                    flat_grad *= grad_clip / (norm + 1e-12)
            if self.weight_decay:
                for param, (start, stop) in zip(self.params, self._slices):
                    flat_grad[start:stop] += self.weight_decay * param.data.ravel()
            m, v = self._m_flat, self._v_flat
            m *= self.beta1
            m += (1.0 - self.beta1) * flat_grad
            v *= self.beta2
            flat_grad *= flat_grad
            v += (1.0 - self.beta2) * flat_grad
            # denom = sqrt(v / bias2) + eps, update = (m / bias1) * lr / denom,
            # built in preallocated scratch to avoid per-step temporaries.
            denom = np.divide(v, bias2, out=self._scratch)
            np.sqrt(denom, out=denom)
            denom += self.eps
            update = np.divide(m, bias1, out=flat_grad)
            update *= self.lr
            update /= denom
            for param, view in zip(self.params, self._data_views):
                if param.data is not view:
                    # Someone reassigned .data (state load) — re-home first.
                    self._rebind_data()
                    break
            self._data_flat -= update
            return
        if grad_clip is not None:
            clip_grad_norm(self.params, grad_clip)
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
