"""A small reverse-mode automatic differentiation engine over numpy arrays.

This module is the substrate for every neural model in the reproduction
(MSCN, LW-NN, the MADE autoregressive density estimators behind NeuroCard and
UAE, and the GIN graph encoder at the heart of AutoCE).  It implements a
:class:`Tensor` wrapper around ``numpy.ndarray`` that records the operations
applied to it and can replay them in reverse to accumulate gradients.

Design notes
------------
* Gradients are dense numpy arrays of the same shape **and dtype** as the
  data.  ``float64`` is the default working precision; ``float32`` tensors
  are preserved end-to-end (the advisor's fast serving/training tier), and
  every op derives its output dtype from its operands, so a graph built from
  ``float32`` leaves stays ``float32`` through forward and backward.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` sums gradients
  back down to the original operand shape.
* The graph is built eagerly and freed after :meth:`Tensor.backward`.
* Only the operations needed by the models in this repository are provided;
  each one carries a closed-form vector-Jacobian product and is verified
  against finite differences in ``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager disabling graph construction (used at inference time)."""

    def __enter__(self):
        _GRAD_ENABLED.append(False)
        return self

    def __exit__(self, *exc):
        _GRAD_ENABLED.pop()
        return False


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


#: Floating dtypes carried through the graph unchanged; everything else
#: (ints, bools, float16) is promoted to the float64 default.
_FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _as_array(value) -> np.ndarray:
    if isinstance(value, (np.ndarray, np.generic)):
        # Full-reduction ufuncs hand back 0-d numpy scalars; they carry a
        # dtype just like arrays and must not lose a float32 tier.
        if value.dtype not in _FLOAT_DTYPES:
            return np.asarray(value, dtype=np.float64)
        return np.asarray(value)
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus the bookkeeping needed for reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: tuple, backward) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def ensure(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None) -> None:
        """Accumulate gradients of ``self`` w.r.t. every reachable leaf."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                pid = id(parent)
                if pid in grads:
                    grads[pid] = grads[pid] + parent_grad
                else:
                    grads[pid] = parent_grad
            # Free graph references as we go.
            node._parents = ()
            node._backward = None

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, (int, float)):
            # Scalar fast path: python scalars follow the array dtype (so
            # float32 graphs stay float32) and skip a constant graph node.
            def backward(grad):
                return ((self, grad),)

            return Tensor._make(self.data + other, (self,), backward)
        other = Tensor.ensure(other)
        data = self.data + other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.data.shape)),
                (other, _unbroadcast(grad, other.data.shape)),
            )

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            return ((self, -grad),)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        if isinstance(other, (int, float)):
            def backward(grad):
                return ((self, grad),)

            return Tensor._make(self.data - other, (self,), backward)
        other = Tensor.ensure(other)
        data = self.data - other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.data.shape)),
                (other, _unbroadcast(-grad, other.data.shape)),
            )

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other):
        if isinstance(other, (int, float)):
            def backward(grad):
                return ((self, -grad),)

            return Tensor._make(other - self.data, (self,), backward)
        return Tensor.ensure(other) - self

    def __mul__(self, other):
        if isinstance(other, (int, float)):
            def backward(grad):
                return ((self, grad * other),)

            return Tensor._make(self.data * other, (self,), backward)
        other = Tensor.ensure(other)
        data = self.data * other.data
        a_data, b_data = self.data, other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad * b_data, a_data.shape)),
                (other, _unbroadcast(grad * a_data, b_data.shape)),
            )

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, (int, float)):
            # Direct division (not multiplication by the reciprocal): bit-
            # identical to the numpy result, and a zero scalar propagates
            # inf/nan like an array division instead of raising.
            def backward(grad):
                return ((self, grad / other),)

            return Tensor._make(self.data / other, (self,), backward)
        other = Tensor.ensure(other)
        data = self.data / other.data
        a_data, b_data = self.data, other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad / b_data, a_data.shape)),
                (other, _unbroadcast(-grad * a_data / (b_data * b_data), b_data.shape)),
            )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        if isinstance(other, (int, float)):
            b_data = self.data

            def backward(grad):
                return ((self, -grad * other / (b_data * b_data)),)

            return Tensor._make(other / b_data, (self,), backward)
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent
        base = self.data

        def backward(grad):
            return ((self, grad * exponent * base ** (exponent - 1)),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra / shaping
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        other = Tensor.ensure(other)
        data = self.data @ other.data
        a_data, b_data = self.data, other.data

        def backward(grad):
            if a_data.ndim == 1 and b_data.ndim == 1:
                ga = grad * b_data
                gb = grad * a_data
            elif a_data.ndim == 1:
                ga = grad @ b_data.T
                gb = np.outer(a_data, grad)
            elif b_data.ndim == 1:
                ga = np.outer(grad, b_data)
                gb = a_data.T @ grad
            else:
                ga = grad @ np.swapaxes(b_data, -1, -2)
                gb = np.swapaxes(a_data, -1, -2) @ grad
                ga = _unbroadcast(ga, a_data.shape)
                gb = _unbroadcast(gb, b_data.shape)
            return ((self, ga), (other, gb))

        return Tensor._make(data, (self, other), backward)

    def __rmatmul__(self, other):
        return Tensor.ensure(other) @ self

    @property
    def T(self) -> "Tensor":
        def backward(grad):
            return ((self, grad.T),)

        return Tensor._make(self.data.T, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad):
            return ((self, grad.reshape(original)),)

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        original_shape = self.data.shape

        def backward(grad):
            full = np.zeros(original_shape, dtype=grad.dtype)
            np.add.at(full, index, grad)
            return ((self, full),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad):
            if axis is None:
                return ((self, np.broadcast_to(grad, shape).copy()),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            return ((self, np.broadcast_to(g, shape).copy()),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        src = self.data

        def backward(grad):
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = (src == d).astype(src.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            return ((self, mask * g),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return ((self, grad * data),)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        src = self.data

        def backward(grad):
            return ((self, grad / src),)

        return Tensor._make(np.log(src), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            return ((self, grad * 0.5 / data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return ((self, grad * mask),)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, slope).astype(self.data.dtype, copy=False)

        def backward(grad):
            return ((self, grad * scale),)

        return Tensor._make(self.data * scale, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            return ((self, grad * data * (1.0 - data)),)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            return ((self, grad * (1.0 - data * data)),)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad):
            return ((self, grad * sign),)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)

        def backward(grad):
            return ((self, grad * mask),)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Composite reductions used by the losses
    # ------------------------------------------------------------------
    def logsumexp(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Numerically stable ``log(sum(exp(x)))`` with exact gradient."""
        shift = self.data.max(axis=axis, keepdims=True)
        shifted = self.data - shift
        sumexp = np.exp(shifted).sum(axis=axis, keepdims=True)
        data = np.log(sumexp) + shift
        if not keepdims and axis is not None:
            data = np.squeeze(data, axis=axis)
        elif not keepdims and axis is None:
            data = data.reshape(())
        softmax = np.exp(self.data - (np.log(sumexp) + shift))

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return ((self, softmax * g),)

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shift = self.data.max(axis=axis, keepdims=True)
        e = np.exp(self.data - shift)
        data = e / e.sum(axis=axis, keepdims=True)

        def backward(grad):
            dot = (grad * data).sum(axis=axis, keepdims=True)
            return ((self, data * (grad - dot)),)

        return Tensor._make(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shift = self.data.max(axis=axis, keepdims=True)
        shifted = self.data - shift
        logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - logsum
        softmax = np.exp(data)

        def backward(grad):
            return ((self, grad - softmax * grad.sum(axis=axis, keepdims=True)),)

        return Tensor._make(data, (self,), backward)


def concatenate(tensors: list, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor.ensure(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        out = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            out.append((tensor, grad[tuple(index)]))
        return tuple(out)

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: list, axis: int = 0) -> Tensor:
    tensors = [Tensor.ensure(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(
            (tensor, np.squeeze(piece, axis=axis))
            for tensor, piece in zip(tensors, pieces)
        )

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """``np.where`` with gradients flowing through both branches."""
    a = Tensor.ensure(a)
    b = Tensor.ensure(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad):
        return (
            (a, _unbroadcast(np.where(cond, grad, 0.0), a.data.shape)),
            (b, _unbroadcast(np.where(cond, 0.0, grad), b.data.shape)),
        )

    return Tensor._make(data, (a, b), backward)
