"""Loss functions and small functional helpers."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = ["mse_loss", "mae_loss", "cross_entropy", "nll_from_logits", "msle_loss"]


def mse_loss(pred: Tensor, target) -> Tensor:
    target = Tensor.ensure(target)
    diff = pred - target
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target) -> Tensor:
    target = Tensor.ensure(target)
    return (pred - target).abs().mean()


def msle_loss(pred_log: Tensor, target_log) -> Tensor:
    """Mean squared error in log space (the standard CE-regression loss)."""
    return mse_loss(pred_log, target_log)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``labels`` under ``logits`` rows."""
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    rows = np.arange(len(labels))
    picked = log_probs[rows, labels]
    return -picked.mean()


def nll_from_logits(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Sum negative log-likelihood (used by the autoregressive estimators)."""
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    rows = np.arange(len(labels))
    return -log_probs[rows, labels].sum()
