"""Parameter initialization schemes for the numpy NN library."""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He uniform initialization, appropriate for ReLU networks."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
