"""Neural-network modules built on the autograd engine.

Provides the building blocks shared by every learned model in the
reproduction: fully-connected layers, MLPs, masked (autoregressive) linear
layers for the MADE density estimators, and a generic :class:`Module` base
class that collects parameters for the optimizers.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor
from . import init

__all__ = ["Module", "Linear", "MaskedLinear", "Sequential", "ReLU", "Tanh", "Sigmoid", "MLP"]


class Module:
    """Base class: tracks parameters and sub-modules by attribute assignment."""

    def __init__(self):
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Tensor) and value.requires_grad:
            self._params[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> list[Tensor]:
        params = list(self._params.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        object.__setattr__(self, "training", True)
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        object.__setattr__(self, "training", False)
        for module in self._modules.values():
            module.eval()
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def to(self, dtype) -> "Module":
        """Cast every parameter (and buffered gradient) to ``dtype`` in place.

        The precision tier of a model is the dtype of its parameters: inputs
        are cast at the module boundary by the callers, and the autograd
        engine propagates whatever dtype the leaves carry, so one cast here
        switches the whole forward/backward between float64 and float32.
        """
        dtype = np.dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
            if param.grad is not None and param.grad.dtype != dtype:
                param.grad = param.grad.astype(dtype)
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for name, param in self._params.items():
            state[name] = param.data.copy()
        for mod_name, module in self._modules.items():
            for key, value in module.state_dict().items():
                state[f"{mod_name}.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for name, param in self._params.items():
            param.data = state[name].copy()
        for mod_name, module in self._modules.items():
            prefix = mod_name + "."
            sub = {k[len(prefix):]: v for k, v in state.items() if k.startswith(prefix)}
            module.load_state_dict(sub)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.kaiming_uniform(rng, in_features, out_features),
                             requires_grad=True)
        self.bias = Tensor(init.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if self.bias is not None and x.ndim >= 2:
            return self._fused_affine(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def _fused_affine(self, x: Tensor, relu: bool = False) -> Tensor:
        """``x @ W + b`` (optionally + ReLU) as a single autograd node.

        Identical math to the composed ops, but one graph node instead of
        two or three, and batched inputs ([..., in]) collapse to a single
        2-D GEMM instead of a stack of small ones — per-node overhead and
        GEMM dispatch dominate at small batch sizes.
        """
        weight, bias = self.weight, self.bias
        w_data = weight.data
        x2 = x.data.reshape(-1, self.in_features)
        out_shape = x.data.shape[:-1] + (self.out_features,)
        out = x2 @ w_data + bias.data
        relu_mask = None
        if relu:
            relu_mask = out > 0
            out = out * relu_mask
        data = out.reshape(out_shape)

        def backward(grad):
            g2 = grad.reshape(-1, self.out_features)
            if relu_mask is not None:
                g2 = g2 * relu_mask
            out = [(weight, x2.T @ g2), (bias, g2.sum(axis=0))]
            if x.requires_grad:
                out.append((x, (g2 @ w_data.T).reshape(x.data.shape)))
            return out

        return Tensor._make(data, (x, weight, bias), backward)


class MaskedLinear(Linear):
    """A linear layer whose weight is elementwise-masked.

    Used to enforce the autoregressive property in MADE: connections from
    later inputs to earlier outputs are zeroed by the mask both in the
    forward pass and (automatically, through the product rule) in the
    backward pass.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 mask: np.ndarray):
        super().__init__(in_features, out_features, rng)
        if mask.shape != (in_features, out_features):
            raise ValueError(f"mask shape {mask.shape} != {(in_features, out_features)}")
        self.mask = Tensor(mask.astype(np.float64))  # constant, no grad

    def forward(self, x: Tensor) -> Tensor:
        return x @ (self.weight * self.mask) + self.bias


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = list(modules)
        for i, module in enumerate(modules):
            setattr(self, f"step{i}", module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.steps:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between hidden layers."""

    def __init__(self, sizes: list[int], rng: np.random.Generator,
                 activation: str = "relu", output_activation: str | None = None):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.sizes = list(sizes)
        self.activation = activation
        self.output_activation = output_activation
        self.layers = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(fan_in, fan_out, rng)
            self.layers.append(layer)
            setattr(self, f"layer{i}", layer)

    def _activate(self, x: Tensor, kind: str) -> Tensor:
        if kind == "relu":
            return x.relu()
        if kind == "tanh":
            return x.tanh()
        if kind == "sigmoid":
            return x.sigmoid()
        raise ValueError(f"unknown activation {kind!r}")

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            kind = self.activation if i < last else self.output_activation
            if kind == "relu" and layer.bias is not None and x.ndim >= 2:
                # Affine + ReLU as one fused graph node.
                x = layer._fused_affine(x, relu=True)
            else:
                x = layer(x)
                if kind is not None:
                    x = self._activate(x, kind)
        return x
