"""Cost model consuming injected cardinalities.

A classic textbook cost model: costs are proportional to the number of rows
touched, with estimated (sub-plan) cardinalities injected by whatever CE
model is under test — the mechanism the paper uses to plug learned
estimators into PostgreSQL's optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Relative per-row cost constants (dimensionless).
SEQ_ROW_COST = 1.0
INDEX_LOOKUP_COST = 4.0
HASH_BUILD_COST = 1.5
HASH_PROBE_COST = 1.0
NL_LOOKUP_COST = 2.5
OUTPUT_ROW_COST = 0.5


@dataclass
class CostModel:
    """Pure function of estimated input/output cardinalities."""

    def seq_scan(self, table_rows: float, output_rows: float) -> float:
        return SEQ_ROW_COST * table_rows + OUTPUT_ROW_COST * output_rows

    def index_scan(self, table_rows: float, output_rows: float) -> float:
        # B-tree descent plus per-matching-row fetch; beats a full scan only
        # for selective predicates — if the estimate is wrong, the optimizer
        # picks the slower access path, which is what Table V measures.
        return INDEX_LOOKUP_COST * 10.0 + 3.0 * output_rows

    def best_scan(self, table_rows: float, output_rows: float) -> tuple[str, float]:
        seq = self.seq_scan(table_rows, output_rows)
        index = self.index_scan(table_rows, output_rows)
        return ("index", index) if index < seq else ("seq", seq)

    def hash_join(self, left_rows: float, right_rows: float,
                  output_rows: float) -> float:
        return (HASH_BUILD_COST * right_rows + HASH_PROBE_COST * left_rows
                + OUTPUT_ROW_COST * output_rows)

    def index_nl_join(self, left_rows: float, output_rows: float) -> float:
        return NL_LOOKUP_COST * left_rows + OUTPUT_ROW_COST * output_rows
