"""Selinger-style join-order optimization with injected cardinalities.

Enumerates left-deep plans over the connected subsets of a query's join
graph.  Every sub-plan's cardinality is obtained from the
:class:`~repro.engine.providers.CardinalityProvider` under test
(``provider.estimate(sub_query)``), exactly mirroring how the paper
injects estimated cardinalities of all sub-plan queries into PostgreSQL.
Bare ``Callable[[Query], float]`` estimators and fitted CE models are
coerced through :func:`~repro.engine.providers.as_provider`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ce.base import CEModel
from ..db.schema import Dataset
from ..workload.query import Query
from .cost import CostModel
from .plans import JoinNode, PlanNode, ScanNode
from .providers import CardinalityProvider, as_provider


@dataclass
class PlannedQuery:
    plan: PlanNode
    cost: float
    #: Number of distinct sub-plan estimates the optimizer requested (the
    #: provider may have served some of them from its cross-query memo).
    estimator_calls: int


class Optimizer:
    """DP over connected table subsets, left-deep plans, two join methods."""

    def __init__(self, dataset: Dataset, cost_model: CostModel | None = None):
        self.dataset = dataset
        self.cost_model = cost_model or CostModel()

    def plan(self, query: Query,
             estimate: CardinalityProvider | CEModel | Callable[[Query], float],
             ) -> PlannedQuery:
        """Build the cheapest plan for ``query`` under the given provider."""
        provider = as_provider(estimate)
        tables = tuple(sorted(query.tables))
        calls = 0
        card_cache: dict[tuple[str, ...], float] = {}

        def cardinality(subset: tuple[str, ...]) -> float:
            nonlocal calls
            key = tuple(sorted(subset))
            if key not in card_cache:
                card_cache[key] = max(
                    1.0, float(provider.estimate(query.restrict(key))))
                calls += 1
            return card_cache[key]

        # Base relations.
        best: dict[frozenset, tuple[float, PlanNode]] = {}
        scans: dict[str, ScanNode] = {}
        for table in tables:
            est_out = cardinality((table,))
            method, cost = self.cost_model.best_scan(
                self.dataset[table].num_rows, est_out)
            preds = tuple(p for p in query.predicates if p.table == table)
            scan = ScanNode(table, preds, method, est_out)
            scans[table] = scan
            best[frozenset([table])] = (cost, scan)

        if len(tables) == 1:
            cost, plan = best[frozenset(tables)]
            return PlannedQuery(plan, cost, calls)

        # Grow left-deep plans one adjacent table at a time.
        for size in range(2, len(tables) + 1):
            for subset, (left_cost, left_plan) in list(best.items()):
                if len(subset) != size - 1:
                    continue
                for table in tables:
                    if table in subset:
                        continue
                    fk = self._connecting_fk(subset, table)
                    if fk is None:
                        continue
                    grown = subset | {table}
                    out_rows = cardinality(tuple(grown))
                    left_rows = cardinality(tuple(subset))
                    right_scan = scans[table]
                    right_rows = right_scan.estimated_rows

                    candidates = [(
                        "hash",
                        left_cost + right_scan_cost(self.cost_model, self.dataset,
                                                    right_scan)
                        + self.cost_model.hash_join(left_rows, right_rows, out_rows),
                    )]
                    if fk.parent == table:
                        # Index-NL is available whenever the new table is the
                        # PK side (lookup by key) — i.e. the FK column lives
                        # in the already-built left side.
                        candidates.append((
                            "indexnl",
                            left_cost + self.cost_model.index_nl_join(
                                left_rows, out_rows),
                        ))
                    for method, cost in candidates:
                        key = frozenset(grown)
                        if key not in best or cost < best[key][0]:
                            node = JoinNode(left_plan, right_scan, fk, method,
                                            out_rows)
                            best[key] = (cost, node)

        key = frozenset(tables)
        if key not in best:
            raise ValueError(f"query tables {tables} are not joinable")
        cost, plan = best[key]
        return PlannedQuery(plan, cost, calls)

    def _connecting_fk(self, subset: frozenset, table: str):
        for fk in self.dataset.foreign_keys:
            if fk.child == table and fk.parent in subset:
                return fk
            if fk.parent == table and fk.child in subset:
                return fk
        return None


def right_scan_cost(cost_model: CostModel, dataset: Dataset,
                    scan: ScanNode) -> float:
    if scan.method == "seq":
        return cost_model.seq_scan(dataset[scan.table].num_rows,
                                   scan.estimated_rows)
    return cost_model.index_scan(dataset[scan.table].num_rows,
                                 scan.estimated_rows)
