"""The estimator-provider layer between CE models and the optimizer.

PostBOUND-style closed loop: the optimizer never talks to a raw
``Callable[[Query], float]`` anymore — it asks a
:class:`CardinalityProvider` for the cardinality of every connected
sub-plan.  The provider layer owns the three concerns the bare callable
used to smear over three call sites:

* **Sub-plan memo** — estimates are memoized per restricted sub-query
  (``Query.restrict`` output: join template + surviving predicates), so a
  workload that probes the same sub-plan twice pays one model inference
  and the hit is *observable* (``stats.memo_hits``) instead of silently
  folded into the optimizer's per-plan cache.
* **Fallback chain** — a provider may carry a ``fallback`` provider; a
  source that raises or returns a non-finite/non-positive estimate hands
  the sub-query down the chain (``stats.fallbacks`` counts every
  delegation) instead of crashing the planner mid-workload.
* **Inference-time accounting** — every source call is timed
  (``stats.elapsed_s``); whether that time counts as *model inference
  latency* is a single class attribute, ``counts_inference_time``.
  TrueCard is the one oracle whose clock never counts — the rule Table V
  applies — and it is stated here exactly once instead of by
  ``isinstance`` checks in the harness and name-string checks in the
  experiment driver.

Concrete providers: :class:`TrueCardProvider` (exact counts),
:class:`HistogramProvider` (the PostgreSQL-style AVI baseline),
:class:`ModelProvider` (any fitted :class:`~repro.ce.base.CEModel`) and
:class:`AdvisorProvider` (AutoCE picks the model for the dataset, then
delegates every estimate to the pick).  :func:`as_provider` coerces the
legacy shapes — a ``CEModel`` or a bare callable — so existing callers
keep working while the provider is the primary interface.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..ce.base import CEModel
from ..db.counting import count_join
from ..db.schema import Dataset
from ..workload.query import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.advisor import AutoCE
    from ..core.graph import FeatureGraph

def _invalid(value: float) -> bool:
    """NaN, ±inf and negative counts are "no answer" (fallback food);
    zero is a legitimate estimate — the optimizer floors it at one row."""
    return math.isnan(value) or math.isinf(value) or value < 0.0


@dataclass
class ProviderStats:
    """Observable per-provider counters (reset with :meth:`reset`)."""

    #: ``estimate()`` invocations seen by this provider.
    calls: int = 0
    #: Calls served from the sub-plan memo (no source invocation).
    memo_hits: int = 0
    #: Calls the source failed and the fallback provider answered.
    fallbacks: int = 0
    #: Wall-clock spent inside this provider's *source* estimator.
    elapsed_s: float = 0.0

    def reset(self) -> None:
        self.calls = 0
        self.memo_hits = 0
        self.fallbacks = 0
        self.elapsed_s = 0.0


class CardinalityProvider:
    """Base class of the provider protocol: memo + fallback + timing.

    Subclasses implement :meth:`_estimate` (the source).  ``estimate`` is
    the optimizer-facing entry point and must never be overridden — it is
    where the memo, the fallback chain and the timing live, and keeping
    them in one place is the point of the layer.
    """

    #: Display name (the Table V row label).
    name: str = "abstract"
    #: Whether ``stats.elapsed_s`` counts as model inference latency.
    #: False only for oracles (TrueCard): their clock measures the
    #: counting substrate, not a deployable estimator.
    counts_inference_time: bool = True

    def __init__(self, fallback: "CardinalityProvider | None" = None,
                 memo: bool = True) -> None:
        self.fallback = fallback
        self.stats = ProviderStats()
        self._memo: dict[Query, float] | None = {} if memo else None

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        """Cardinality of ``query`` via memo → source → fallback chain."""
        self.stats.calls += 1
        key = query
        if self._memo is not None:
            hit = self._memo.get(key)
            if hit is not None:
                self.stats.memo_hits += 1
                return hit
        value = self._timed_source(query)
        if value is None:
            if self.fallback is None:
                raise ValueError(
                    f"provider {self.name!r} produced no usable estimate for "
                    f"{query.sql()} and has no fallback")
            self.stats.fallbacks += 1
            value = self.fallback.estimate(query)
        if self._memo is not None:
            self._memo[key] = value
        return value

    def _timed_source(self, query: Query) -> float | None:
        """One timed source call; ``None`` signals "ask the fallback"."""
        start = time.perf_counter()
        try:
            value = float(self._estimate(query))
        except Exception:
            if self.fallback is None:
                raise
            return None
        finally:
            self.stats.elapsed_s += time.perf_counter() - start
        if _invalid(value):
            return None
        return value

    def _estimate(self, query: Query) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def inference_time(self) -> float:
        """Model inference latency this provider accumulated — the one
        TrueCard rule: an oracle's clock reads as zero."""
        own = self.stats.elapsed_s if self.counts_inference_time else 0.0
        if self.fallback is not None:
            own += self.fallback.inference_time
        return own

    def reset_stats(self) -> None:
        """Zero the counters (and the chain's), keeping the memo."""
        self.stats.reset()
        if self.fallback is not None:
            self.fallback.reset_stats()

    def clear_memo(self) -> None:
        if self._memo is not None:
            self._memo.clear()
        if self.fallback is not None:
            self.fallback.clear_memo()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class TrueCardProvider(CardinalityProvider):
    """Oracle provider: exact counts via the counting substrate.

    The paper's "TrueCard" row — the upper bound on what better
    cardinalities can buy.  ``counts_inference_time`` is False: this is
    the single place the zero-inference rule lives.
    """

    name = "TrueCard"
    counts_inference_time = False

    def __init__(self, dataset: Dataset, **kwargs: object) -> None:
        super().__init__(**kwargs)
        self.dataset = dataset

    def _estimate(self, query: Query) -> float:
        return float(count_join(self.dataset, query.tables,
                                query.predicate_tuples()))


class ModelProvider(CardinalityProvider):
    """Any fitted :class:`CEModel` behind the provider protocol."""

    def __init__(self, model: CEModel, **kwargs: object) -> None:
        super().__init__(**kwargs)
        self.model = model
        self.name = model.name

    def _estimate(self, query: Query) -> float:
        return self.model.estimate(query)


class HistogramProvider(ModelProvider):
    """The PostgreSQL-style per-column-histogram baseline.

    A thin named wrapper over a fitted
    :class:`~repro.ce.postgres.PostgresEstimator` so benchmark tables can
    say "the histogram baseline" and mean exactly one thing.
    """

    def __init__(self, model: CEModel, **kwargs: object) -> None:
        super().__init__(model, **kwargs)
        self.name = "PostgreSQL"


class CallableProvider(CardinalityProvider):
    """Adapter for bare ``Callable[[Query], float]`` estimators (tests,
    property harnesses, quick experiments)."""

    def __init__(self, fn: Callable[[Query], float], name: str = "callable",
                 **kwargs: object) -> None:
        super().__init__(**kwargs)
        self.fn = fn
        self.name = name

    def _estimate(self, query: Query) -> float:
        return self.fn(query)


class AdvisorProvider(CardinalityProvider):
    """AutoCE in the loop: recommend a model for the dataset, delegate.

    The advisor runs **once per dataset** (on first use or eagerly via
    :meth:`pick`), picks from ``models`` under ``accuracy_weight`` and
    every subsequent estimate delegates to the picked model.  The
    selection cost is tracked separately (``selection_s``) from the
    picked model's per-call inference time.
    """

    def __init__(self, advisor: "AutoCE",
                 dataset: "Dataset | FeatureGraph",
                 models: dict[str, CEModel],
                 accuracy_weight: float = 1.0,
                 **kwargs: object) -> None:
        super().__init__(**kwargs)
        self.advisor = advisor
        self.dataset = dataset
        self.models = dict(models)
        self.accuracy_weight = accuracy_weight
        self.name = f"AutoCE(w_a={accuracy_weight:g})"
        self.picked: str | None = None
        #: One-time advisor cost (featurize + embed + KNN), not per-call
        #: model inference.
        self.selection_s = 0.0

    def pick(self) -> str:
        """Run the recommendation once; return the picked model name."""
        if self.picked is None:
            start = time.perf_counter()
            recommendation = self.advisor.recommend(self.dataset,
                                                    self.accuracy_weight)
            self.selection_s = time.perf_counter() - start
            if recommendation.model not in self.models:
                raise KeyError(
                    f"advisor picked {recommendation.model!r} but only "
                    f"{sorted(self.models)} are fitted for this dataset")
            self.picked = recommendation.model
        return self.picked

    def _estimate(self, query: Query) -> float:
        return self.models[self.pick()].estimate(query)


def as_provider(source: "CardinalityProvider | CEModel | Callable[[Query], float]",
                fallback: "CardinalityProvider | None" = None,
                ) -> CardinalityProvider:
    """Coerce any estimator shape into a :class:`CardinalityProvider`.

    Providers pass through untouched (``fallback`` must then be unset —
    the provider already owns its chain).  A ``TrueCardEstimator`` maps to
    :class:`TrueCardProvider` so the zero-inference rule follows the
    oracle wherever it enters; any other ``CEModel`` wraps in
    :class:`ModelProvider`; a bare callable wraps in
    :class:`CallableProvider`.
    """
    if isinstance(source, CardinalityProvider):
        if fallback is not None:
            raise ValueError("pass the fallback to the provider constructor; "
                             "as_provider cannot re-chain an existing provider")
        return source
    from .e2e import TrueCardEstimator  # deferred: e2e imports this module
    if isinstance(source, TrueCardEstimator):
        return TrueCardProvider(source.dataset, fallback=fallback)
    if isinstance(source, CEModel):
        return ModelProvider(source, fallback=fallback)
    if callable(source):
        return CallableProvider(source, fallback=fallback)
    raise TypeError(f"cannot adapt {type(source).__name__} into a "
                    "CardinalityProvider")
