"""Physical plan execution over the columnar tables.

Executes the optimizer's plans with real numpy operators — hash joins with
build/probe phases, index nested-loop joins via direct PK addressing, and
sequential vs sorted-index scans — so that plans with smaller intermediate
results genuinely run faster.  This is the causal link Table V relies on:
better cardinalities → better join orders/operators → lower wall-clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..db.schema import Dataset
from ..db.table import PK_COLUMN
from .plans import JoinNode, PlanNode, ScanNode


@dataclass
class ExecutionResult:
    rows: int
    elapsed: float


class Executor:
    """Executes physical plans; keeps per-column sorted indexes lazily."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self._sorted: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _sorted_index(self, table: str, column: str):
        key = (table, column)
        if key not in self._sorted:
            values = self.dataset[table][column]
            order = np.argsort(values, kind="stable")
            self._sorted[key] = (values[order], order)
        return self._sorted[key]

    def _scan(self, node: ScanNode) -> np.ndarray:
        table = self.dataset[node.table]
        if not node.predicates:
            return np.arange(table.num_rows, dtype=np.int64)
        if node.method == "index":
            # Use the sorted index for the first predicate, refine the rest.
            first, *rest = node.predicates
            values, order = self._sorted_index(node.table, first.column)
            lo = np.searchsorted(values, first.lo, side="left")
            hi = np.searchsorted(values, first.hi, side="right")
            rows = order[lo:hi]
            for pred in rest:
                column = table[pred.column][rows]
                rows = rows[(column >= pred.lo) & (column <= pred.hi)]
            return np.sort(rows)
        mask = table.select([(p.column, p.lo, p.hi) for p in node.predicates])
        return np.nonzero(mask)[0].astype(np.int64)

    # ------------------------------------------------------------------
    def _execute_node(self, node: PlanNode) -> dict[str, np.ndarray]:
        """Returns the intermediate result as row indices per table."""
        if isinstance(node, ScanNode):
            return {node.table: self._scan(node)}

        left = self._execute_node(node.left)
        right_rows = self._scan(node.right)
        fk = node.fk
        child_in_left = fk.child in left

        if child_in_left:
            # Left holds the FK; new table is the parent (PK side).
            fk_values = self.dataset[fk.child][fk.fk_column][left[fk.child]]
            if node.method == "indexnl" and len(node.right.predicates) == 0:
                # Direct PK addressing: pk value == row index.
                result = {name: rows for name, rows in left.items()}
                result[fk.parent] = fk_values
                return result
            # Hash join: membership probe against the (sorted, unique)
            # parent row set — work scales with the actual input sizes.
            if len(right_rows) == 0:
                keep = np.zeros(len(fk_values), dtype=bool)
            else:
                positions = np.searchsorted(right_rows, fk_values)
                positions = np.minimum(positions, len(right_rows) - 1)
                keep = right_rows[positions] == fk_values
            result = {name: rows[keep] for name, rows in left.items()}
            result[fk.parent] = fk_values[keep]
            return result

        # Left holds the parent (PK side); new table is the child (FK side).
        child = self.dataset[fk.child]
        fk_values = child[fk.fk_column][right_rows]
        order = np.argsort(fk_values, kind="stable")
        sorted_fk = fk_values[order]
        parent_keys = self.dataset[fk.parent][PK_COLUMN][left[fk.parent]]
        starts = np.searchsorted(sorted_fk, parent_keys, side="left")
        stops = np.searchsorted(sorted_fk, parent_keys, side="right")
        fanouts = stops - starts
        total = int(fanouts.sum())
        keep = np.repeat(np.arange(len(parent_keys)), fanouts)
        offsets = np.concatenate(([0], np.cumsum(fanouts)))[:-1]
        within = np.arange(total) - np.repeat(offsets, fanouts)
        child_positions = order[np.repeat(starts, fanouts) + within]
        result = {name: rows[keep] for name, rows in left.items()}
        result[fk.child] = right_rows[child_positions]
        return result

    # ------------------------------------------------------------------
    def execute(self, plan: PlanNode) -> ExecutionResult:
        start = time.perf_counter()
        result = self._execute_node(plan)
        rows = len(next(iter(result.values()))) if result else 0
        return ExecutionResult(rows=rows, elapsed=time.perf_counter() - start)
