"""Physical query plans for the PostgreSQL-substitute engine.

Plans are left-deep trees of scans and joins over a PK–FK schema.  The
optimizer annotates every node with the *estimated* cardinality it was
costed with, so misestimates are visible in plan dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.schema import ForeignKey


@dataclass
class ScanNode:
    """Base-table access: sequential scan or (sorted) index scan."""

    table: str
    predicates: tuple  # tuple[Predicate, ...]
    method: str = "seq"  # "seq" | "index"
    estimated_rows: float = 0.0

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.table,)

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        preds = ", ".join(f"{p.column}∈[{p.lo},{p.hi}]" for p in self.predicates)
        return (f"{pad}{self.method.title()}Scan({self.table}"
                f"{' | ' + preds if preds else ''}) ≈{self.estimated_rows:.0f}")


@dataclass
class JoinNode:
    """Join of a left sub-plan with a base table (left-deep plans)."""

    left: "PlanNode"
    right: ScanNode
    fk: ForeignKey
    method: str = "hash"  # "hash" | "indexnl"
    estimated_rows: float = 0.0

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(sorted(self.left.tables + self.right.tables))

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        kind = "HashJoin" if self.method == "hash" else "IndexNLJoin"
        lines = [f"{pad}{kind}({self.fk.child}.{self.fk.fk_column} = "
                 f"{self.fk.parent}.pk) ≈{self.estimated_rows:.0f}"]
        lines.append(self.left.describe(indent + 1))
        lines.append(self.right.describe(indent + 1))
        return "\n".join(lines)


PlanNode = ScanNode | JoinNode


def plan_signature(plan: PlanNode) -> str:
    """Canonical structural key of a plan: join order, join methods and
    scan methods — *without* the estimated cardinalities.

    Two optimizers that chose the same physical plan from different
    estimates produce the same signature, which is exactly the equality
    "plan-choice agreement" metrics need (the annotated estimates are a
    debugging aid, not part of the plan's identity).
    """
    if isinstance(plan, ScanNode):
        return f"{plan.method}({plan.table})"
    return (f"{plan.method}[{plan.fk.child}.{plan.fk.fk_column}]"
            f"({plan_signature(plan.left)},{plan_signature(plan.right)})")


def plan_joins(plan: PlanNode) -> list[JoinNode]:
    """All join nodes of a plan, outermost first."""
    joins: list[JoinNode] = []
    node = plan
    while isinstance(node, JoinNode):
        joins.append(node)
        node = node.left
    return joins
