"""The PostgreSQL substitute: cost-based optimizer + columnar executor."""

from .plans import ScanNode, JoinNode, PlanNode, plan_joins, plan_signature
from .cost import CostModel
from .providers import (AdvisorProvider, CallableProvider,
                        CardinalityProvider, HistogramProvider,
                        ModelProvider, ProviderStats, TrueCardProvider,
                        as_provider)
from .optimizer import Optimizer, PlannedQuery
from .execution import Executor, ExecutionResult
from .e2e import TrueCardEstimator, E2EResult, recost_plan, run_e2e

__all__ = [
    "ScanNode", "JoinNode", "PlanNode", "plan_joins", "plan_signature",
    "CostModel", "Optimizer", "PlannedQuery",
    "CardinalityProvider", "ProviderStats", "TrueCardProvider",
    "HistogramProvider", "ModelProvider", "AdvisorProvider",
    "CallableProvider", "as_provider",
    "Executor", "ExecutionResult",
    "TrueCardEstimator", "E2EResult", "recost_plan", "run_e2e",
]
