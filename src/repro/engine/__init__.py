"""The PostgreSQL substitute: cost-based optimizer + columnar executor."""

from .plans import ScanNode, JoinNode, PlanNode, plan_joins
from .cost import CostModel
from .optimizer import Optimizer, PlannedQuery
from .execution import Executor, ExecutionResult
from .e2e import TrueCardEstimator, E2EResult, run_e2e

__all__ = [
    "ScanNode", "JoinNode", "PlanNode", "plan_joins",
    "CostModel", "Optimizer", "PlannedQuery",
    "Executor", "ExecutionResult",
    "TrueCardEstimator", "E2EResult", "run_e2e",
]
