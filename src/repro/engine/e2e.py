"""End-to-end latency harness (Sec. VII-D, Table V).

For every query: (1) the optimizer asks the CE model under test for the
cardinality of each connected sub-plan, (2) the cheapest plan is built from
those estimates, (3) the plan is executed for real.  Reported per workload:
total execution wall-clock ("running time") and total estimator wall-clock
("inference latency"), matching Table V's two components.

``TrueCardEstimator`` injects exact counts — the paper's "TrueCard" row,
the upper bound on what better cardinalities can buy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..ce.base import CEModel
from ..db.counting import count_join
from ..db.schema import Dataset
from ..workload.query import Query
from .execution import Executor
from .optimizer import Optimizer


class TrueCardEstimator(CEModel):
    """Oracle estimator: exact cardinalities via the counting substrate."""

    name = "TrueCard"

    def __init__(self, dataset: Dataset):
        self._dataset = dataset

    def fit(self, ctx) -> None:
        pass  # Nothing to learn.

    def estimate(self, query: Query) -> float:
        return float(count_join(self._dataset, query.tables,
                                query.predicate_tuples()))


@dataclass
class E2EResult:
    """Aggregate outcome of one (dataset, estimator) workload run."""

    estimator: str
    execution_time: float
    inference_time: float
    queries: int
    result_rows: int

    @property
    def total_time(self) -> float:
        return self.execution_time + self.inference_time


class _TimedEstimator:
    """Wraps an estimator, accumulating wall-clock spent estimating."""

    def __init__(self, model: CEModel):
        self.model = model
        self.elapsed = 0.0

    def __call__(self, query: Query) -> float:
        start = time.perf_counter()
        value = self.model.estimate(query)
        self.elapsed += time.perf_counter() - start
        return value


def run_e2e(dataset: Dataset, queries: list[Query], model: CEModel,
            repeats: int = 1) -> E2EResult:
    """Plan and execute a workload with cardinalities injected by ``model``."""
    optimizer = Optimizer(dataset)
    executor = Executor(dataset)
    timed = _TimedEstimator(model)
    execution_time = 0.0
    rows = 0
    for query in queries:
        planned = optimizer.plan(query, timed)
        for _ in range(repeats):
            outcome = executor.execute(planned.plan)
            execution_time += outcome.elapsed
            rows += outcome.rows
    inference = 0.0 if isinstance(model, TrueCardEstimator) else timed.elapsed
    return E2EResult(
        estimator=model.name,
        execution_time=execution_time,
        inference_time=inference,
        queries=len(queries),
        result_rows=rows,
    )
