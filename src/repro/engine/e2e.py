"""End-to-end latency harness (Sec. VII-D, Table V).

For every query: (1) the optimizer asks the provider under test for the
cardinality of each connected sub-plan, (2) the cheapest plan is built from
those estimates, (3) the plan is executed for real.  Reported per workload:
total execution wall-clock ("running time"), total estimator wall-clock
("inference latency") and the summed optimizer plan cost, matching Table
V's two components plus the plan-quality axis the closed-loop bench ranks
providers by.

Inference accounting is delegated to the provider layer: a provider whose
``counts_inference_time`` is False (the TrueCard oracle) reports zero —
the single statement of the rule that used to live as an ``isinstance``
check here and a name-string check in the Table V driver.

``TrueCardEstimator`` (the CEModel shape of the oracle) is kept for
callers that want an exact-count *estimator* rather than a provider;
:func:`~repro.engine.providers.as_provider` maps it onto
:class:`~repro.engine.providers.TrueCardProvider`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ce.base import CEModel
from ..db.counting import count_join
from ..db.schema import Dataset
from ..workload.query import Query
from .cost import CostModel
from .execution import Executor
from .optimizer import Optimizer, PlannedQuery
from .plans import PlanNode, ScanNode, plan_signature
from .providers import CardinalityProvider, as_provider


class TrueCardEstimator(CEModel):
    """Oracle estimator: exact cardinalities via the counting substrate."""

    name = "TrueCard"

    def __init__(self, dataset: Dataset):
        self.dataset = dataset

    def fit(self, ctx) -> None:
        pass  # Nothing to learn.

    def estimate(self, query: Query) -> float:
        return float(count_join(self.dataset, query.tables,
                                query.predicate_tuples()))


@dataclass
class E2EResult:
    """Aggregate outcome of one (dataset, provider) workload run."""

    estimator: str
    execution_time: float
    inference_time: float
    queries: int
    result_rows: int
    #: Summed optimizer objective of the chosen plans (cost-model units,
    #: under the provider's *own* estimates — see :func:`recost_plan` for
    #: the true-cardinality re-costing the closed-loop bench ranks by).
    plan_cost: float = 0.0
    #: The chosen plans, in query order (deterministic given the provider).
    plans: tuple[PlannedQuery, ...] = ()

    @property
    def total_time(self) -> float:
        return self.execution_time + self.inference_time

    @property
    def plan_signatures(self) -> tuple[str, ...]:
        """Structural signatures of the chosen plans (for agreement)."""
        return tuple(plan_signature(p.plan) for p in self.plans)


def run_e2e(dataset: Dataset, queries: list[Query],
            model: CardinalityProvider | CEModel | Callable[[Query], float],
            repeats: int = 1) -> E2EResult:
    """Plan and execute a workload with cardinalities from ``model``.

    ``model`` may be a provider, a fitted CE model or a bare callable;
    non-providers are coerced through :func:`as_provider`.  Inference
    latency is the provider's own accounting — calls served from the
    sub-plan memo cost nothing, and oracle providers report zero.
    """
    provider = as_provider(model)
    provider.reset_stats()
    optimizer = Optimizer(dataset)
    executor = Executor(dataset)
    execution_time = 0.0
    rows = 0
    plan_cost = 0.0
    plans: list[PlannedQuery] = []
    for query in queries:
        planned = optimizer.plan(query, provider)
        plans.append(planned)
        plan_cost += planned.cost
        for _ in range(repeats):
            outcome = executor.execute(planned.plan)
            execution_time += outcome.elapsed
            rows += outcome.rows
    return E2EResult(
        estimator=provider.name,
        execution_time=execution_time,
        inference_time=provider.inference_time,
        queries=len(queries),
        result_rows=rows,
        plan_cost=plan_cost,
        plans=tuple(plans),
    )


def recost_plan(plan: PlanNode, dataset: Dataset,
                provider: CardinalityProvider,
                cost_model: CostModel | None = None) -> float:
    """Cost a *fixed* plan under another provider's cardinalities.

    The plan-quality metric of the closed-loop bench: take the physical
    plan an estimator chose, keep its join order and operators, and
    re-price it with (typically true) cardinalities from ``provider``.
    An optimistic misestimate that seduced the optimizer into a bad join
    order shows up as a high *true* cost even though the plan's own
    annotated cost looked cheap.
    """
    cost_model = cost_model or CostModel()

    def sub_query(node: PlanNode) -> Query:
        predicates: list = []
        stack = [node]
        while stack:
            cursor = stack.pop()
            if isinstance(cursor, ScanNode):
                predicates.extend(cursor.predicates)
            else:
                stack.extend((cursor.left, cursor.right))
        return Query(node.tables, tuple(predicates))

    def rows_out(node: PlanNode) -> float:
        return max(1.0, float(provider.estimate(sub_query(node))))

    def scan_cost(node: ScanNode, out: float) -> float:
        table_rows = dataset[node.table].num_rows
        if node.method == "seq":
            return cost_model.seq_scan(table_rows, out)
        return cost_model.index_scan(table_rows, out)

    def walk(node: PlanNode) -> tuple[float, float]:
        """Returns (cost, output_rows) of ``node`` under the provider."""
        out = rows_out(node)
        if isinstance(node, ScanNode):
            return scan_cost(node, out), out
        left_cost, left_rows = walk(node.left)
        right_rows = rows_out(node.right)
        if node.method == "indexnl":
            return (left_cost
                    + cost_model.index_nl_join(left_rows, out), out)
        return (left_cost + scan_cost(node.right, right_rows)
                + cost_model.hash_join(left_rows, right_rows, out), out)

    cost, _ = walk(plan)
    return cost
