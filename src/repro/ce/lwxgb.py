"""LW-XGB: tree-ensemble cardinality regressor (Dutt et al., VLDB 2019).

Uses the flat range encoding of LW-NN with the from-scratch gradient-boosted
trees of :mod:`repro.ce.gbdt` (standing in for XGBoost, unavailable
offline).  Trees cannot extrapolate beyond training targets, which produces
the elevated Q-error the paper reports for this baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.query import Query
from .base import CEModel, TrainingContext, clip_card
from .gbdt import GradientBoostedTrees
from .targets import LogCardNormalizer


@dataclass
class LWXGBConfig:
    n_estimators: int = 30
    learning_rate: float = 0.3
    max_depth: int = 3
    seed: int = 0


class LWXGB(CEModel):
    name = "LW-XGB"
    query_driven = True

    def __init__(self, config: LWXGBConfig | None = None):
        self.config = config or LWXGBConfig()

    def fit(self, ctx: TrainingContext) -> None:
        self._encoder = ctx.encoder
        queries = ctx.workload.train
        features = self._encoder.encode_flat_batch(queries)
        cards = np.array([q.true_cardinality for q in queries], dtype=np.float64)
        self._normalizer = LogCardNormalizer().fit(cards)
        targets = self._normalizer.transform(cards)
        self._model = GradientBoostedTrees(
            n_estimators=self.config.n_estimators,
            learning_rate=self.config.learning_rate,
            max_depth=self.config.max_depth,
            seed=self.config.seed + ctx.seed,
        ).fit(features, targets)

    def estimate(self, query: Query) -> float:
        vec = self._encoder.encode_flat(query)[None, :]
        pred = self._model.predict(vec)[0]
        return clip_card(self._normalizer.inverse(np.array([pred]))[0])
