"""LW-NN: lightweight fully-connected estimator (Dutt et al., VLDB 2019).

Encodes a query as one flat vector of normalized selection ranges plus join
indicators and regresses normalized log cardinality with a small MLP.  Its
selling point — and the behaviour the paper's Table V reproduces — is
near-zero inference latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..utils.rng import rng_from_seed
from ..workload.query import Query
from .base import CEModel, TrainingContext, clip_card
from .targets import LogCardNormalizer


@dataclass
class LWNNConfig:
    hidden: int = 48
    epochs: int = 120
    batch_size: int = 64
    lr: float = 5e-3
    seed: int = 0


class LWNN(CEModel):
    name = "LW-NN"
    query_driven = True

    def __init__(self, config: LWNNConfig | None = None):
        self.config = config or LWNNConfig()

    def fit(self, ctx: TrainingContext) -> None:
        rng = rng_from_seed(self.config.seed + ctx.seed)
        self._encoder = ctx.encoder
        queries = ctx.workload.train
        features = self._encoder.encode_flat_batch(queries)
        cards = np.array([q.true_cardinality for q in queries], dtype=np.float64)
        self._normalizer = LogCardNormalizer().fit(cards)
        targets = self._normalizer.transform(cards).reshape(-1, 1)

        self._net = nn.MLP(
            [features.shape[1], self.config.hidden, self.config.hidden // 2, 1],
            rng, output_activation="sigmoid")
        optimizer = nn.Adam(self._net.parameters(), lr=self.config.lr)
        n = len(queries)
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.config.batch_size):
                idx = order[start:start + self.config.batch_size]
                pred = self._net(nn.Tensor(features[idx]))
                loss = nn.mse_loss(pred, targets[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self._net.eval()
        # Cache the weight matrices for a fast numpy-only inference path.
        self._weights = [(layer.weight.data, layer.bias.data)
                         for layer in self._net.layers]

    def estimate(self, query: Query) -> float:
        vec = self._encoder.encode_flat(query)
        for i, (w, b) in enumerate(self._weights):
            vec = vec @ w + b
            if i < len(self._weights) - 1:
                vec = np.maximum(vec, 0.0)
        pred = 1.0 / (1.0 + np.exp(-vec[0]))
        return clip_card(self._normalizer.inverse(np.array([pred]))[0])
