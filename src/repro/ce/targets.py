"""Target transformation shared by the query-driven regressors.

All query-driven models regress the *normalized log cardinality*, the
standard practice from the MSCN and lightweight-models papers: targets are
``log(card + 1)`` min–max normalized over the training workload, and
predictions are mapped back through the inverse transform.
"""

from __future__ import annotations

import numpy as np


class LogCardNormalizer:
    def __init__(self):
        self.log_min = 0.0
        self.log_max = 1.0

    def fit(self, cards: np.ndarray) -> "LogCardNormalizer":
        logs = np.log(np.asarray(cards, dtype=np.float64) + 1.0)
        if len(logs) == 0:
            self.log_min, self.log_max = 0.0, 1.0
            return self
        self.log_min = float(logs.min())
        self.log_max = float(logs.max())
        if self.log_max <= self.log_min:
            self.log_max = self.log_min + 1.0
        return self

    def transform(self, cards: np.ndarray) -> np.ndarray:
        logs = np.log(np.asarray(cards, dtype=np.float64) + 1.0)
        return (logs - self.log_min) / (self.log_max - self.log_min)

    def inverse(self, normalized: np.ndarray) -> np.ndarray:
        logs = np.asarray(normalized, dtype=np.float64) * (self.log_max - self.log_min)
        logs = logs + self.log_min
        return np.exp(np.clip(logs, 0.0, 60.0)) - 1.0
