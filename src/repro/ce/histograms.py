"""Per-column statistics used by the Postgres-style estimator and the SPN leaves."""

from __future__ import annotations

import numpy as np


class ValueHistogram:
    """Exact value-frequency histogram over an integer column.

    Integer domains in this reproduction are small (≤ a few hundred distinct
    values), so an exact histogram is both feasible and the most faithful
    leaf distribution for range-selectivity estimation.
    """

    def __init__(self, values: np.ndarray):
        if len(values) == 0:
            self.values = np.array([], dtype=np.int64)
            self.counts = np.array([], dtype=np.int64)
            self.total = 0
            return
        self.values, self.counts = np.unique(np.asarray(values, dtype=np.int64),
                                             return_counts=True)
        self.total = int(self.counts.sum())
        self._cum = np.concatenate(([0], np.cumsum(self.counts)))

    @property
    def num_distinct(self) -> int:
        return len(self.values)

    @property
    def min(self) -> int:
        return int(self.values[0]) if self.total else 0

    @property
    def max(self) -> int:
        return int(self.values[-1]) if self.total else 0

    def range_fraction(self, lo: int, hi: int) -> float:
        """P(lo <= X <= hi) under the empirical distribution."""
        if self.total == 0 or lo > hi:
            return 0.0
        left = int(np.searchsorted(self.values, lo, side="left"))
        right = int(np.searchsorted(self.values, hi, side="right"))
        return float(self._cum[right] - self._cum[left]) / self.total

    def mass_vector(self, lo: int, hi: int) -> np.ndarray:
        """Indicator (per distinct value) of membership in [lo, hi]."""
        return ((self.values >= lo) & (self.values <= hi)).astype(np.float64)


class BinnedHistogram:
    """Bounded-resolution histogram used as the SPN leaf distribution.

    Real systems bound per-column statistics (DeepDB's histogram leaves,
    NeuroCard's column factorization); modelling error inside a bin is what
    keeps learned data-driven estimators from being oracles.
    """

    def __init__(self, values: np.ndarray, max_bins: int = 14):
        from .discretize import Discretizer  # local import avoids a cycle

        self.discretizer = Discretizer(values, max_bins=max_bins)
        ids = self.discretizer.transform(values)
        counts = np.bincount(ids, minlength=self.discretizer.n_bins)
        total = max(1, counts.sum())
        self.probs = counts.astype(np.float64) / total

    def range_fraction(self, lo: int, hi: int) -> float:
        mass = self.discretizer.range_mass(lo, hi)
        return float(np.dot(self.probs, mass))


class EquiDepthHistogram:
    """Classic equi-depth histogram (the PostgreSQL ``histogram_bounds``)."""

    def __init__(self, values: np.ndarray, num_buckets: int = 32):
        values = np.sort(np.asarray(values, dtype=np.float64))
        self.total = len(values)
        if self.total == 0:
            self.bounds = np.array([0.0, 1.0])
            return
        quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
        self.bounds = np.quantile(values, quantiles)
        # Collapse duplicate bounds caused by heavy values.
        self.bounds = np.maximum.accumulate(self.bounds)

    @property
    def num_buckets(self) -> int:
        return len(self.bounds) - 1

    def range_fraction(self, lo: float, hi: float) -> float:
        """Selectivity of [lo, hi] assuming uniformity inside each bucket."""
        if self.total == 0 or lo > hi:
            return 0.0
        frac = 0.0
        per_bucket = 1.0 / self.num_buckets
        for b in range(self.num_buckets):
            b_lo, b_hi = self.bounds[b], self.bounds[b + 1]
            if b_hi < lo or b_lo > hi:
                continue
            width = b_hi - b_lo
            if width <= 0:
                # Degenerate bucket: a single heavy value.
                frac += per_bucket if lo <= b_lo <= hi else 0.0
                continue
            overlap = min(hi, b_hi) - max(lo, b_lo)
            frac += per_bucket * max(0.0, overlap) / width
        return min(1.0, frac)
