"""Gradient-boosted regression trees, from scratch.

A CPU re-implementation of the XGBoost-style regressor behind LW-XGB.  With
squared loss, second-order boosting reduces to fitting each tree to the
current residuals with variance-reduction splits, which is what we implement
(exact greedy splits over sorted feature values, depth- and leaf-size
bounded, shrinkage between rounds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """A single variance-reduction regression tree."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 3,
                 min_gain: float = 1e-9):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.root: TreeNode | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        self.root = self._build(X, y, depth=0)
        return self

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n, d = X.shape
        total_sum = y.sum()
        total_sq = float(((y - y.mean()) ** 2).sum())
        best = (None, None, 0.0)  # feature, threshold, gain
        for feature in range(d):
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            prefix = np.cumsum(ys)
            prefix_sq = np.cumsum(ys * ys)
            # Candidate splits only where the feature value changes.
            change = np.nonzero(np.diff(xs) > 0)[0]
            for cut in change:
                left_n = cut + 1
                right_n = n - left_n
                if left_n < self.min_samples_leaf or right_n < self.min_samples_leaf:
                    continue
                left_sum = prefix[cut]
                right_sum = total_sum - left_sum
                left_sse = prefix_sq[cut] - left_sum ** 2 / left_n
                right_sse = (prefix_sq[-1] - prefix_sq[cut]) - right_sum ** 2 / right_n
                gain = total_sq - (left_sse + right_sse)
                if gain > best[2] + self.min_gain:
                    threshold = 0.5 * (xs[cut] + xs[cut + 1])
                    best = (feature, threshold, gain)
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(value=float(y.mean()) if len(y) else 0.0)
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        feature, threshold, gain = self._best_split(X, y)
        if feature is None:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(len(X), dtype=np.float64)
        # Iterative traversal per row (trees are tiny: depth <= max_depth).
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Least-squares gradient boosting with shrinkage."""

    def __init__(self, n_estimators: int = 30, learning_rate: float = 0.3,
                 max_depth: int = 3, min_samples_leaf: int = 3,
                 subsample: float = 1.0, seed: int = 0):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.base_prediction = 0.0
        self.trees: list[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        rng = np.random.default_rng(self.seed)
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.base_prediction = float(y.mean()) if len(y) else 0.0
        current = np.full(len(y), self.base_prediction)
        self.trees = []
        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                size = max(2 * self.min_samples_leaf,
                           int(self.subsample * len(y)))
                idx = rng.choice(len(y), size=size, replace=False)
            else:
                idx = np.arange(len(y))
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(X[idx], residual[idx])
            self.trees.append(tree)
            current = current + self.learning_rate * tree.predict(X)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        out = np.full(len(X), self.base_prediction)
        for tree in self.trees:
            out += self.learning_rate * tree.predict(X)
        return out
