"""Chow–Liu tree-structured Bayesian networks (the BayesCard substrate).

Learns the maximum-mutual-information spanning tree over discretized
columns, stores Laplace-smoothed CPTs along tree edges, and answers
conjunctive box queries exactly by upward message passing.
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def mutual_information(a: np.ndarray, b: np.ndarray,
                       bins_a: int, bins_b: int) -> float:
    """Empirical mutual information between two discretized columns."""
    n = len(a)
    if n == 0:
        return 0.0
    joint = np.zeros((bins_a, bins_b))
    np.add.at(joint, (a, b), 1.0)
    joint /= n
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (pa * pb), 1.0)
        terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
    return float(terms.sum())


class ChowLiuTree:
    """Tree-structured Bayesian network over discretized columns."""

    def __init__(self, alpha: float = 0.1):
        self.alpha = alpha
        self.columns: list[str] = []
        self.n_bins: dict[str, int] = {}
        self.parent: dict[str, str | None] = {}
        self.children: dict[str, list[str]] = {}
        # CPTs: root -> vector P(x); edge child -> matrix P(child | parent)
        # with shape [parent_bins, child_bins].
        self.marginal: dict[str, np.ndarray] = {}
        self.cpt: dict[str, np.ndarray] = {}

    def fit(self, ids: dict[str, np.ndarray], n_bins: dict[str, int]) -> "ChowLiuTree":
        self.columns = list(ids)
        self.n_bins = dict(n_bins)
        n = len(next(iter(ids.values())))

        if len(self.columns) == 1:
            col = self.columns[0]
            self.parent = {col: None}
            self.children = {col: []}
            self.marginal[col] = self._smoothed_marginal(ids[col], n_bins[col])
            return self

        graph = nx.Graph()
        graph.add_nodes_from(self.columns)
        for i, a in enumerate(self.columns):
            for b in self.columns[i + 1:]:
                mi = mutual_information(ids[a], ids[b], n_bins[a], n_bins[b])
                graph.add_edge(a, b, weight=-mi)  # min spanning tree of -MI
        tree = nx.minimum_spanning_tree(graph)

        root = self.columns[0]
        self.parent = {root: None}
        self.children = {c: [] for c in self.columns}
        for parent, child in nx.bfs_edges(tree, root):
            self.parent[child] = parent
            self.children[parent].append(child)

        self.marginal[root] = self._smoothed_marginal(ids[root], n_bins[root])
        for child, parent in self.parent.items():
            if parent is None:
                continue
            self.cpt[child] = self._smoothed_conditional(
                ids[parent], ids[child], n_bins[parent], n_bins[child])
        return self

    # ------------------------------------------------------------------
    def _smoothed_marginal(self, values: np.ndarray, bins: int) -> np.ndarray:
        counts = np.bincount(values, minlength=bins).astype(np.float64)
        counts += self.alpha
        return counts / counts.sum()

    def _smoothed_conditional(self, parent: np.ndarray, child: np.ndarray,
                              parent_bins: int, child_bins: int) -> np.ndarray:
        joint = np.full((parent_bins, child_bins), self.alpha)
        np.add.at(joint, (parent, child), 1.0)
        return joint / joint.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    def query_probability(self, allowed: dict[str, np.ndarray]) -> float:
        """P(∧ columns in allowed masses) by upward message passing.

        ``allowed[col]`` is a per-bin coverage vector in [0, 1]; columns
        missing from ``allowed`` are unconstrained.
        """
        root = next(c for c, p in self.parent.items() if p is None)

        def message(node: str) -> np.ndarray:
            mass = allowed.get(node, np.ones(self.n_bins[node]))
            vector = np.asarray(mass, dtype=np.float64).copy()
            for child in self.children[node]:
                child_message = message(child)
                vector *= self.cpt[child] @ child_message
            return vector

        return float(np.dot(self.marginal[root], message(root)))
