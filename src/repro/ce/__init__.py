"""Cardinality estimation model zoo.

Seven learned candidate models (MSCN, LW-NN, LW-XGB, DeepDB, BayesCard,
NeuroCard, UAE) plus the Postgres histogram baseline and a weighted
Ensemble, all implemented from scratch on numpy.
"""

from .base import CEModel, TrainingContext, clip_card
from .postgres import PostgresEstimator
from .mscn import MSCN, MSCNConfig
from .lwnn import LWNN, LWNNConfig
from .lwxgb import LWXGB, LWXGBConfig
from .gbdt import GradientBoostedTrees, RegressionTree
from .deepdb import DeepDB, DeepDBConfig
from .bayescard import BayesCard, BayesCardConfig
from .neurocard import NeuroCard, NeuroCardConfig
from .uae import UAE, UAEConfig
from .ensemble import EnsembleCE
from .fspn import FLAT, FLATConfig, MultiLeaf, build_fspn
from .made import MADE
from .spn import build_spn, SPNConfig
from .chow_liu import ChowLiuTree, mutual_information
from .discretize import Discretizer
from .histograms import ValueHistogram, EquiDepthHistogram
from .registry import (
    CANDIDATE_MODELS, QUERY_DRIVEN_MODELS, DATA_DRIVEN_MODELS, HYBRID_MODELS,
    register, available_models, build_model, build_models,
)

__all__ = [
    "CEModel", "TrainingContext", "clip_card",
    "PostgresEstimator", "MSCN", "MSCNConfig", "LWNN", "LWNNConfig",
    "LWXGB", "LWXGBConfig", "GradientBoostedTrees", "RegressionTree",
    "DeepDB", "DeepDBConfig", "BayesCard", "BayesCardConfig",
    "NeuroCard", "NeuroCardConfig", "UAE", "UAEConfig", "EnsembleCE",
    "FLAT", "FLATConfig", "MultiLeaf", "build_fspn",
    "MADE", "build_spn", "SPNConfig", "ChowLiuTree", "mutual_information",
    "Discretizer", "ValueHistogram", "EquiDepthHistogram",
    "CANDIDATE_MODELS", "QUERY_DRIVEN_MODELS", "DATA_DRIVEN_MODELS",
    "HYBRID_MODELS", "register", "available_models", "build_model",
    "build_models",
]
