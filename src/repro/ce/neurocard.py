"""NeuroCard: deep autoregressive CE with progressive sampling (Yang et al.).

One MADE model per join template over discretized columns; conjunctive range
queries are answered by *progressive sampling*: columns are processed in
autoregressive order, each constrained column contributes the conditional
probability mass inside its range, and the next value is sampled from the
restricted conditional.  The selectivity is the mean product of the masses
across sample paths — an unbiased estimator of P(∧ ranges).

This is deliberately the slowest estimator in the zoo (one network forward
per column per query), reproducing the latency ordering of the paper's
Fig. 1(c) and Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import rng_from_seed
from ..workload.query import Query
from .discretize import Discretizer
from .made import MADE
from .template_base import TemplateModel


@dataclass
class NeuroCardConfig:
    max_bins: int = 12
    hidden: int = 48
    epochs: int = 12
    batch_size: int = 256
    lr: float = 5e-3
    num_samples: int = 64
    seed: int = 0


class _FittedMade:
    def __init__(self, made: MADE, discretizers: list[Discretizer],
                 column_names: list[str]):
        self.made = made
        self.discretizers = discretizers
        self.column_names = column_names


class NeuroCard(TemplateModel):
    name = "NeuroCard"

    def __init__(self, config: NeuroCardConfig | None = None):
        super().__init__()
        self.config = config or NeuroCardConfig()
        self._rng = rng_from_seed(self.config.seed)

    def _fit_template(self, template, columns, join_size):
        names = list(columns)
        discretizers = [Discretizer(columns[c], self.config.max_bins) for c in names]
        ids = np.stack([d.transform(columns[c])
                        for d, c in zip(discretizers, names)], axis=1)
        made = MADE([d.n_bins for d in discretizers], hidden=self.config.hidden,
                    seed=self.config.seed)
        made.fit(ids, epochs=self.config.epochs, batch_size=self.config.batch_size,
                 lr=self.config.lr, seed=self.config.seed + 1)
        return _FittedMade(made, discretizers, names)

    # ------------------------------------------------------------------
    def _progressive_sample(self, fitted: _FittedMade,
                            allowed: list[np.ndarray | None]) -> float:
        """Unbiased estimate of P(∧ allowed) via progressive sampling."""
        made = fitted.made
        samples = self.config.num_samples
        x = np.zeros((samples, made.input_dim), dtype=np.float64)
        weights = np.ones(samples, dtype=np.float64)
        for col, mass in enumerate(allowed):
            probs = made.conditional_probs(x, col)
            if mass is not None:
                restricted = probs * mass[None, :]
                col_mass = restricted.sum(axis=1)
                weights *= col_mass
                # Dead paths: keep them (weight 0) but sample uniformly so the
                # one-hot stays valid.
                safe = np.where(col_mass[:, None] > 0,
                                restricted / np.maximum(col_mass[:, None], 1e-30),
                                np.full_like(probs, 1.0 / probs.shape[1]))
            else:
                safe = probs
            # Vectorized categorical sampling per row.
            cdf = np.cumsum(safe, axis=1)
            draws = self._rng.random(samples)[:, None]
            chosen = (draws > cdf).sum(axis=1)
            chosen = np.minimum(chosen, probs.shape[1] - 1)
            offset = made.offsets[col]
            x[np.arange(samples), offset + chosen] = 1.0
        return float(weights.mean())

    def _allowed_masses(self, fitted: _FittedMade,
                        query: Query) -> list[np.ndarray | None]:
        ranges = self._ranges(query)
        allowed: list[np.ndarray | None] = []
        for name, discretizer in zip(fitted.column_names, fitted.discretizers):
            bounds = ranges.get(name)
            if bounds is None:
                allowed.append(None)
            else:
                allowed.append(discretizer.range_mass(bounds[0], bounds[1]))
        return allowed

    def _template_selectivity(self, model: _FittedMade, template,
                              query: Query) -> float:
        allowed = self._allowed_masses(model, query)
        if all(a is None for a in allowed):
            return 1.0
        return self._progressive_sample(model, allowed)
