"""FLAT: factorize-split-sum networks for cardinality estimation.

Implements the FSPN estimator of Zhu et al. (VLDB 2021) — reference [54]
of the AutoCE paper — as an eighth candidate model, exercising the paper's
extensibility claim (Sec. IV-B1: "any newly-emerged CE model ... can be
readily incorporated").

An FSPN refines the classic SPN structure with a *factorize* operation:
highly-correlated column groups are split off and modeled **jointly** by a
multi-dimensional histogram (a *multi-leaf*), while the weakly-correlated
remainder is modeled SPN-style (row-split sum nodes over independent
products of univariate leaves).  Joint modeling of exactly the columns
where the independence assumption breaks is what gives FLAT its
accuracy/latency profile: histogram lookups are fast, and correlation
error is paid only where correlation exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import rng_from_seed
from ..workload.query import Query
from .discretize import Discretizer
from .spn import LeafNode, ProductNode, SumNode, _column_groups, _two_means
from .template_base import TemplateModel


@dataclass
class FLATConfig:
    """Structure-learning knobs for the FSPN builder."""

    #: |corr| above which columns are modeled jointly by a multi-leaf.
    high_threshold: float = 0.55
    #: |corr| above which weakly-correlated columns trigger a row split.
    low_threshold: float = 0.1
    #: Largest column group one multi-leaf may cover.
    max_group: int = 3
    #: Per-dimension bins of a multi-leaf (total cells ≤ bins_per_dim^max_group).
    bins_per_dim: int = 8
    max_leaf_bins: int = 14
    min_rows: int = 24
    max_depth: int = 10
    kmeans_iterations: int = 8
    seed: int = 0


class MultiLeaf:
    """Joint bounded-resolution histogram over a highly-correlated group.

    Each column is discretized independently; the joint probability table
    over the bin ids captures the cross-column correlation exactly at bin
    resolution.  Conjunctive-range probability is the contraction of the
    table with the per-dimension range-coverage vectors.
    """

    def __init__(self, columns: dict[str, np.ndarray], bins_per_dim: int = 8):
        if not columns:
            raise ValueError("MultiLeaf needs at least one column")
        self.names = list(columns)
        self.discretizers = [Discretizer(columns[c], max_bins=bins_per_dim)
                             for c in self.names]
        shape = tuple(d.n_bins for d in self.discretizers)
        ids = [d.transform(columns[c])
               for d, c in zip(self.discretizers, self.names)]
        flat = np.ravel_multi_index(ids, shape)
        counts = np.bincount(flat, minlength=int(np.prod(shape)))
        total = max(1, counts.sum())
        self.table = counts.reshape(shape).astype(np.float64) / total

    def probability(self, ranges: dict[str, tuple[int, int]]) -> float:
        result = self.table
        # Contract dimensions from the last to the first so earlier axis
        # indices stay valid while later axes are summed out.
        for axis in range(len(self.names) - 1, -1, -1):
            bounds = ranges.get(self.names[axis])
            if bounds is None:
                mass = self.discretizers[axis].full_mass()
            else:
                mass = self.discretizers[axis].range_mass(bounds[0], bounds[1])
            result = np.tensordot(result, mass, axes=([axis], [0]))
        return float(np.clip(result, 0.0, 1.0))

    def size(self) -> int:
        return 1


class FactorizeNode:
    """FLAT's factorize operation: P(H, W) = P(H) · P(W).

    ``H`` is the union of highly-correlated groups (each a multi-leaf) and
    ``W`` the weakly-correlated remainder (an SPN-style subtree).  The
    groups are chosen so that every strong pairwise dependency lands
    *inside* one multi-leaf, making the cross-factor independence
    assumption accurate by construction.
    """

    def __init__(self, joint_children: list[MultiLeaf], rest):
        self.joint_children = joint_children
        self.rest = rest

    def probability(self, ranges: dict[str, tuple[int, int]]) -> float:
        prob = 1.0
        for child in self.joint_children:
            prob *= child.probability(ranges)
            if prob == 0.0:
                return 0.0
        if self.rest is not None:
            prob *= self.rest.probability(ranges)
        return prob

    def size(self) -> int:
        rest = self.rest.size() if self.rest is not None else 0
        return 1 + sum(c.size() for c in self.joint_children) + rest


def _correlation_matrix(matrix: np.ndarray) -> np.ndarray:
    """Absolute Pearson correlation with zero-variance columns masked out."""
    std = matrix.std(axis=0)
    safe = np.where(std == 0, 1.0, std)
    centered = (matrix - matrix.mean(axis=0)) / safe
    corr = np.abs(centered.T @ centered) / max(1, len(matrix))
    corr[std == 0, :] = 0.0
    corr[:, std == 0] = 0.0
    np.fill_diagonal(corr, 0.0)
    return corr


def _split_group(group: list[int], corr: np.ndarray, max_group: int) -> list[list[int]]:
    """Chunk an oversized correlated component into groups of ≤ max_group.

    Greedy: repeatedly seed a chunk with the strongest remaining edge and
    grow it by the column most correlated with the chunk.
    """
    remaining = set(group)
    chunks: list[list[int]] = []
    while remaining:
        if len(remaining) <= max_group:
            chunks.append(sorted(remaining))
            break
        pool = sorted(remaining)
        sub = corr[np.ix_(pool, pool)]
        i, j = np.unravel_index(int(np.argmax(sub)), sub.shape)
        chunk = {pool[i], pool[j]}
        while len(chunk) < max_group:
            candidates = [c for c in pool if c not in chunk]
            if not candidates:
                break
            best = max(candidates,
                       key=lambda c: max(corr[c, m] for m in chunk))
            chunk.add(best)
        chunks.append(sorted(chunk))
        remaining -= chunk
    return chunks


def _build_weak(columns: dict[str, np.ndarray], config: FLATConfig,
                depth: int, rng: np.random.Generator):
    """SPN-style subtree over the weakly-correlated remainder."""
    names = list(columns)
    if len(names) == 1:
        return LeafNode(names[0], columns[names[0]], config.max_leaf_bins)
    n = len(columns[names[0]])
    if n < config.min_rows or depth >= config.max_depth:
        return ProductNode(
            [LeafNode(c, columns[c], config.max_leaf_bins) for c in names])

    matrix = np.stack([columns[c] for c in names], axis=1).astype(np.float64)
    groups = _column_groups(matrix, config.low_threshold)
    if len(groups) > 1:
        children = []
        for group in groups:
            sub = {names[i]: columns[names[i]] for i in group}
            children.append(_build_weak(sub, config, depth + 1, rng))
        return ProductNode(children)

    # Residual weak correlation: absorb it with a row split, as FLAT does
    # when factorization alone cannot reach independence.
    assign = _two_means(matrix, rng, config.kmeans_iterations)
    children, weights = [], []
    for mask in (~assign, assign):
        count = int(mask.sum())
        if count == 0:
            continue
        sub = {c: columns[c][mask] for c in names}
        weights.append(count)
        children.append(_build_weak(sub, config, depth + 1, rng))
    if len(children) == 1:
        return children[0]
    return SumNode(weights, children)


def build_fspn(columns: dict[str, np.ndarray], config: FLATConfig | None = None):
    """Learn an FSPN over the given column sample.

    Returns a node with a ``probability(ranges)`` method, where ``ranges``
    maps column names to inclusive ``(lo, hi)`` bounds.
    """
    config = config or FLATConfig()
    names = list(columns)
    if not names:
        raise ValueError("cannot build an FSPN over zero columns")
    rng = rng_from_seed(config.seed)
    if len(names) == 1:
        return LeafNode(names[0], columns[names[0]], config.max_leaf_bins)

    matrix = np.stack([columns[c] for c in names], axis=1).astype(np.float64)
    corr = _correlation_matrix(matrix)

    # Highly-correlated components of the correlation graph become joint
    # multi-leaves; everything else is the weakly-correlated remainder.
    adjacency = corr > config.high_threshold
    components = _column_groups(matrix, config.high_threshold) if adjacency.any() else []
    joint_groups: list[list[int]] = []
    in_joint: set[int] = set()
    for component in components:
        if len(component) < 2:
            continue
        for chunk in _split_group(component, corr, config.max_group):
            if len(chunk) >= 2:
                joint_groups.append(chunk)
                in_joint.update(chunk)

    if not joint_groups:
        return _build_weak(columns, config, 0, rng)

    joint_children = [
        MultiLeaf({names[i]: columns[names[i]] for i in group},
                  bins_per_dim=config.bins_per_dim)
        for group in joint_groups
    ]
    weak_names = [c for i, c in enumerate(names) if i not in in_joint]
    rest = None
    if weak_names:
        rest = _build_weak({c: columns[c] for c in weak_names}, config, 0, rng)
    return FactorizeNode(joint_children, rest)


class FLAT(TemplateModel):
    """FLAT estimator: one FSPN per join template (see module docstring)."""

    name = "FLAT"

    def __init__(self, config: FLATConfig | None = None):
        super().__init__()
        self.config = config or FLATConfig()

    def _fit_template(self, template, columns, join_size):
        return build_fspn(columns, self.config)

    def _template_selectivity(self, model, template, query: Query) -> float:
        return model.probability(self._ranges(query))
