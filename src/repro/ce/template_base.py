"""Per-join-template fitting shared by the data-driven estimators.

Data-driven models in this reproduction (DeepDB, BayesCard, NeuroCard, UAE)
learn one joint distribution per *join template* of the workload, from a
shared uniform sample of the template's join result — the ensemble-per-join
strategy of DeepDB's RSPNs (see DESIGN.md for the substitution note on
NeuroCard's single-model fanout scaling).  Templates not seen during
:meth:`fit` are fitted lazily on demand (e.g. sub-plans enumerated by the
query optimizer), which mirrors DeepDB's on-demand ensemble extension.
"""

from __future__ import annotations

import numpy as np

from ..workload.query import Query
from .base import CEModel, TrainingContext, clip_card


class TemplateModel(CEModel):
    """Base class managing one sub-model per join template."""

    data_driven = True

    def __init__(self):
        self._models: dict[tuple[str, ...], object] = {}
        self._sizes: dict[tuple[str, ...], int] = {}
        self._ctx: TrainingContext | None = None

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def _fit_template(self, template: tuple[str, ...],
                      columns: dict[str, np.ndarray], join_size: int) -> object:
        raise NotImplementedError  # pragma: no cover - abstract

    def _template_selectivity(self, model: object, template: tuple[str, ...],
                              query: Query) -> float:
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    #: Smallest per-template sample regardless of how thin the budget gets.
    MIN_TEMPLATE_SAMPLE = 120

    def fit(self, ctx: TrainingContext) -> None:
        self._ctx = ctx
        self._models.clear()
        self._sizes.clear()
        templates = ctx.workload.templates
        # The total sample budget is *shared* across join templates: a model
        # of fixed capacity has to spread over the joint spaces of every
        # template it serves.  This is what makes data-driven models lose
        # ground on many-table datasets (the paper's Fig. 1(a) regime).
        self._per_template_budget = max(
            self.MIN_TEMPLATE_SAMPLE, ctx.sample_size // max(1, len(templates)))
        for template in templates:
            self.prepare_template(tuple(sorted(template)))

    def prepare_template(self, template: tuple[str, ...]) -> None:
        template = tuple(sorted(template))
        if template in self._models or self._ctx is None:
            return
        budget = getattr(self, "_per_template_budget", self._ctx.sample_size)
        columns, size = self._ctx.samples.sample(
            template, budget, seed=self._ctx.seed)
        self._sizes[template] = size
        if not columns or size == 0:
            self._models[template] = None
            return
        self._models[template] = self._fit_template(template, columns, size)

    def prepare_templates(self, templates: list[tuple[str, ...]]) -> None:
        for template in templates:
            self.prepare_template(template)

    # ------------------------------------------------------------------
    def _ranges(self, query: Query) -> dict[str, tuple[int, int]]:
        """Conjunctive ranges keyed by qualified column name.

        Multiple predicates on the same column are intersected.
        """
        ranges: dict[str, tuple[int, int]] = {}
        for pred in query.predicates:
            key = f"{pred.table}.{pred.column}"
            if key in ranges:
                lo, hi = ranges[key]
                ranges[key] = (max(lo, pred.lo), min(hi, pred.hi))
            else:
                ranges[key] = (pred.lo, pred.hi)
        return ranges

    def estimate(self, query: Query) -> float:
        template = query.template
        if template not in self._models:
            self.prepare_template(template)
        model = self._models.get(template)
        size = self._sizes.get(template, 0)
        if model is None or size == 0:
            return clip_card(float(size))
        selectivity = self._template_selectivity(model, template, query)
        return clip_card(selectivity * size, upper=None)
