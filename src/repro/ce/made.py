"""MADE: masked autoregressive density estimator over discretized columns.

The deep autoregressive substrate behind NeuroCard and UAE.  Columns are
one-hot encoded and concatenated; two masked hidden layers enforce the
autoregressive property (output block *i* depends only on input blocks
``< i``), so the network factorizes the joint as ∏ᵢ P(xᵢ | x₍<ᵢ₎).
Training minimizes the exact negative log-likelihood; inference exposes the
per-column conditional distributions needed for progressive sampling.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..utils.rng import rng_from_seed


def _build_masks(bins: list[int], hidden: int, rng: np.random.Generator):
    """MADE connectivity masks for [input -> hidden -> hidden -> output]."""
    n_cols = len(bins)
    input_dim = int(sum(bins))
    # Degree of each input unit = 1-based index of its column.
    in_degrees = np.concatenate([
        np.full(b, i + 1, dtype=np.int64) for i, b in enumerate(bins)
    ])
    max_degree = max(1, n_cols - 1)
    hidden_degrees1 = 1 + (np.arange(hidden) % max_degree)
    hidden_degrees2 = 1 + (np.arange(hidden) % max_degree)
    out_degrees = np.concatenate([
        np.full(b, i + 1, dtype=np.int64) for i, b in enumerate(bins)
    ])
    mask1 = (hidden_degrees1[None, :] >= in_degrees[:, None]).astype(np.float64)
    mask2 = (hidden_degrees2[None, :] >= hidden_degrees1[:, None]).astype(np.float64)
    mask3 = (out_degrees[None, :] > hidden_degrees2[:, None]).astype(np.float64)
    return mask1, mask2, mask3


class MADE(nn.Module):
    """Masked autoregressive network over one-hot encoded columns."""

    def __init__(self, bins: list[int], hidden: int = 48,
                 seed: int | np.random.Generator = 0):
        super().__init__()
        rng = rng_from_seed(seed)
        self.bins = list(bins)
        self.offsets = np.concatenate(([0], np.cumsum(self.bins))).astype(np.int64)
        self.input_dim = int(self.offsets[-1])
        mask1, mask2, mask3 = _build_masks(self.bins, hidden, rng)
        self.layer1 = nn.MaskedLinear(self.input_dim, hidden, rng, mask1)
        self.layer2 = nn.MaskedLinear(hidden, hidden, rng, mask2)
        self.layer3 = nn.MaskedLinear(hidden, self.input_dim, rng, mask3)

    # ------------------------------------------------------------------
    def one_hot(self, ids: np.ndarray) -> np.ndarray:
        """One-hot encode integer bin ids of shape [n, n_cols]."""
        n = len(ids)
        out = np.zeros((n, self.input_dim), dtype=np.float64)
        for col, (offset, width) in enumerate(zip(self.offsets[:-1], self.bins)):
            out[np.arange(n), offset + ids[:, col]] = 1.0
        return out

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h = self.layer1(x).relu()
        h = self.layer2(h).relu()
        return self.layer3(h)

    def nll(self, x: nn.Tensor, ids: np.ndarray) -> nn.Tensor:
        """Mean negative log-likelihood of the batch."""
        logits = self.forward(x)
        total = None
        for col, (offset, width) in enumerate(zip(self.offsets[:-1], self.bins)):
            block = logits[:, offset:offset + width]
            col_nll = nn.nll_from_logits(block, ids[:, col])
            total = col_nll if total is None else total + col_nll
        return total * (1.0 / len(ids))

    # ------------------------------------------------------------------
    def fit(self, ids: np.ndarray, epochs: int = 15, batch_size: int = 256,
            lr: float = 5e-3, seed: int | np.random.Generator = 0) -> list[float]:
        """Train on integer bin ids [n, n_cols]; returns per-epoch mean NLL."""
        rng = rng_from_seed(seed)
        optimizer = nn.Adam(self.parameters(), lr=lr)
        n = len(ids)
        history = []
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_nll = 0.0
            for start in range(0, n, batch_size):
                batch_ids = ids[order[start:start + batch_size]]
                x = nn.Tensor(self.one_hot(batch_ids))
                loss = self.nll(x, batch_ids)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_nll += loss.item() * len(batch_ids)
            history.append(epoch_nll / n)
        self.eval()
        self._cache_weights()
        return history

    # ------------------------------------------------------------------
    # Fast numpy-only inference path
    # ------------------------------------------------------------------
    def _cache_weights(self) -> None:
        self._w1 = self.layer1.weight.data * self.layer1.mask.data
        self._b1 = self.layer1.bias.data
        self._w2 = self.layer2.weight.data * self.layer2.mask.data
        self._b2 = self.layer2.bias.data
        self._w3 = self.layer3.weight.data * self.layer3.mask.data
        self._b3 = self.layer3.bias.data

    def _forward_numpy(self, x: np.ndarray) -> np.ndarray:
        h = np.maximum(x @ self._w1 + self._b1, 0.0)
        h = np.maximum(h @ self._w2 + self._b2, 0.0)
        return h @ self._w3 + self._b3

    def conditional_probs(self, x_partial: np.ndarray, col: int) -> np.ndarray:
        """P(x_col | x_<col) for a batch of partially-filled one-hot rows.

        Thanks to the autoregressive masks, blocks ≥ ``col`` of the input may
        be zero-filled without changing the result.
        """
        logits = self._forward_numpy(x_partial)
        offset, width = self.offsets[col], self.bins[col]
        block = logits[:, offset:offset + width]
        block = block - block.max(axis=1, keepdims=True)
        exp = np.exp(block)
        return exp / exp.sum(axis=1, keepdims=True)
