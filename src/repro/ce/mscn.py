"""MSCN: multi-set convolutional network (Kipf et al., CIDR 2019).

A query is encoded as three sets — tables, joins, predicates.  Each set
element passes through a per-set MLP, elements are masked-average-pooled,
the pooled vectors are concatenated and a final MLP regresses the normalized
log cardinality.  This is the paper's query-driven baseline (1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..utils.rng import rng_from_seed
from ..workload.query import Query
from .base import CEModel, TrainingContext, clip_card
from .targets import LogCardNormalizer


@dataclass
class MSCNConfig:
    hidden: int = 32
    epochs: int = 80
    batch_size: int = 64
    lr: float = 5e-3
    seed: int = 0


class _SetBranch(nn.Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.mlp = nn.MLP([in_dim, hidden, hidden], rng)

    def forward(self, feats: nn.Tensor, mask: np.ndarray) -> nn.Tensor:
        # feats: [B, S, D], mask: [B, S]
        hidden = self.mlp(feats)
        mask_t = nn.Tensor(mask[:, :, None])
        pooled = (hidden * mask_t).sum(axis=1)
        denom = nn.Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        return pooled / denom


class _MSCNNet(nn.Module):
    def __init__(self, table_dim: int, join_dim: int, pred_dim: int,
                 hidden: int, rng):
        super().__init__()
        self.tables = _SetBranch(table_dim, hidden, rng)
        self.joins = _SetBranch(join_dim, hidden, rng)
        self.preds = _SetBranch(pred_dim, hidden, rng)
        self.head = nn.MLP([3 * hidden, hidden, 1], rng, output_activation="sigmoid")

    def forward(self, tables, joins, preds) -> nn.Tensor:
        pooled = nn.concatenate([
            self.tables(nn.Tensor(tables[0]), tables[1]),
            self.joins(nn.Tensor(joins[0]), joins[1]),
            self.preds(nn.Tensor(preds[0]), preds[1]),
        ], axis=1)
        return self.head(pooled)


class MSCN(CEModel):
    name = "MSCN"
    query_driven = True

    def __init__(self, config: MSCNConfig | None = None):
        self.config = config or MSCNConfig()

    def fit(self, ctx: TrainingContext) -> None:
        rng = rng_from_seed(self.config.seed + ctx.seed)
        self._encoder = ctx.encoder
        queries = ctx.workload.train
        cards = np.array([q.true_cardinality for q in queries], dtype=np.float64)
        self._normalizer = LogCardNormalizer().fit(cards)
        targets = self._normalizer.transform(cards)

        tables, joins, preds = self._encoder.encode_sets_batch(queries)
        self._max_tables = tables[0].shape[1]
        self._max_joins = joins[0].shape[1]
        self._max_preds = preds[0].shape[1]

        self._net = _MSCNNet(tables[0].shape[2], joins[0].shape[2],
                             preds[0].shape[2], self.config.hidden, rng)
        optimizer = nn.Adam(self._net.parameters(), lr=self.config.lr)
        n = len(queries)
        target_t = targets.reshape(-1, 1)
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.config.batch_size):
                idx = order[start:start + self.config.batch_size]
                batch = (
                    (tables[0][idx], tables[1][idx]),
                    (joins[0][idx], joins[1][idx]),
                    (preds[0][idx], preds[1][idx]),
                )
                pred = self._net(*batch)
                loss = nn.mse_loss(pred, target_t[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self._net.eval()

    def estimate(self, query: Query) -> float:
        sets = self._encoder.encode_sets(query, self._max_tables,
                                         self._max_joins, self._max_preds)
        batch = tuple((feats[None, :, :], mask[None, :]) for feats, mask in sets)
        with nn.no_grad():
            pred = self._net(*batch).numpy()[0, 0]
        return clip_card(self._normalizer.inverse(np.array([pred]))[0])
