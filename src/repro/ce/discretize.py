"""Column discretization shared by the BayesCard and NeuroCard/UAE models.

Maps integer columns to a bounded number of bins.  When a column has few
distinct values each value gets its own bin (exact); otherwise equi-width
bins are used and range predicates receive fractional coverage of the edge
bins under a within-bin uniformity assumption.
"""

from __future__ import annotations

import numpy as np


class Discretizer:
    """Bin mapping for one integer column."""

    def __init__(self, values: np.ndarray, max_bins: int = 16):
        values = np.asarray(values, dtype=np.int64)
        if len(values) == 0:
            values = np.array([0], dtype=np.int64)
        unique = np.unique(values)
        if len(unique) <= max_bins:
            self.kind = "value"
            self.values = unique
            self.n_bins = len(unique)
        else:
            self.kind = "width"
            lo, hi = int(unique[0]), int(unique[-1])
            self.edges = np.linspace(lo, hi + 1, max_bins + 1)
            self.n_bins = max_bins

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if self.kind == "value":
            ids = np.searchsorted(self.values, values)
            ids = np.clip(ids, 0, self.n_bins - 1)
            return ids
        ids = np.searchsorted(self.edges, values, side="right") - 1
        return np.clip(ids, 0, self.n_bins - 1)

    def range_mass(self, lo: int, hi: int) -> np.ndarray:
        """Per-bin coverage fraction of the inclusive range [lo, hi]."""
        if lo > hi:
            return np.zeros(self.n_bins)
        if self.kind == "value":
            return ((self.values >= lo) & (self.values <= hi)).astype(np.float64)
        coverage = np.zeros(self.n_bins)
        for b in range(self.n_bins):
            b_lo, b_hi = self.edges[b], self.edges[b + 1]
            width = b_hi - b_lo
            overlap = min(hi + 1, b_hi) - max(lo, b_lo)
            if width > 0:
                coverage[b] = np.clip(overlap / width, 0.0, 1.0)
        return coverage

    def full_mass(self) -> np.ndarray:
        return np.ones(self.n_bins)
