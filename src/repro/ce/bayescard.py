"""BayesCard: Bayesian-network cardinality estimation (Wu et al., 2020).

One Chow–Liu tree per join template over discretized columns; conjunctive
range queries are answered by exact tree inference and scaled by the
template's join size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.query import Query
from .chow_liu import ChowLiuTree
from .discretize import Discretizer
from .template_base import TemplateModel


@dataclass
class BayesCardConfig:
    #: BayesCard runs exact inference over (near) full-domain CPTs — large
    #: bins make it sharp where samples are plentiful (single tables) and
    #: noisy where they are not (many-template multi-table datasets), at a
    #: real inference cost.
    max_bins: int = 64
    alpha: float = 0.05
    seed: int = 0


class _FittedTree:
    def __init__(self, tree: ChowLiuTree, discretizers: dict[str, Discretizer]):
        self.tree = tree
        self.discretizers = discretizers


class BayesCard(TemplateModel):
    name = "BayesCard"

    def __init__(self, config: BayesCardConfig | None = None):
        super().__init__()
        self.config = config or BayesCardConfig()

    def _fit_template(self, template, columns, join_size):
        discretizers = {col: Discretizer(values, self.config.max_bins)
                        for col, values in columns.items()}
        ids = {col: discretizers[col].transform(values)
               for col, values in columns.items()}
        n_bins = {col: discretizers[col].n_bins for col in columns}
        tree = ChowLiuTree(alpha=self.config.alpha).fit(ids, n_bins)
        return _FittedTree(tree, discretizers)

    def _template_selectivity(self, model: _FittedTree, template,
                              query: Query) -> float:
        allowed = {}
        for col, (lo, hi) in self._ranges(query).items():
            discretizer = model.discretizers.get(col)
            if discretizer is None:
                continue
            allowed[col] = discretizer.range_mass(lo, hi)
        return model.tree.query_probability(allowed)
