"""Sum-product networks for cardinality estimation (the DeepDB substrate).

A classic SPN structure learner: columns are split into independent groups
via pairwise correlation (product nodes), rows are split via 2-means
clustering (sum nodes), and leaves are exact value histograms.  Probability
of a conjunctive range query is evaluated recursively in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import rng_from_seed
from .histograms import BinnedHistogram


@dataclass
class SPNConfig:
    min_rows: int = 24
    correlation_threshold: float = 0.1
    max_depth: int = 12
    kmeans_iterations: int = 8
    max_leaf_bins: int = 14
    seed: int = 0


class LeafNode:
    """Univariate leaf: bounded-resolution histogram over one column."""

    def __init__(self, column: str, values: np.ndarray, max_bins: int = 14):
        self.column = column
        self.histogram = BinnedHistogram(values, max_bins=max_bins)

    def probability(self, ranges: dict[str, tuple[int, int]]) -> float:
        bounds = ranges.get(self.column)
        if bounds is None:
            return 1.0
        return self.histogram.range_fraction(bounds[0], bounds[1])

    def size(self) -> int:
        return 1


class ProductNode:
    """Independent column groups: P = ∏ children."""

    def __init__(self, children: list):
        self.children = children

    def probability(self, ranges: dict[str, tuple[int, int]]) -> float:
        prob = 1.0
        for child in self.children:
            prob *= child.probability(ranges)
            if prob == 0.0:
                return 0.0
        return prob

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children)


class SumNode:
    """Row-cluster mixture: P = Σ wᵢ·Pᵢ."""

    def __init__(self, weights: list[float], children: list):
        total = float(sum(weights))
        self.weights = [w / total for w in weights]
        self.children = children

    def probability(self, ranges: dict[str, tuple[int, int]]) -> float:
        return float(sum(w * c.probability(ranges)
                         for w, c in zip(self.weights, self.children)))

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children)


def _connected_components(adjacency: np.ndarray) -> list[list[int]]:
    n = len(adjacency)
    seen = [False] * n
    components = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        component = []
        seen[start] = True
        while stack:
            node = stack.pop()
            component.append(node)
            for other in range(n):
                if adjacency[node, other] and not seen[other]:
                    seen[other] = True
                    stack.append(other)
        components.append(sorted(component))
    return components


def _column_groups(matrix: np.ndarray, threshold: float) -> list[list[int]]:
    """Group columns whose absolute Pearson correlation exceeds threshold."""
    d = matrix.shape[1]
    if d == 1:
        return [[0]]
    std = matrix.std(axis=0)
    safe = np.where(std == 0, 1.0, std)
    centered = (matrix - matrix.mean(axis=0)) / safe
    corr = np.abs(centered.T @ centered) / max(1, len(matrix))
    corr[std == 0, :] = 0.0
    corr[:, std == 0] = 0.0
    adjacency = corr > threshold
    np.fill_diagonal(adjacency, False)
    return _connected_components(adjacency)


def _two_means(matrix: np.ndarray, rng: np.random.Generator,
               iterations: int) -> np.ndarray:
    """Cluster rows into two groups; returns a boolean assignment array."""
    n = len(matrix)
    std = matrix.std(axis=0)
    safe = np.where(std == 0, 1.0, std)
    z = (matrix - matrix.mean(axis=0)) / safe
    centers = z[rng.choice(n, size=2, replace=False)]
    assign = np.zeros(n, dtype=bool)
    for _ in range(iterations):
        d0 = ((z - centers[0]) ** 2).sum(axis=1)
        d1 = ((z - centers[1]) ** 2).sum(axis=1)
        new_assign = d1 < d0
        if new_assign.all() or (~new_assign).all():
            # Degenerate clustering: split at random.
            new_assign = rng.random(n) < 0.5
        if (new_assign == assign).all():
            assign = new_assign
            break
        assign = new_assign
        centers[0] = z[~assign].mean(axis=0)
        centers[1] = z[assign].mean(axis=0)
    return assign


def build_spn(columns: dict[str, np.ndarray], config: SPNConfig | None = None,
              _depth: int = 0, _rng: np.random.Generator | None = None):
    """Learn an SPN over the given column sample."""
    config = config or SPNConfig()
    rng = _rng if _rng is not None else rng_from_seed(config.seed)
    names = list(columns)
    if not names:
        raise ValueError("cannot build an SPN over zero columns")
    n = len(columns[names[0]])

    if len(names) == 1:
        return LeafNode(names[0], columns[names[0]], config.max_leaf_bins)

    if n < config.min_rows or _depth >= config.max_depth:
        # Assume independence once data is too thin to split further.
        return ProductNode([LeafNode(c, columns[c], config.max_leaf_bins) for c in names])

    matrix = np.stack([columns[c] for c in names], axis=1).astype(np.float64)
    groups = _column_groups(matrix, config.correlation_threshold)
    if len(groups) > 1:
        children = []
        for group in groups:
            sub = {names[i]: columns[names[i]] for i in group}
            children.append(build_spn(sub, config, _depth + 1, rng))
        return ProductNode(children)

    assign = _two_means(matrix, rng, config.kmeans_iterations)
    children = []
    weights = []
    for mask in (~assign, assign):
        count = int(mask.sum())
        if count == 0:
            continue
        sub = {c: columns[c][mask] for c in names}
        weights.append(count)
        children.append(build_spn(sub, config, _depth + 1, rng))
    if len(children) == 1:
        return children[0]
    return SumNode(weights, children)
