"""DeepDB: relational sum-product networks (Hilprecht et al., VLDB 2020).

One SPN per join template (DeepDB's RSPN-ensemble strategy), learned from a
uniform join sample; estimates are the SPN's conjunctive-range probability
scaled by the exact template join size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.query import Query
from .spn import SPNConfig, build_spn
from .template_base import TemplateModel


@dataclass
class DeepDBConfig:
    min_rows: int = 24
    correlation_threshold: float = 0.1
    max_depth: int = 12
    max_leaf_bins: int = 14
    seed: int = 0


class DeepDB(TemplateModel):
    name = "DeepDB"

    def __init__(self, config: DeepDBConfig | None = None):
        super().__init__()
        self.config = config or DeepDBConfig()

    def _fit_template(self, template, columns, join_size):
        spn_config = SPNConfig(
            min_rows=self.config.min_rows,
            correlation_threshold=self.config.correlation_threshold,
            max_depth=self.config.max_depth,
            max_leaf_bins=self.config.max_leaf_bins,
            seed=self.config.seed,
        )
        return build_spn(columns, spn_config)

    def _template_selectivity(self, model, template, query: Query) -> float:
        return model.probability(self._ranges(query))
