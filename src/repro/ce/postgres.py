"""The default PostgreSQL cardinality estimator (baseline 9 of Sec. VII-A).

Implements the textbook System-R / PostgreSQL recipe: per-column histograms
with the attribute-value-independence (AVI) assumption for conjunctions, and
``1 / max(ndv(a), ndv(b))`` join selectivity for equi-joins (which for our
PK–FK joins reduces to ``1 / |parent|``).
"""

from __future__ import annotations

import numpy as np

from ..workload.query import Query
from .base import CEModel, TrainingContext, clip_card
from .histograms import ValueHistogram


class PostgresEstimator(CEModel):
    name = "Postgres"

    def fit(self, ctx: TrainingContext) -> None:
        self._dataset = ctx.dataset
        self._histograms: dict[tuple[str, str], ValueHistogram] = {}
        self._rows: dict[str, int] = {}
        self._ndv: dict[tuple[str, str], int] = {}
        for table_name, table in ctx.dataset.tables.items():
            self._rows[table_name] = table.num_rows
            for column in table.data_columns():
                hist = ValueHistogram(table[column])
                self._histograms[(table_name, column)] = hist
            for column in table.fk_columns():
                self._ndv[(table_name, column)] = table.domain_size(column)

    def _table_selectivity(self, query: Query, table: str) -> float:
        sel = 1.0
        for pred in query.predicates:
            if pred.table != table:
                continue
            hist = self._histograms.get((table, pred.column))
            if hist is None:
                continue
            sel *= hist.range_fraction(pred.lo, pred.hi)
        return sel

    def estimate(self, query: Query) -> float:
        card = 1.0
        for table in query.tables:
            card *= self._rows[table] * self._table_selectivity(query, table)
        table_set = set(query.tables)
        for fk in self._dataset.foreign_keys:
            if fk.child in table_set and fk.parent in table_set:
                # Equi-join selectivity 1 / max(ndv(fk), ndv(pk)).
                ndv_pk = self._rows[fk.parent]
                ndv_fk = self._ndv.get((fk.child, fk.fk_column), ndv_pk)
                card *= 1.0 / max(ndv_pk, ndv_fk, 1)
        return clip_card(card)
