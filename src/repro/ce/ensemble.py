"""Ensemble baseline (baseline 8 of Sec. VII-A).

A weighted average of all candidate CE models, with weights proportional to
each model's accuracy on the training workload (inverse mean Q-error).
Averaging happens in log-cardinality space, which is the geometric mean the
Q-error metric is aligned with.
"""

from __future__ import annotations

import numpy as np

from ..workload.query import Query
from .base import CEModel, TrainingContext, clip_card


class EnsembleCE(CEModel):
    name = "Ensemble"

    def __init__(self, models: list[CEModel]):
        if not models:
            raise ValueError("ensemble needs at least one base model")
        self.models = list(models)
        self.weights = np.ones(len(models)) / len(models)

    def fit(self, ctx: TrainingContext) -> None:
        """Set weights from training-workload accuracy.

        Base models are assumed to be fitted already (the testbed fits them
        once and shares them).
        """
        queries = ctx.workload.train
        true = np.array([q.true_cardinality for q in queries], dtype=np.float64)
        inverse_errors = []
        for model in self.models:
            estimates = model.estimate_batch(queries)
            ratio = np.maximum(estimates, true + 1.0) / np.maximum(
                np.minimum(estimates, true + 1.0), 1.0)
            inverse_errors.append(1.0 / float(ratio.mean()))
        weights = np.array(inverse_errors)
        self.weights = weights / weights.sum()

    def estimate(self, query: Query) -> float:
        logs = np.array([np.log(model.estimate(query) + 1.0)
                         for model in self.models])
        return clip_card(float(np.exp(np.dot(self.weights, logs)) - 1.0))
