"""Common interface for cardinality estimators.

Every estimator in the zoo — query-driven (MSCN, LW-NN, LW-XGB),
data-driven (DeepDB, BayesCard, NeuroCard), hybrid (UAE) and the baselines
(Postgres, Ensemble) — implements :class:`CEModel`.  The testbed constructs
one :class:`TrainingContext` per dataset (shared query encoder + shared join
samples) and fits every candidate model from it, as in the paper's unified
CE testbed (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.sampling import JoinSampleCache
from ..db.schema import Dataset
from ..workload.encoding import QueryEncoder
from ..workload.generator import Workload
from ..workload.query import Query

MIN_CARD = 1.0


@dataclass
class TrainingContext:
    """Everything a CE model may consume during fitting.

    Query-driven models read ``workload.train`` (queries + true cards);
    data-driven models read join samples from ``samples``; all models share
    the ``encoder`` vocabulary.
    """

    dataset: Dataset
    workload: Workload
    encoder: QueryEncoder
    samples: JoinSampleCache
    seed: int = 0
    sample_size: int = 2000

    @classmethod
    def build(cls, dataset: Dataset, workload: Workload, seed: int = 0,
              sample_size: int = 2000) -> "TrainingContext":
        return cls(
            dataset=dataset,
            workload=workload,
            encoder=QueryEncoder(dataset),
            samples=JoinSampleCache(dataset, seed=seed),
            seed=seed,
            sample_size=sample_size,
        )


class CEModel:
    """Abstract cardinality estimator."""

    #: Registry name, e.g. ``"MSCN"``.
    name: str = "abstract"
    #: True if the model learns from (query, cardinality) pairs.
    query_driven: bool = False
    #: True if the model learns the data's joint distribution.
    data_driven: bool = False

    def fit(self, ctx: TrainingContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def estimate(self, query: Query) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def estimate_batch(self, queries: list[Query]) -> np.ndarray:
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def clip_card(value: float, upper: float | None = None) -> float:
    """Clamp an estimate to a sane positive range.

    NaN (no information) floors to one row; +inf saturates at ``upper`` (or
    a large finite cap), since an overflowing estimate still means "huge".
    """
    value = float(value)
    if np.isnan(value):
        value = MIN_CARD
    value = max(MIN_CARD, value)
    if upper is not None:
        value = min(value, float(upper))
    elif not np.isfinite(value):
        value = 1e30
    return value
