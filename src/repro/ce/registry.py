"""Model registry: the candidate set M of the CE-model selection problem.

The paper's testbed implements seven learned CE models — three query-driven
(MSCN, LW-NN, LW-XGB), three data-driven (DeepDB, BayesCard, NeuroCard) and
one hybrid (UAE).  The Postgres estimator and the Ensemble are additional
comparison baselines (Fig. 9) but not selection candidates.

The registry is extensible: ``register`` adds a new estimator class and it
immediately becomes selectable by AutoCE (Sec. IV-B1: "any newly-emerged CE
model ... can be readily incorporated").
"""

from __future__ import annotations

from .base import CEModel
from .bayescard import BayesCard
from .deepdb import DeepDB
from .fspn import FLAT
from .lwnn import LWNN
from .lwxgb import LWXGB
from .mscn import MSCN
from .neurocard import NeuroCard
from .postgres import PostgresEstimator
from .uae import UAE

#: Candidate models in the canonical order used by score vectors.
CANDIDATE_MODELS: list[str] = [
    "BayesCard", "DeepDB", "NeuroCard", "MSCN", "LW-NN", "LW-XGB", "UAE",
]

QUERY_DRIVEN_MODELS: list[str] = ["MSCN", "LW-NN", "LW-XGB"]
DATA_DRIVEN_MODELS: list[str] = ["BayesCard", "DeepDB", "NeuroCard"]
HYBRID_MODELS: list[str] = ["UAE"]

_REGISTRY: dict[str, type[CEModel]] = {
    "BayesCard": BayesCard,
    "DeepDB": DeepDB,
    "NeuroCard": NeuroCard,
    "MSCN": MSCN,
    "LW-NN": LWNN,
    "LW-XGB": LWXGB,
    "UAE": UAE,
    "FLAT": FLAT,
    "Postgres": PostgresEstimator,
}


def register(name: str, model_class: type[CEModel]) -> None:
    """Add a custom estimator to the candidate registry."""
    if not issubclass(model_class, CEModel):
        raise TypeError(f"{model_class!r} is not a CEModel subclass")
    _REGISTRY[name] = model_class
    if name not in CANDIDATE_MODELS:
        CANDIDATE_MODELS.append(name)


def available_models() -> list[str]:
    return list(_REGISTRY)


def build_model(name: str) -> CEModel:
    if name not in _REGISTRY:
        raise KeyError(f"unknown CE model {name!r}; known: {available_models()}")
    return _REGISTRY[name]()


def build_models(names: list[str] | None = None) -> dict[str, CEModel]:
    names = names if names is not None else CANDIDATE_MODELS
    return {name: build_model(name) for name in names}
