"""UAE: unified autoregressive estimator learning from data AND queries.

Wu & Cong (SIGMOD 2021) extend the deep autoregressive model with
differentiable progressive sampling so training queries also supervise the
density model.  Our CPU reproduction keeps the data-driven MADE core of
NeuroCard and adds the query supervision as a per-template calibration
layer fitted on the training workload: a least-squares affine correction in
log-cardinality space (shrunk towards the identity when a template has few
training queries).  This preserves UAE's qualitative profile in the paper —
accuracy at or above NeuroCard, with the same heavy inference latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.query import Query
from .base import TrainingContext, clip_card
from .neurocard import NeuroCard, NeuroCardConfig


@dataclass
class UAEConfig(NeuroCardConfig):
    min_queries_for_calibration: int = 6
    shrinkage: float = 0.7


class UAE(NeuroCard):
    name = "UAE"

    def __init__(self, config: UAEConfig | None = None):
        super().__init__(config or UAEConfig())
        self._calibration: dict[tuple[str, ...], tuple[float, float]] = {}

    def fit(self, ctx: TrainingContext) -> None:
        super().fit(ctx)
        self._calibration.clear()
        config: UAEConfig = self.config  # type: ignore[assignment]
        by_template: dict[tuple[str, ...], list[Query]] = {}
        for query in ctx.workload.train:
            by_template.setdefault(query.template, []).append(query)
        for template, queries in by_template.items():
            if len(queries) < config.min_queries_for_calibration:
                continue
            raw = np.array([super(UAE, self).estimate(q) for q in queries])
            true = np.array([q.true_cardinality for q in queries], dtype=np.float64)
            x = np.log(raw + 1.0)
            y = np.log(true + 1.0)
            denominator = float(((x - x.mean()) ** 2).sum())
            if denominator < 1e-9:
                continue
            slope = float(((x - x.mean()) * (y - y.mean())).sum()) / denominator
            intercept = float(y.mean() - slope * x.mean())
            # Shrink toward the identity (a=1, b=0): the data-driven model is
            # already consistent, queries only correct its bias.
            lam = config.shrinkage
            slope = lam * slope + (1.0 - lam) * 1.0
            intercept = lam * intercept
            slope = float(np.clip(slope, 0.25, 4.0))
            self._calibration[template] = (slope, intercept)

    def estimate(self, query: Query) -> float:
        raw = super().estimate(query)
        calibration = self._calibration.get(query.template)
        if calibration is None:
            return raw
        slope, intercept = calibration
        log_est = slope * np.log(raw + 1.0) + intercept
        return clip_card(float(np.exp(np.clip(log_est, 0.0, 60.0)) - 1.0))
