"""Statistically-shaped clones of the paper's real-world datasets.

The evaluation uses IMDB-light (6 tables, 12 columns), STATS-light (8 tables,
23 columns), the single-table Power dataset, and the CEB-IMDB benchmark.
With no network access, we generate synthetic datasets with the published
schema shapes (Table I) and deliberately heterogeneous skew/correlation so
that — as in the paper's motivation (Fig. 1) — different CE model families
win on different datasets.  Row counts are scaled down by ``scale`` to keep
CPU labeling cheap; the relative row-count ratios between tables are kept.

``derive_subschemas`` reproduces the paper's IMDB-20 / STATS-20 protocol
(Sec. VII-A): randomly select 1–5 joined tables with their join keys, then
keep 1–2 non-key columns per chosen table.
"""

from __future__ import annotations

import numpy as np

from ..db.schema import Dataset, ForeignKey
from ..db.table import PK_COLUMN, Table
from ..utils.rng import rng_from_seed
from .multi_table import generate_dataset
from .spec import DatasetSpec, TableSpec


def _spec_from_profile(name: str, profile: list[dict], jmin: float, jmax: float,
                       seed: int, scale: float,
                       fanout_skew: float = 0.0) -> DatasetSpec:
    tables = tuple(
        TableSpec(
            num_columns=entry["columns"],
            num_rows=max(50, int(entry["rows"] * scale)),
            domain_size=entry["domain"],
            skew=entry["skew"],
            max_correlation=entry["correlation"],
            interaction=entry.get("interaction", 0.0),
        )
        for entry in profile
    )
    return DatasetSpec(name=name, tables=tables, join_correlation_min=jmin,
                       join_correlation_max=jmax,
                       fanout_skew=fanout_skew, seed=seed)


def imdb_light_like(seed: int = 101, scale: float = 0.02) -> Dataset:
    """A 6-table movie-schema clone (IMDB-light: 2.1K–339K rows, 12 columns).

    Many joining tables with moderate skew: the regime where the paper
    observes query-driven models (MSCN) winning on accuracy.
    """
    profile = [
        {"rows": 339_000, "columns": 2, "domain": 120, "skew": 0.55, "correlation": 0.3},
        {"rows": 250_000, "columns": 2, "domain": 90, "skew": 0.7, "correlation": 0.5},
        {"rows": 120_000, "columns": 2, "domain": 60, "skew": 0.4, "correlation": 0.2},
        {"rows": 36_000, "columns": 2, "domain": 40, "skew": 0.8, "correlation": 0.6},
        {"rows": 12_000, "columns": 2, "domain": 25, "skew": 0.3, "correlation": 0.4},
        {"rows": 2_100, "columns": 2, "domain": 15, "skew": 0.6, "correlation": 0.1},
    ]
    spec = _spec_from_profile("imdb_light", profile, 0.3, 0.9, seed, scale,
                              fanout_skew=0.9)
    return generate_dataset(spec)


def stats_light_like(seed: int = 202, scale: float = 0.02) -> Dataset:
    """An 8-table Stack-Exchange-schema clone (STATS-light: 23 columns)."""
    profile = [
        {"rows": 328_000, "columns": 3, "domain": 100, "skew": 0.75, "correlation": 0.4},
        {"rows": 175_000, "columns": 3, "domain": 80, "skew": 0.6, "correlation": 0.7},
        {"rows": 91_000, "columns": 3, "domain": 60, "skew": 0.5, "correlation": 0.2},
        {"rows": 80_000, "columns": 3, "domain": 50, "skew": 0.85, "correlation": 0.5},
        {"rows": 42_000, "columns": 3, "domain": 45, "skew": 0.35, "correlation": 0.3},
        {"rows": 20_000, "columns": 3, "domain": 30, "skew": 0.65, "correlation": 0.6},
        {"rows": 5_000, "columns": 3, "domain": 25, "skew": 0.45, "correlation": 0.1},
        {"rows": 1_000, "columns": 2, "domain": 15, "skew": 0.25, "correlation": 0.2},
    ]
    spec = _spec_from_profile("stats_light", profile, 0.2, 0.8, seed, scale,
                              fanout_skew=0.8)
    return generate_dataset(spec)


def power_like(seed: int = 303, scale: float = 1.0) -> Dataset:
    """A single-table household-power clone: 7 highly-correlated columns.

    Single table with strong cross-column correlation: the regime where the
    paper observes data-driven models (NeuroCard/DeepDB) winning (Fig. 1b).
    """
    spec = DatasetSpec(
        name="power",
        tables=(TableSpec(num_columns=7, num_rows=max(200, int(4_000 * scale)),
                          domain_size=64, skew=0.25, max_correlation=0.9,
                          interaction=0.4),),
        join_correlation_min=0.5, join_correlation_max=1.0, seed=seed,
    )
    return generate_dataset(spec)


def ceb_like(seed: int = 404, scale: float = 0.02) -> Dataset:
    """A CEB-IMDB-style benchmark schema: a wider movie-schema variant.

    The paper restricts CEB experiments to query-driven models (Table III);
    our clone keeps 7 tables so multi-way join templates exist.
    """
    profile = [
        {"rows": 339_000, "columns": 2, "domain": 110, "skew": 0.6, "correlation": 0.35},
        {"rows": 200_000, "columns": 2, "domain": 95, "skew": 0.5, "correlation": 0.55},
        {"rows": 150_000, "columns": 2, "domain": 70, "skew": 0.75, "correlation": 0.25},
        {"rows": 90_000, "columns": 2, "domain": 55, "skew": 0.45, "correlation": 0.45},
        {"rows": 45_000, "columns": 2, "domain": 35, "skew": 0.65, "correlation": 0.65},
        {"rows": 15_000, "columns": 2, "domain": 25, "skew": 0.35, "correlation": 0.15},
        {"rows": 4_000, "columns": 2, "domain": 18, "skew": 0.55, "correlation": 0.3},
    ]
    spec = _spec_from_profile("ceb_imdb", profile, 0.3, 0.9, seed, scale,
                              fanout_skew=0.85)
    return generate_dataset(spec)


def derive_subschemas(dataset: Dataset, count: int = 20,
                      seed: int | np.random.Generator = 0,
                      max_tables: int = 5) -> list[Dataset]:
    """The paper's IMDB-20 / STATS-20 protocol: random testing sub-schemas.

    Each derived dataset keeps (1) a random connected 1–``max_tables`` join
    template with its join keys and (2) 1–2 randomly chosen non-key columns
    per kept table.
    """
    rng = rng_from_seed(seed)
    templates = [t for t in dataset.connected_subsets(max_size=max_tables)]
    derived: list[Dataset] = []
    for index in range(count):
        template = templates[int(rng.integers(0, len(templates)))]
        kept_edges = dataset.subset_edges(template)
        needed_fks: dict[str, set[str]] = {name: set() for name in template}
        needs_pk: set[str] = set()
        for fk in kept_edges:
            needed_fks[fk.child].add(fk.fk_column)
            needs_pk.add(fk.parent)

        tables: list[Table] = []
        for name in template:
            source = dataset[name]
            data_cols = source.data_columns()
            keep_n = int(rng.integers(1, min(2, len(data_cols)) + 1))
            chosen = list(rng.choice(data_cols, size=keep_n, replace=False))
            columns: dict[str, np.ndarray] = {}
            if name in needs_pk:
                columns[PK_COLUMN] = source[PK_COLUMN]
            for fk_col in sorted(needed_fks[name]):
                columns[fk_col] = source[fk_col]
            for col in chosen:
                columns[col] = source[col]
            tables.append(Table(name, columns))
        derived.append(Dataset(f"{dataset.name}_sub{index}", tables, kept_edges))
    return derived
