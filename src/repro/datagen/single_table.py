"""Single-table generation (Sec. IV-A.1 of the paper).

Works in two steps, exactly as described: (1) generate every column from the
Eq. 1 skewed distribution over the domain ``[0, d-1]``; (2) iterate over
adjacent column pairs and inject equality correlation with a random strength
up to the table's ``max_correlation``.
"""

from __future__ import annotations

import numpy as np

from ..db.table import Table
from ..utils.rng import rng_from_seed
from .distributions import apply_column_correlation, sample_skewed_column
from .spec import TableSpec


def generate_table(name: str, spec: TableSpec,
                   seed: int | np.random.Generator = 0) -> Table:
    """Generate one table from its spec.

    Column skews are jittered around the spec's ``skew`` so that a table's
    columns are heterogeneous, mirroring real schemas.
    """
    rng = rng_from_seed(seed)
    columns: dict[str, np.ndarray] = {}
    generated: list[np.ndarray] = []
    for index in range(spec.num_columns):
        skew = float(np.clip(spec.skew + rng.normal(0.0, 0.08), 0.0, 1.0))
        values = sample_skewed_column(rng, spec.num_rows, skew,
                                      0, spec.domain_size - 1)
        generated.append(values)

    # Step 2: correlate every pair of adjacent columns with a random
    # strength in [0, max_correlation].
    for index in range(1, spec.num_columns):
        strength = float(rng.uniform(0.0, spec.max_correlation))
        generated[index] = apply_column_correlation(
            rng, generated[index - 1], generated[index], strength)

    # Step 3: inject 3-way interactions (target = a + b mod domain on a
    # random subset of rows).  Pairwise models cannot represent these.
    if spec.interaction > 0.0 and spec.num_columns >= 3:
        for _ in range(max(1, spec.num_columns // 2)):
            a, b, target = rng.choice(spec.num_columns, size=3, replace=False)
            mask = rng.random(spec.num_rows) < spec.interaction
            generated[target][mask] = (
                (generated[a][mask] + generated[b][mask]) % spec.domain_size)

    for index, values in enumerate(generated):
        columns[f"col{index}"] = values
    return Table(name, columns)
