"""Skewed value distributions (process F1, Eq. 1 of the paper).

The paper generates each column from a Pareto-family density

    f(x) = (1 + x·(skew−1))^(−1 − 1/(skew−1)) / (vmax − vmin),   x ∈ [0, 1]

where ``skew = 0`` recovers the uniform distribution and increasing ``skew``
concentrates mass near the low end of the domain.  We sample it exactly by
inverting the closed-form CDF.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import rng_from_seed

_MAX_SKEW = 0.999


def skew_cdf(x: np.ndarray, skew: float) -> np.ndarray:
    """CDF of the Eq. 1 density restricted (and normalized) to [0, 1]."""
    skew = float(np.clip(skew, 0.0, _MAX_SKEW))
    if skew == 0.0:
        return np.asarray(x, dtype=np.float64)
    a = skew - 1.0
    z = 1.0 - skew ** (1.0 / (1.0 - skew))
    return (1.0 - (1.0 + a * np.asarray(x, dtype=np.float64)) ** (-1.0 / a)) / z


def sample_skewed_unit(rng: np.random.Generator, size: int, skew: float) -> np.ndarray:
    """Draw ``size`` samples in [0, 1) from the Eq. 1 density via inverse CDF."""
    skew = float(np.clip(skew, 0.0, _MAX_SKEW))
    u = rng.random(size)
    if skew == 0.0:
        return u
    a = skew - 1.0
    z = 1.0 - skew ** (1.0 / (1.0 - skew))
    return ((1.0 - u * z) ** (-a) - 1.0) / a


def sample_skewed_column(rng: np.random.Generator | int, size: int, skew: float,
                         vmin: int, vmax: int) -> np.ndarray:
    """Integer column over the domain [vmin, vmax] with Eq. 1 skew."""
    if vmax < vmin:
        raise ValueError(f"empty domain [{vmin}, {vmax}]")
    rng = rng_from_seed(rng)
    unit = sample_skewed_unit(rng, size, skew)
    width = vmax - vmin + 1
    values = vmin + np.floor(unit * width).astype(np.int64)
    return np.clip(values, vmin, vmax)


def apply_column_correlation(rng: np.random.Generator, source: np.ndarray,
                             target: np.ndarray, correlation: float) -> np.ndarray:
    """Process F2: with probability ``correlation`` copy the source value.

    Positions where the coin lands heads take the value of ``source`` so that
    ``P(target[i] == source[i]) >= correlation``; the remaining positions keep
    the original ``target`` values.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [0, 1], got {correlation}")
    if correlation == 0.0:
        return target.copy()
    mask = rng.random(len(target)) < correlation
    out = target.copy()
    out[mask] = source[mask]
    return out


def measure_equality_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Reverse of F2 (Sec. V-A): the fraction of positions with equal values."""
    if len(a) == 0:
        return 0.0
    return float(np.mean(a == b))
