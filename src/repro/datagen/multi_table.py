"""Multi-table generation with PK–FK join correlation (Sec. IV-A.2 / F3).

The paper generates ``n`` tables independently, designates main tables with
primary keys, and correlates tables to a main table through PK–FK joins: a
fraction ``p`` of the parent's PK values is drawn without replacement, and
the child's FK column is populated by sampling (with replacement) from that
subset.  The resulting join graph is an acyclic tree, which we construct by
attaching each table to a random previously-placed table.
"""

from __future__ import annotations

import numpy as np

from ..db.schema import Dataset, ForeignKey
from ..db.table import PK_COLUMN, Table
from ..utils.rng import rng_from_seed
from .single_table import generate_table
from .spec import DatasetSpec


def _add_primary_key(table: Table) -> Table:
    if table.has_pk:
        return table
    columns = {PK_COLUMN: np.arange(table.num_rows, dtype=np.int64)}
    columns.update(table.columns)
    return Table(table.name, columns)


def _add_foreign_key(child: Table, parent: Table, correlation: float,
                     fanout_skew: float,
                     rng: np.random.Generator) -> tuple[Table, ForeignKey]:
    """Process F3: populate an FK column referencing ``parent``'s PK.

    ``fanout_skew`` tilts the sampling weights of the PK subset by the
    parent's first data column, so that join fanouts correlate with
    predicate columns — the cross-table dependence that makes multi-table
    datasets hard for data-driven estimators.
    """
    portion = max(1, int(round(correlation * parent.num_rows)))
    subset = rng.choice(parent.num_rows, size=portion, replace=False)
    if fanout_skew > 0.0:
        data_cols = parent.data_columns()
        if data_cols:
            base = parent[data_cols[0]][subset].astype(np.float64)
        else:
            base = rng.random(portion)
        span = base.max() - base.min()
        normalized = (base - base.min()) / span if span > 0 else np.zeros(portion)
        weights = np.exp(3.0 * fanout_skew * normalized)
        weights /= weights.sum()
        fk_values = rng.choice(subset, size=child.num_rows, replace=True, p=weights)
    else:
        fk_values = rng.choice(subset, size=child.num_rows, replace=True)
    fk_name = f"fk_{parent.name}"
    columns = dict(child.columns)
    columns[fk_name] = fk_values.astype(np.int64)
    return Table(child.name, columns), ForeignKey(child.name, fk_name, parent.name)


def generate_dataset(spec: DatasetSpec) -> Dataset:
    """Generate a dataset (tables + acyclic FK tree) from its spec."""
    rng = rng_from_seed(spec.seed)
    tables = [generate_table(f"table{i}", table_spec, rng)
              for i, table_spec in enumerate(spec.tables)]

    if len(tables) == 1:
        return Dataset(spec.name, tables, [])

    # Attach each table (in random order) to a random already-placed table,
    # yielding a uniform random tree over the schema.
    order = rng.permutation(len(tables))
    placed = [int(order[0])]
    foreign_keys: list[ForeignKey] = []
    for raw in order[1:]:
        child_index = int(raw)
        parent_index = int(placed[int(rng.integers(0, len(placed)))])
        parent = _add_primary_key(tables[parent_index])
        tables[parent_index] = parent
        correlation = float(rng.uniform(spec.join_correlation_min,
                                        spec.join_correlation_max))
        child, fk = _add_foreign_key(tables[child_index], parent, correlation,
                                     spec.fanout_skew, rng)
        tables[child_index] = child
        foreign_keys.append(fk)
        placed.append(child_index)

    return Dataset(spec.name, tables, foreign_keys)
