"""Declarative dataset specifications (Stage 1 inputs, Sec. III of the paper).

A :class:`DatasetSpec` captures the generation parameters the paper lists —
number of tables and columns, domain size, skewness, column correlation and
join correlation — so that a dataset is fully reproducible from its spec, and
a corpus of specs can be sampled to "cover a relatively comprehensive space
of data features" (Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

import numpy as np

from ..utils.rng import rng_from_seed


@dataclass(frozen=True)
class TableSpec:
    """Generation parameters for a single table."""

    num_columns: int
    num_rows: int
    domain_size: int
    skew: float
    max_correlation: float
    #: Strength of 3-way column interactions (higher-order dependence that
    #: pairwise models such as Chow–Liu trees cannot capture).
    interaction: float = 0.0

    def __post_init__(self):
        if self.num_columns < 1:
            raise ValueError("a table needs at least one data column")
        if self.num_rows < 1:
            raise ValueError("a table needs at least one row")
        if self.domain_size < 1:
            raise ValueError("domain size must be positive")
        if not 0.0 <= self.skew <= 1.0:
            raise ValueError("skew must be in [0, 1]")
        if not 0.0 <= self.max_correlation <= 1.0:
            raise ValueError("max_correlation must be in [0, 1]")
        if not 0.0 <= self.interaction <= 1.0:
            raise ValueError("interaction must be in [0, 1]")


@dataclass(frozen=True)
class DatasetSpec:
    """Generation parameters for a multi-table dataset."""

    name: str
    tables: tuple[TableSpec, ...]
    join_correlation_min: float = 0.2
    join_correlation_max: float = 1.0
    #: Skews join fanouts by the parent's first data column, creating
    #: cross-table dependence between predicates and join sizes.
    fanout_skew: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not self.tables:
            raise ValueError("dataset needs at least one table")
        if not 0.0 < self.join_correlation_min <= self.join_correlation_max <= 1.0:
            raise ValueError("join correlation bounds must satisfy 0 < jmin <= jmax <= 1")
        if not 0.0 <= self.fanout_skew <= 1.0:
            raise ValueError("fanout_skew must be in [0, 1]")

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    def to_dict(self) -> dict:
        return asdict(self)


# Default ranges mirroring Table I's synthetic row ("1-5 tables, 10K-50K rows,
# 2-25 columns"), scaled down by default so labeling a corpus stays CPU-cheap.
# Rows and domains span an order of magnitude so that model performance
# genuinely spreads (the regime of the paper's Fig. 1, where no single CE
# model wins everywhere).
DEFAULT_RANGES = {
    "num_tables": (1, 5),
    "columns_per_table": (2, 5),
    "rows": (600, 6000),
    "domain": (8, 300),
    "skew": (0.0, 1.0),
    "max_correlation": (0.0, 0.9),
    "interaction": (0.0, 0.9),
    "join_correlation": (0.2, 1.0),
    "fanout_skew": (0.0, 1.0),
}


def random_spec(seed: int, name: str | None = None,
                ranges: dict | None = None) -> DatasetSpec:
    """Sample one dataset spec; ``seed`` fully determines the result."""
    cfg = dict(DEFAULT_RANGES)
    if ranges:
        cfg.update(ranges)
    rng = rng_from_seed(seed)
    num_tables = int(rng.integers(cfg["num_tables"][0], cfg["num_tables"][1] + 1))
    tables = []
    for _ in range(num_tables):
        tables.append(TableSpec(
            num_columns=int(rng.integers(cfg["columns_per_table"][0],
                                         cfg["columns_per_table"][1] + 1)),
            num_rows=int(rng.integers(cfg["rows"][0], cfg["rows"][1] + 1)),
            domain_size=int(rng.integers(cfg["domain"][0], cfg["domain"][1] + 1)),
            skew=float(rng.uniform(*cfg["skew"])),
            max_correlation=float(rng.uniform(*cfg["max_correlation"])),
            interaction=float(rng.uniform(*cfg["interaction"])),
        ))
    jmin = float(rng.uniform(*cfg["join_correlation"]))
    jmax = float(rng.uniform(jmin, cfg["join_correlation"][1]))
    return DatasetSpec(
        name=name or f"synthetic_{seed}",
        tables=tuple(tables),
        join_correlation_min=max(jmin, 0.05),
        join_correlation_max=max(jmax, max(jmin, 0.05)),
        fanout_skew=float(rng.uniform(*cfg["fanout_skew"])),
        seed=seed,
    )


def random_specs(count: int, base_seed: int = 0,
                 ranges: dict | None = None) -> list[DatasetSpec]:
    """A corpus of ``count`` specs with distinct deterministic seeds."""
    return [random_spec(base_seed * 1_000_003 + i, ranges=ranges)
            for i in range(count)]
