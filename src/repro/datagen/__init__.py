"""Synthetic dataset generation (Stage 1 of AutoCE).

Implements the paper's three generation processes — F1 skewness (Eq. 1),
F2 column correlation, F3 PK–FK join correlation — plus declarative dataset
specs and statistically-shaped clones of the real-world evaluation datasets.
"""

from .distributions import (
    sample_skewed_unit, sample_skewed_column, skew_cdf,
    apply_column_correlation, measure_equality_correlation,
)
from .spec import TableSpec, DatasetSpec, random_spec, random_specs, DEFAULT_RANGES
from .single_table import generate_table
from .multi_table import generate_dataset
from .presets import (
    imdb_light_like, stats_light_like, power_like, ceb_like, derive_subschemas,
)

__all__ = [
    "sample_skewed_unit", "sample_skewed_column", "skew_cdf",
    "apply_column_correlation", "measure_equality_correlation",
    "TableSpec", "DatasetSpec", "random_spec", "random_specs", "DEFAULT_RANGES",
    "generate_table", "generate_dataset",
    "imdb_light_like", "stats_light_like", "power_like", "ceb_like",
    "derive_subschemas",
]
