"""AutoCE: the model advisor facade.

Ties together the four stages of Fig. 3: feature engineering (Stage 2.1),
DML-based graph-encoder learning (Stage 2), incremental learning with Mixup
(Stage 3), and the KNN recommendation (Stage 4), plus the online adapting
of Sec. V-E.

Typical usage::

    advisor = AutoCE()
    advisor.fit(datasets, labels)                 # labels from the testbed
    rec = advisor.recommend(new_dataset, accuracy_weight=0.9)
    rec.model                                     # e.g. "DeepDB"

Serving fast path
-----------------
:meth:`AutoCE.recommend_batch` serves many datasets at once: every feature
graph is embedded in **one** GIN forward pass and the KNN search runs as a
single vectorized ``[Q, N]`` distance computation (Gram identity +
``argpartition``), so throughput scales with batch size instead of paying
per-query Python overhead::

    recs = advisor.recommend_batch(datasets, accuracy_weight=0.9)

Scale-out serving
-----------------
Three knobs grow the serving path past a single warm process:

* **Approximate KNN** — once the RCS crosses ``AutoCEConfig.ann.threshold``
  members, neighbor search switches from the exact ``[Q, N]`` scan to a
  multi-probe LSH index (:class:`~repro.core.serving.ANNIndex`) that is
  maintained incrementally as the RCS grows.
* **Persistent embedding cache** — both :meth:`recommend` and
  :meth:`recommend_batch` consult an LRU embedding memo-cache keyed by the
  feature graph's content fingerprint (``AutoCEConfig.embedding_cache_size``,
  set ``0`` to disable).  With ``AutoCEConfig.embedding_cache_dir`` set the
  cache is write-through to disk and stamped with a content hash of the
  encoder weights, so a serving node restarted from
  :func:`~repro.core.persistence.load_advisor` serves repeat traffic from
  disk without a single GIN forward — while any retraining (``fit`` /
  ``adapt_online``) changes the stamp and invalidates every stale entry.
* **Parallel featurization** — ``AutoCEConfig.featurize_workers`` fans the
  per-dataset featurizer out over a thread pool (the column kernels are
  numpy-heavy and release the GIL); ``0`` means one worker per CPU.
* **Mixed precision tiers** — ``AutoCEConfig.serving_dtype`` serves the KNN
  path at a lower tier than the training loop (float32 embeddings over
  float64 encoder weights, no destructive downcast), and
  ``AutoCEConfig.quantization`` adds a quantized candidate tier: corpus
  scans and the LSH re-rank pools rank compressed codes — flat int8 up to
  260 dims, product quantization past that (``mode``) — and re-rank the
  top ``k · overfetch`` candidates in the float tier.

``AutoCEConfig.featurize_sample_rows`` optionally enables the row-sampling
featurizer sketch for very large tables; the exact featurizer is the
default.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, replace

import numpy as np
from numpy.typing import DTypeLike

from ..db.schema import Dataset
from ..testbed.scores import ScoreLabel
from ..utils.cache import MISSING, LRUCache, PersistentLRUCache
from .dml import DMLConfig, DMLTrainer
from .encoder import GINEncoder
from .graph import DEFAULT_MAX_COLUMNS, FeatureGraph, build_feature_graph
from .incremental import IncrementalConfig, incremental_learning
from .online import DriftDetector, OnlineAdapter
from .serving import (ANNConfig, KNNPredictor, QuantizationConfig,
                      Recommendation, RecommendationCandidateSet)


@dataclass
class AutoCEConfig:
    """All hyper-parameters of the advisor in one place."""

    max_columns: int = DEFAULT_MAX_COLUMNS
    hidden_dim: int = 96
    embedding_dim: int = 64
    num_layers: int = 2
    #: Numeric precision tier of the encoder, the DML training tensors and
    #: the serving embeddings: "float64" (reference, the default) or
    #: "float32" (the fast tier — half the memory bandwidth on the GIN and
    #: KNN kernels, with recommendation agreement measured in the README /
    #: ROADMAP precision-tier section).
    dtype: str = "float64"
    #: Mixed-tier mode: the precision tier of the *serving* embeddings (the
    #: RCS and every query embedding), independent of the training tier.
    #: ``None`` serves at ``dtype``; "float32" over a float64-trained
    #: advisor keeps the encoder weights at full precision (so later
    #: ``fit`` / ``adapt_online`` still train in float64) while the KNN
    #: kernels run on the fast tier — no destructive ``set_dtype`` downcast.
    serving_dtype: str | None = None
    #: The quantized candidate tier: compressed codes of the RCS
    #: embeddings (flat int8 or product quantization, see
    #: ``QuantizationConfig.mode``) scanned for candidate selection and
    #: re-ranked in the float serving tier.
    quantization: QuantizationConfig = field(
        default_factory=QuantizationConfig)
    #: The paper's Table IV optimum is k = 2 on a 1 000-dataset corpus; on
    #: this reproduction's smaller default corpus a slightly larger
    #: neighborhood averages out label noise (see the Table IV bench).
    knn_k: int = 5
    dml: DMLConfig = field(default_factory=DMLConfig)
    incremental: IncrementalConfig = field(default_factory=IncrementalConfig)
    use_incremental: bool = True
    #: False = the "No Augmentation" ablation of Fig. 11(b).
    incremental_augment: bool = True
    #: LRU capacity of the serving-path embedding memo-cache (0 disables).
    embedding_cache_size: int = 1024
    #: Directory for the disk tier of the embedding cache (None = in-memory
    #: only).  Entries survive process restarts; they are invalidated by a
    #: generation stamp derived from the encoder weights.
    embedding_cache_dir: str | None = None
    #: Approximate-KNN switch-over policy for CardBench-scale RCSs.
    ann: ANNConfig = field(default_factory=ANNConfig)
    #: Thread-pool width for featurizing many datasets (1 = serial,
    #: 0 = one worker per CPU).
    featurize_workers: int = 1
    #: Row-sampling sketch for the featurizer (None = exact, the default).
    featurize_sample_rows: int | None = None
    seed: int = 0


class AutoCE:
    """The learned CE-model advisor (offline training, online prediction)."""

    def __init__(self, config: AutoCEConfig | None = None) -> None:
        self.config = config or AutoCEConfig()
        self.encoder: GINEncoder | None = None
        self.trainer: DMLTrainer | None = None
        self.rcs: RecommendationCandidateSet | None = None
        self.predictor = KNNPredictor(k=self.config.knn_k)
        self.detector = DriftDetector()
        self._graphs: list[FeatureGraph] = []
        self._labels: list[ScoreLabel] = []
        # The persistent variant needs the encoder-weight generation stamp,
        # so it is attached lazily once the advisor is fitted (or reloaded).
        self.embedding_cache: LRUCache | PersistentLRUCache | None = (
            LRUCache(self.config.embedding_cache_size)
            if self.config.embedding_cache_size > 0
            and not self.config.embedding_cache_dir else None)
        self._generation: str | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # Stage 2.1: feature engineering
    # ------------------------------------------------------------------
    def featurize(self, dataset: Dataset) -> FeatureGraph:
        return build_feature_graph(
            dataset, max_columns=self.config.max_columns,
            sample_rows=self.config.featurize_sample_rows)

    def featurize_many(
            self, datasets: list[Dataset] | list[FeatureGraph]
    ) -> list[FeatureGraph]:
        """Featurize a batch, fanning raw datasets out over a thread pool.

        Prebuilt :class:`FeatureGraph` entries pass through untouched.  With
        ``featurize_workers != 1`` the raw datasets are featurized
        concurrently — the column-statistics kernels are numpy-heavy and
        release the GIL, so multi-core serving nodes overlap them.
        """
        graphs: list = list(datasets)
        raw = [i for i, d in enumerate(graphs)
               if not isinstance(d, FeatureGraph)]
        workers = self.config.featurize_workers
        if workers == 0:
            workers = os.cpu_count() or 1
        if len(raw) > 1 and workers > 1:
            with ThreadPoolExecutor(max_workers=min(workers, len(raw))) as pool:
                built = list(pool.map(self.featurize,
                                      [graphs[i] for i in raw]))
            for i, graph in zip(raw, built):
                graphs[i] = graph
        else:
            for i in raw:
                graphs[i] = self.featurize(graphs[i])
        return graphs

    # ------------------------------------------------------------------
    # Stages 2–3: training
    # ------------------------------------------------------------------
    def fit(self, datasets: list[Dataset] | list[FeatureGraph],
            labels: list[ScoreLabel]) -> "AutoCE":
        """Train the advisor from labeled datasets (or prebuilt graphs)."""
        if len(datasets) != len(labels):
            raise ValueError("datasets and labels must align")
        return self.fit_graphs(self.featurize_many(datasets), labels)

    def fit_graphs(self, graphs: list[FeatureGraph],
                   labels: list[ScoreLabel]) -> "AutoCE":
        config = self.config
        self._graphs = list(graphs)
        self._labels = list(labels)
        self.encoder = GINEncoder(
            vertex_dim=graphs[0].vertex_dim,
            hidden_dim=config.hidden_dim,
            embedding_dim=config.embedding_dim,
            num_layers=config.num_layers,
            seed=config.seed,
            dtype=np.dtype(config.dtype),
        )
        self.trainer = DMLTrainer(self.encoder, config.dml)
        self.loss_history = self.trainer.train(self._graphs, self._labels)
        if config.use_incremental and len(graphs) >= 2 * config.incremental.folds:
            incremental_learning(self.trainer, self._graphs, self._labels,
                                 config.incremental,
                                 augment=config.incremental_augment)
        self._invalidate_embedding_cache()
        self._rebuild_rcs()
        return self

    def _rebuild_rcs(self) -> None:
        embeddings = np.asarray(self.encoder.embed(self._graphs),
                                dtype=self.serving_dtype)
        self.rcs = RecommendationCandidateSet(
            embeddings, list(self._labels), ann=self.config.ann,
            quantization=self.config.quantization)

    # ------------------------------------------------------------------
    # Embedding memo-cache
    # ------------------------------------------------------------------
    def embedding_generation(self) -> str:
        """Content hash of the encoder weights — the cache generation stamp.

        Two advisors with identical weights (e.g. one saved and reloaded on
        a restarted serving node) share a generation, so persistent cache
        entries stay valid across the restart; any retraining changes the
        weights and therefore the stamp.
        """
        if self.encoder is None:
            raise RuntimeError("AutoCE is not fitted; call fit() first")
        if self._generation is None:
            digest = hashlib.sha256()
            # The precision tier is part of the generation: identical logical
            # weights served at a different dtype produce different
            # embeddings, and a float32 node must never be handed a stale
            # float64 entry (or vice versa) from a shared cache directory.
            # The serving tier folds in for the same reason: cached rows
            # live at that tier.  The quantization parameters never change
            # the cached rows themselves, but they fold in too so one stamp
            # describes the node's whole serving configuration — a
            # conservative trade: toggling the candidate tier re-embeds the
            # working set once rather than ever serving under an ambiguous
            # generation.
            digest.update(str(self.encoder.dtype).encode())
            digest.update(str(self.serving_dtype).encode())
            digest.update(repr(sorted(
                asdict(self.config.quantization).items())).encode())
            for param in self.encoder.parameters():
                data = np.ascontiguousarray(param.data)
                digest.update(str(data.shape).encode())
                digest.update(str(data.dtype).encode())
                digest.update(data.tobytes())
            self._generation = digest.hexdigest()[:16]
        return self._generation

    def _serving_cache(self) -> LRUCache | PersistentLRUCache | None:
        """The embedding cache, attaching the persistent tier on first use."""
        config = self.config
        if config.embedding_cache_size <= 0:
            return self.embedding_cache
        if config.embedding_cache_dir:
            generation = self.embedding_generation()
            if isinstance(self.embedding_cache, PersistentLRUCache):
                self.embedding_cache.set_generation(generation)
            else:
                self.embedding_cache = PersistentLRUCache(
                    config.embedding_cache_dir,
                    maxsize=config.embedding_cache_size,
                    generation=generation)
        return self.embedding_cache

    def _invalidate_embedding_cache(self) -> None:
        """Drop memoized embeddings after any encoder weight change.

        The persistent cache re-stamps itself from the new weights on the
        next lookup (see :meth:`_serving_cache`), which also wipes the
        now-stale disk entries; the plain LRU is simply cleared.
        """
        self._generation = None
        if isinstance(self.embedding_cache, PersistentLRUCache):
            if self.encoder is not None:
                self.embedding_cache.set_generation(self.embedding_generation())
            else:
                self.embedding_cache.clear()
        elif self.embedding_cache is not None:
            self.embedding_cache.clear()

    # ------------------------------------------------------------------
    # Precision tiers
    # ------------------------------------------------------------------
    @property
    def serving_dtype(self) -> np.dtype:
        """The tier of the serving embeddings (RCS rows, query embeddings,
        embedding-cache entries): ``config.serving_dtype`` when the mixed-
        tier mode is on, the training ``config.dtype`` otherwise."""
        return np.dtype(self.config.serving_dtype or self.config.dtype)

    def set_dtype(self, dtype: DTypeLike) -> "AutoCE":
        """Switch the advisor's *full* precision tier (e.g. ``"float32"``).

        On a fitted advisor this casts the encoder weights in place,
        re-embeds the RCS on the new tier and invalidates the embedding
        cache (the generation stamp folds in the dtype, so persistent disk
        entries written at the old tier can never be served at the new one).
        Downcasting a float64-trained advisor to float32 is the supported
        destructive cast; *upcasting* a float32-trained (or float32-saved)
        advisor raises — the discarded mantissa bits are unrecoverable, and
        silently serving zero-padded float64 weights as if they were the
        full-precision originals is exactly the kind of bad cast the
        persistence metadata exists to prevent.  To serve a float64-trained
        advisor at a lower tier *without* losing the float64 weights, use
        :meth:`set_serving_dtype` (the mixed-tier mode) instead.
        """
        dtype = np.dtype(dtype)
        if dtype.name not in ("float32", "float64"):
            raise ValueError(f"unsupported precision tier {dtype.name!r}")
        if (self.encoder is not None
                and np.dtype(self.encoder.dtype) == np.float32
                and dtype == np.float64):
            raise ValueError(
                "cannot upcast a float32 advisor to float64: the encoder "
                "weights live at float32 (trained or reloaded from a "
                "float32 save) and the discarded mantissa bits are "
                "unrecoverable. "
                "Retrain at float64, or serve a float64-trained advisor at "
                "a lower tier with set_serving_dtype()/--serving-dtype "
                "instead of set_dtype().")
        self.config.dtype = dtype.name
        if self.encoder is not None and self.encoder.dtype != dtype:
            self.encoder.to(dtype)
            self._invalidate_embedding_cache()
            if self._graphs:
                self._rebuild_rcs()
        return self

    def set_serving_dtype(self, dtype: DTypeLike) -> "AutoCE":
        """Enter (or leave) the mixed-tier serving mode.

        ``dtype`` of ``None`` serves at the training tier again; "float32"
        over a float64-trained advisor is the scale-out configuration: the
        encoder keeps its float64 weights (later ``fit`` / ``adapt_online``
        calls still train at full precision) while the RCS, the query
        embeddings and the embedding cache move to the fast tier.  On a
        fitted advisor the RCS is re-derived from the full-precision encoder
        and the cache generation re-stamps itself, so entries written at the
        old serving tier are never served at the new one.
        """
        if dtype is not None:
            dtype = np.dtype(dtype)
            if dtype.name not in ("float32", "float64"):
                raise ValueError(
                    f"unsupported serving precision tier {dtype.name!r}")
        effective_before = self.serving_dtype
        self.config.serving_dtype = None if dtype is None else dtype.name
        # Re-asserting the tier the node already serves at (e.g. `repro
        # serve --serving-dtype float32` on an advisor *saved* with that
        # tier) must stay a no-op: the reloaded RCS rows are already
        # correct, and re-embedding the corpus would throw away exactly the
        # warm start persistence provides.  The cache stamp folds the
        # *effective* tier, so it is unchanged too.
        if self.encoder is not None and self.serving_dtype != effective_before:
            self._invalidate_embedding_cache()
            if self._graphs:
                self._rebuild_rcs()
        return self

    def set_quantization(self, enabled: bool,
                         mode: str | None = None) -> "AutoCE":
        """Toggle the quantized candidate tier on the serving path.

        ``mode`` optionally re-pins the code layout: "auto" (flat int8 up
        to the exactness bound, product quantization for wider
        embeddings), "int8" or "pq".  When the resulting config values
        match what the attached store was built under, the call is a
        no-op — no codebook retraining, and the cache generation stamp
        (which folds in the quantization params and is unchanged by
        definition) survives.  Any value change re-selects and
        recalibrates the store and re-derives the stamp.
        """
        if mode is not None:
            # replace() re-runs QuantizationConfig.__post_init__, so the
            # mode validation lives in exactly one place.
            self.config.quantization = replace(self.config.quantization,
                                               mode=mode)
        self.config.quantization.enabled = bool(enabled)
        changed = True
        if self.rcs is not None:
            changed = self.rcs.set_quantization(self.config.quantization)
        if changed:
            self._invalidate_embedding_cache()
        return self

    # ------------------------------------------------------------------
    # Stage 4: recommendation
    # ------------------------------------------------------------------
    def _embed_graphs(self, graphs: list[FeatureGraph]) -> np.ndarray:
        """Embed graphs through the memo-cache; misses share one forward."""
        cache = self._serving_cache()
        if cache is None:
            return np.asarray(self.encoder.embed(graphs),
                              dtype=self.serving_dtype)
        out = np.empty((len(graphs), self.encoder.embedding_dim),
                       dtype=self.serving_dtype)
        miss_indices: list[int] = []
        keys = [graph.fingerprint() for graph in graphs]
        for i, key in enumerate(keys):
            hit = cache.get(key, MISSING)
            if hit is MISSING:
                miss_indices.append(i)
            else:
                out[i] = hit
        if miss_indices:
            # Duplicate datasets within one cold batch share one forward row.
            positions_by_key: dict[str, list[int]] = {}
            for i in miss_indices:
                positions_by_key.setdefault(keys[i], []).append(i)
            fresh = np.asarray(self.encoder.embed(
                [graphs[positions[0]]
                 for positions in positions_by_key.values()]),
                dtype=self.serving_dtype)
            for row, (key, positions) in zip(fresh, positions_by_key.items()):
                cache.put(key, row)
                for i in positions:
                    out[i] = row
        return out

    def embed(self, dataset: Dataset | FeatureGraph) -> np.ndarray:
        self._require_fitted()
        graph = dataset if isinstance(dataset, FeatureGraph) else self.featurize(dataset)
        return self._embed_graphs([graph])[0]

    def embed_many(self, datasets: list[Dataset] | list[FeatureGraph]
                   ) -> np.ndarray:
        """Batched query embedding: parallel featurization + one forward.

        The public half of :meth:`recommend_batch`, exposed so external
        serving paths (the sharded supervisor) can embed through the same
        memo-cache and then run their own neighbor search.
        """
        self._require_fitted()
        if not datasets:
            return np.zeros((0, self.encoder.embedding_dim),
                            dtype=self.serving_dtype)
        return self._embed_graphs(self.featurize_many(datasets))

    def recommend(self, dataset: Dataset | FeatureGraph,
                  accuracy_weight: float = 1.0,
                  k: int | None = None) -> Recommendation:
        """Select the best CE model for a dataset under the given weights.

        ``accuracy_weight`` is w_a of Eq. 2 (w_e = 1 − w_a): 1.0 asks for
        pure accuracy, 0.0 for pure inference efficiency.
        """
        self._require_fitted()
        embedding = self.embed(dataset)
        return self.predictor.recommend(embedding, self.rcs, accuracy_weight, k=k)

    def recommend_batch(self, datasets: list[Dataset] | list[FeatureGraph],
                        accuracy_weight: float = 1.0,
                        k: int | None = None) -> list[Recommendation]:
        """Batched serving: one GIN forward + one vectorized KNN for Q queries.

        Equivalent to ``[self.recommend(d, accuracy_weight, k) for d in
        datasets]`` but orders of magnitude cheaper at high throughput: raw
        datasets are featurized in parallel (``featurize_workers``), cache
        misses are embedded together in a single forward pass, and the KNN
        search runs one vectorized pass — exact below the ANN threshold, the
        LSH index above it.
        """
        self._require_fitted()
        if not datasets:
            return []
        return self.predictor.recommend_batch(
            self.embed_many(datasets), self.rcs, accuracy_weight, k=k)

    # ------------------------------------------------------------------
    # Online adapting (Sec. V-E)
    # ------------------------------------------------------------------
    def is_drifted(self, dataset: Dataset | FeatureGraph) -> bool:
        """True when the dataset falls outside the trained distribution."""
        self._require_fitted()
        return self.detector.is_drifted(self.embed(dataset), self.rcs)

    def adapt_online(self, dataset: Dataset | FeatureGraph,
                     label: ScoreLabel, update_epochs: int = 5) -> None:
        """Incorporate a freshly labeled drifted dataset (online learning)."""
        self._require_fitted()
        graph = dataset if isinstance(dataset, FeatureGraph) else self.featurize(dataset)
        adapter = OnlineAdapter(self.trainer, self.detector, update_epochs)
        adapter.adapt(graph, label, self._graphs, self._labels, self.rcs)
        if self.rcs.embeddings.dtype != self.serving_dtype:
            # Safety net only: the adapter refreshes the RCS on its own
            # tier, so this recast (a second full index re-probe and int8
            # requantization) runs only if the RCS somehow left the
            # configured serving tier.
            self.rcs.replace_embeddings(
                np.asarray(self.rcs.embeddings, dtype=self.serving_dtype))
        self._invalidate_embedding_cache()

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.encoder is None or self.rcs is None:
            raise RuntimeError("AutoCE is not fitted; call fit() first")
