"""AutoCE: the model advisor facade.

Ties together the four stages of Fig. 3: feature engineering (Stage 2.1),
DML-based graph-encoder learning (Stage 2), incremental learning with Mixup
(Stage 3), and the KNN recommendation (Stage 4), plus the online adapting
of Sec. V-E.

Typical usage::

    advisor = AutoCE()
    advisor.fit(datasets, labels)                 # labels from the testbed
    rec = advisor.recommend(new_dataset, accuracy_weight=0.9)
    rec.model                                     # e.g. "DeepDB"
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.schema import Dataset
from ..testbed.scores import ScoreLabel
from .dml import DMLConfig, DMLTrainer
from .encoder import GINEncoder
from .graph import DEFAULT_MAX_COLUMNS, FeatureGraph, build_feature_graph
from .incremental import IncrementalConfig, incremental_learning
from .online import DriftDetector, OnlineAdapter
from .predictor import (KNNPredictor, Recommendation,
                        RecommendationCandidateSet)


@dataclass
class AutoCEConfig:
    """All hyper-parameters of the advisor in one place."""

    max_columns: int = DEFAULT_MAX_COLUMNS
    hidden_dim: int = 96
    embedding_dim: int = 64
    num_layers: int = 2
    #: The paper's Table IV optimum is k = 2 on a 1 000-dataset corpus; on
    #: this reproduction's smaller default corpus a slightly larger
    #: neighborhood averages out label noise (see the Table IV bench).
    knn_k: int = 5
    dml: DMLConfig = field(default_factory=DMLConfig)
    incremental: IncrementalConfig = field(default_factory=IncrementalConfig)
    use_incremental: bool = True
    #: False = the "No Augmentation" ablation of Fig. 11(b).
    incremental_augment: bool = True
    seed: int = 0


class AutoCE:
    """The learned CE-model advisor (offline training, online prediction)."""

    def __init__(self, config: AutoCEConfig | None = None):
        self.config = config or AutoCEConfig()
        self.encoder: GINEncoder | None = None
        self.trainer: DMLTrainer | None = None
        self.rcs: RecommendationCandidateSet | None = None
        self.predictor = KNNPredictor(k=self.config.knn_k)
        self.detector = DriftDetector()
        self._graphs: list[FeatureGraph] = []
        self._labels: list[ScoreLabel] = []
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # Stage 2.1: feature engineering
    # ------------------------------------------------------------------
    def featurize(self, dataset: Dataset) -> FeatureGraph:
        return build_feature_graph(dataset, max_columns=self.config.max_columns)

    # ------------------------------------------------------------------
    # Stages 2–3: training
    # ------------------------------------------------------------------
    def fit(self, datasets: list[Dataset] | list[FeatureGraph],
            labels: list[ScoreLabel]) -> "AutoCE":
        """Train the advisor from labeled datasets (or prebuilt graphs)."""
        if len(datasets) != len(labels):
            raise ValueError("datasets and labels must align")
        graphs = [d if isinstance(d, FeatureGraph) else self.featurize(d)
                  for d in datasets]
        return self.fit_graphs(graphs, labels)

    def fit_graphs(self, graphs: list[FeatureGraph],
                   labels: list[ScoreLabel]) -> "AutoCE":
        config = self.config
        self._graphs = list(graphs)
        self._labels = list(labels)
        self.encoder = GINEncoder(
            vertex_dim=graphs[0].vertex_dim,
            hidden_dim=config.hidden_dim,
            embedding_dim=config.embedding_dim,
            num_layers=config.num_layers,
            seed=config.seed,
        )
        self.trainer = DMLTrainer(self.encoder, config.dml)
        self.loss_history = self.trainer.train(self._graphs, self._labels)
        if config.use_incremental and len(graphs) >= 2 * config.incremental.folds:
            incremental_learning(self.trainer, self._graphs, self._labels,
                                 config.incremental,
                                 augment=config.incremental_augment)
        self._rebuild_rcs()
        return self

    def _rebuild_rcs(self) -> None:
        embeddings = self.encoder.embed(self._graphs)
        self.rcs = RecommendationCandidateSet(embeddings, list(self._labels))

    # ------------------------------------------------------------------
    # Stage 4: recommendation
    # ------------------------------------------------------------------
    def embed(self, dataset: Dataset | FeatureGraph) -> np.ndarray:
        self._require_fitted()
        graph = dataset if isinstance(dataset, FeatureGraph) else self.featurize(dataset)
        return self.encoder.embed_one(graph)

    def recommend(self, dataset: Dataset | FeatureGraph,
                  accuracy_weight: float = 1.0,
                  k: int | None = None) -> Recommendation:
        """Select the best CE model for a dataset under the given weights.

        ``accuracy_weight`` is w_a of Eq. 2 (w_e = 1 − w_a): 1.0 asks for
        pure accuracy, 0.0 for pure inference efficiency.
        """
        self._require_fitted()
        embedding = self.embed(dataset)
        return self.predictor.recommend(embedding, self.rcs, accuracy_weight, k=k)

    # ------------------------------------------------------------------
    # Online adapting (Sec. V-E)
    # ------------------------------------------------------------------
    def is_drifted(self, dataset: Dataset | FeatureGraph) -> bool:
        """True when the dataset falls outside the trained distribution."""
        self._require_fitted()
        return self.detector.is_drifted(self.embed(dataset), self.rcs)

    def adapt_online(self, dataset: Dataset | FeatureGraph,
                     label: ScoreLabel, update_epochs: int = 5) -> None:
        """Incorporate a freshly labeled drifted dataset (online learning)."""
        self._require_fitted()
        graph = dataset if isinstance(dataset, FeatureGraph) else self.featurize(dataset)
        adapter = OnlineAdapter(self.trainer, self.detector, update_epochs)
        adapter.adapt(graph, label, self._graphs, self._labels, self.rcs)

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.encoder is None or self.rcs is None:
            raise RuntimeError("AutoCE is not fitted; call fit() first")
