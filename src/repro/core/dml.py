"""DML-based graph-encoder training (Algorithm 1).

Trains the GIN encoder so that datasets with similar CE-model performance
embed close together.  Each batch (i) computes pairwise label similarities
(Eq. 6), (ii) partitions pairs by the threshold τ (Eq. 7), (iii) encodes
the feature graphs, and (iv) descends the weighted contrastive loss
(Eq. 9).

One encoder must serve every metric-weight combination (Sec. IV-B2).  Two
protocols are provided: the default reproduces the paper — cycling one
weight combination per batch — while ``similarity="profile"`` derives
similarities from the full score profile (score vectors of all weights,
concatenated), giving every batch the same metric target (see the
DML-design ablation bench for the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..testbed.scores import ScoreLabel, WEIGHT_GRID
from ..utils.rng import rng_from_seed
from .encoder import GINEncoder
from .graph import FeatureGraph
from .losses import (basic_contrastive_loss, cosine_similarity_matrix,
                     weighted_contrastive_loss)


@dataclass
class DMLConfig:
    epochs: int = 80
    batch_size: int = 32
    lr: float = 2e-3
    tau: float = 0.95
    #: "quantile" (default) re-derives tau per batch as the ``tau_quantile``-th
    #: quantile of the batch's pairwise label similarities, keeping the
    #: positive/negative split (Eq. 7) informative at every weight
    #: combination; score-vector cosine similarities concentrate near 1, so
    #: a fixed tau can label nearly every pair positive and collapse the
    #: embedding.  "fixed" uses ``tau`` verbatim as in the paper's notation.
    tau_mode: str = "quantile"
    tau_quantile: float = 0.7
    gamma: float = 2.0
    #: Accuracy-weight combinations the encoder must serve (Sec. IV-B2).
    weights: tuple[float, ...] = WEIGHT_GRID
    #: How batch label similarities are derived from those combinations:
    #: "weight_cycle" (default, the paper's protocol) cycles one weight
    #: combination per batch; "profile" takes the cosine over the
    #: *concatenated* score vectors of every weight — one consistent metric
    #: target (compared in the DML-design ablation bench).
    similarity: str = "weight_cycle"
    #: "weighted" (Eq. 9) or "basic" (Eq. 10, the Fig. 7 ablation).
    loss: str = "weighted"
    grad_clip: float = 5.0
    seed: int = 0


class DMLTrainer:
    """Runs Algorithm 1 over a labeled corpus of feature graphs."""

    def __init__(self, encoder: GINEncoder, config: DMLConfig | None = None):
        self.encoder = encoder
        self.config = config or DMLConfig()
        if self.config.loss not in ("weighted", "basic"):
            raise ValueError(f"unknown loss {self.config.loss!r}")
        if self.config.tau_mode not in ("fixed", "quantile"):
            raise ValueError(f"unknown tau_mode {self.config.tau_mode!r}")
        if self.config.similarity not in ("profile", "weight_cycle"):
            raise ValueError(f"unknown similarity {self.config.similarity!r}")
        self._optimizer = nn.Adam(encoder.parameters(), lr=self.config.lr)

    def _profile_vectors(self, labels: list[ScoreLabel]) -> np.ndarray:
        """Concatenated score vectors over the whole weight grid: [n, w·m]."""
        return np.stack([
            np.concatenate([label.score_vector(w) for w in self.config.weights])
            for label in labels
        ])

    def _effective_tau(self, sims: np.ndarray) -> float:
        """The threshold of Eq. 7 for one batch (fixed or per-batch quantile)."""
        if self.config.tau_mode == "fixed":
            return self.config.tau
        off_diagonal = sims[~np.eye(len(sims), dtype=bool)]
        return float(np.quantile(off_diagonal, self.config.tau_quantile))

    def _loss_fn(self, embeddings: nn.Tensor, sims: np.ndarray) -> nn.Tensor:
        tau = self._effective_tau(sims)
        if self.config.loss == "weighted":
            return weighted_contrastive_loss(
                embeddings, sims, tau=tau, gamma=self.config.gamma)
        return basic_contrastive_loss(
            embeddings, sims, tau=tau, gamma=self.config.gamma)

    def train(self, graphs: list[FeatureGraph], labels: list[ScoreLabel],
              epochs: int | None = None) -> list[float]:
        """Train the encoder; returns mean loss per epoch."""
        if len(graphs) != len(labels):
            raise ValueError("graphs and labels must align")
        if len(graphs) < 2:
            raise ValueError("DML needs at least two labeled graphs")
        config = self.config
        rng = rng_from_seed(config.seed)
        n = len(graphs)
        history: list[float] = []
        weight_cycle = list(config.weights)
        profiles = (self._profile_vectors(labels)
                    if config.similarity == "profile" else None)
        step = 0
        for _ in range(epochs if epochs is not None else config.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, config.batch_size):
                idx = order[start:start + config.batch_size]
                if len(idx) < 2:
                    continue
                batch_graphs = [graphs[i] for i in idx]
                if profiles is not None:
                    batch_labels = profiles[idx]
                else:
                    accuracy_weight = weight_cycle[step % len(weight_cycle)]
                    batch_labels = np.stack(
                        [labels[i].score_vector(accuracy_weight) for i in idx])
                step += 1
                sims = cosine_similarity_matrix(batch_labels)
                embeddings = self.encoder.encode_batch(batch_graphs)
                loss = self._loss_fn(embeddings, sims)
                self._optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.encoder.parameters(), config.grad_clip)
                self._optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            history.append(epoch_loss / max(1, batches))
        self.encoder.eval()
        return history
