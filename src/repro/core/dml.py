"""DML-based graph-encoder training (Algorithm 1).

Trains the GIN encoder so that datasets with similar CE-model performance
embed close together.  Each batch (i) computes pairwise label similarities
(Eq. 6), (ii) partitions pairs by the threshold τ (Eq. 7), (iii) encodes
the feature graphs, and (iv) descends the weighted contrastive loss
(Eq. 9).

One encoder must serve every metric-weight combination (Sec. IV-B2).  Two
protocols are provided: the default reproduces the paper — cycling one
weight combination per batch — while ``similarity="profile"`` derives
similarities from the full score profile (score vectors of all weights,
concatenated), giving every batch the same metric target (see the
DML-design ablation bench for the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..testbed.scores import ScoreLabel, WEIGHT_GRID
from ..utils.rng import rng_from_seed
from .encoder import GINEncoder
from .graph import FeatureGraph, GraphTensorBatcher
from .losses import basic_contrastive_loss, weighted_contrastive_loss

#: Memoized flat indices of the off-diagonal entries of an m×m matrix.
_OFF_DIAGONAL_CACHE: dict[int, np.ndarray] = {}


def _off_diagonal_indices(m: int) -> np.ndarray:
    indices = _OFF_DIAGONAL_CACHE.get(m)
    if indices is None:
        indices = np.flatnonzero(~np.eye(m, dtype=bool))
        _OFF_DIAGONAL_CACHE[m] = indices
    return indices


@dataclass
class DMLConfig:
    epochs: int = 80
    batch_size: int = 32
    lr: float = 2e-3
    tau: float = 0.95
    #: "quantile" (default) re-derives tau per batch as the ``tau_quantile``-th
    #: quantile of the batch's pairwise label similarities, keeping the
    #: positive/negative split (Eq. 7) informative at every weight
    #: combination; score-vector cosine similarities concentrate near 1, so
    #: a fixed tau can label nearly every pair positive and collapse the
    #: embedding.  "fixed" uses ``tau`` verbatim as in the paper's notation.
    tau_mode: str = "quantile"
    tau_quantile: float = 0.7
    gamma: float = 2.0
    #: Accuracy-weight combinations the encoder must serve (Sec. IV-B2).
    weights: tuple[float, ...] = WEIGHT_GRID
    #: How batch label similarities are derived from those combinations:
    #: "weight_cycle" (default, the paper's protocol) cycles one weight
    #: combination per batch; "profile" takes the cosine over the
    #: *concatenated* score vectors of every weight — one consistent metric
    #: target (compared in the DML-design ablation bench).
    similarity: str = "weight_cycle"
    #: "weighted" (Eq. 9) or "basic" (Eq. 10, the Fig. 7 ablation).
    loss: str = "weighted"
    grad_clip: float = 5.0
    #: Fast path: pad + stack the whole corpus into tensors once per
    #: ``train()`` (pre-symmetrized adjacency included) and slice index
    #: arrays per batch, instead of re-running ``batch_graphs`` every step.
    #: Numerically equivalent to the per-batch path (``False``), which is
    #: kept as the reference for the equivalence tests.
    use_tensor_cache: bool = True
    seed: int = 0


class DMLTrainer:
    """Runs Algorithm 1 over a labeled corpus of feature graphs."""

    def __init__(self, encoder: GINEncoder, config: DMLConfig | None = None) -> None:
        self.encoder = encoder
        self.config = config or DMLConfig()
        if self.config.loss not in ("weighted", "basic"):
            raise ValueError(f"unknown loss {self.config.loss!r}")
        if self.config.tau_mode not in ("fixed", "quantile"):
            raise ValueError(f"unknown tau_mode {self.config.tau_mode!r}")
        if self.config.similarity not in ("profile", "weight_cycle"):
            raise ValueError(f"unknown similarity {self.config.similarity!r}")
        self._optimizer = nn.Adam(encoder.parameters(), lr=self.config.lr)

    def _profile_vectors(self, labels: list[ScoreLabel]) -> np.ndarray:
        """Concatenated score vectors over the whole weight grid: [n, w·m]."""
        return np.stack([
            np.concatenate([label.score_vector(w) for w in self.config.weights])
            for label in labels
        ])

    def _effective_tau(self, sims: np.ndarray) -> float:
        """The threshold of Eq. 7 for one batch (fixed or per-batch quantile)."""
        if self.config.tau_mode == "fixed":
            return self.config.tau
        off_diagonal = sims.ravel()[_off_diagonal_indices(len(sims))]
        # np.quantile's "linear" method via two-pivot argpartition — O(n)
        # instead of np.quantile's much slower general machinery.
        position = self.config.tau_quantile * (len(off_diagonal) - 1)
        lo = int(position)
        hi = min(lo + 1, len(off_diagonal) - 1)
        part = np.partition(off_diagonal, (lo, hi))
        return float(part[lo] + (part[hi] - part[lo]) * (position - lo))

    def _loss_fn(self, embeddings: nn.Tensor, sims: np.ndarray) -> nn.Tensor:
        tau = self._effective_tau(sims)
        if self.config.loss == "weighted":
            return weighted_contrastive_loss(
                embeddings, sims, tau=tau, gamma=self.config.gamma)
        return basic_contrastive_loss(
            embeddings, sims, tau=tau, gamma=self.config.gamma)

    def train(self, graphs: list[FeatureGraph], labels: list[ScoreLabel],
              epochs: int | None = None) -> list[float]:
        """Train the encoder; returns mean loss per epoch."""
        if len(graphs) != len(labels):
            raise ValueError("graphs and labels must align")
        if len(graphs) < 2:
            raise ValueError("DML needs at least two labeled graphs")
        config = self.config
        rng = rng_from_seed(config.seed)
        n = len(graphs)
        history: list[float] = []
        weight_cycle = list(config.weights)
        profiles = (self._profile_vectors(labels)
                    if config.similarity == "profile" else None)
        # Memoize the per-weight *normalized* score matrices for the weight
        # cycle: each weight's [n, m] unit-row matrix is built once per
        # train() (on first use), so per-batch label similarities reduce to a
        # slice + one small GEMM (row-wise normalization commutes with
        # row slicing, keeping Eq. 6 bit-identical).
        normed_table: dict[float, np.ndarray] = {}

        def weight_normed(w: float) -> np.ndarray:
            matrix = normed_table.get(w)
            if matrix is None:
                matrix = np.stack([label.score_vector(w) for label in labels])
                norms = np.sqrt((matrix * matrix).sum(axis=1, keepdims=True))
                matrix /= np.maximum(norms, 1e-12)
                normed_table[w] = matrix
            return matrix

        if profiles is not None:
            norms = np.sqrt((profiles * profiles).sum(axis=1, keepdims=True))
            profiles = profiles / np.maximum(norms, 1e-12)
        # The tensor cache is built on the encoder's precision tier, so a
        # float32 encoder trains against float32 corpus tensors end-to-end.
        batcher = (GraphTensorBatcher(graphs, dtype=self.encoder.dtype)
                   if config.use_tensor_cache else None)
        encoder = self.encoder
        optimizer = self._optimizer
        loss_fn = self._loss_fn
        batch_size = config.batch_size
        grad_clip = config.grad_clip
        step = 0
        for _ in range(epochs if epochs is not None else config.epochs):
            order = rng.permutation(n)
            if batcher is not None:
                # One gather for the whole epoch; batches below are views.
                epoch_v, epoch_a, epoch_m = batcher.slice(order)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                stop = start + batch_size
                idx = order[start:stop]
                if len(idx) < 2:
                    continue
                if profiles is not None:
                    batch_normed = profiles[idx]
                else:
                    accuracy_weight = weight_cycle[step % len(weight_cycle)]
                    batch_normed = weight_normed(accuracy_weight)[idx]
                step += 1
                sims = np.clip(batch_normed @ batch_normed.T, -1.0, 1.0)
                if batcher is not None:
                    embeddings = encoder.forward_adjacency(
                        epoch_v[start:stop], epoch_a[start:stop],
                        epoch_m[start:stop])
                else:
                    embeddings = encoder.encode_batch(
                        [graphs[i] for i in idx])
                loss = loss_fn(embeddings, sims)
                optimizer.zero_grad()
                loss.backward()
                # Clipping is folded into the optimizer's flat-gradient pass.
                optimizer.step(grad_clip=grad_clip)
                epoch_loss += loss.item()
                batches += 1
            history.append(epoch_loss / max(1, batches))
        self.encoder.eval()
        return history
