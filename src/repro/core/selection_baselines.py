"""The four model-selection baselines of Sec. VII-A.

* :class:`MLPSelector` — GIN + 3-layer MLP head trained as a classifier
  with cross-entropy on the per-weight optimal model.
* :class:`RuleSelector` — the heuristic from the empirical studies: random
  data-driven model for single-table datasets, random query-driven model
  for multi-table datasets.
* :class:`RawFeatureKnnSelector` — KNN directly on raw (flattened) feature
  graphs, skipping the learned embedding.
* :class:`SamplingSelector` — online learning on a sample of the target
  dataset: trains and tests every candidate CE model on the sample.
* :class:`LearningAllSelector` — online learning on the full dataset (the
  "LA" method of Fig. 12); by construction near-optimal but slowest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..ce.registry import CANDIDATE_MODELS, DATA_DRIVEN_MODELS, QUERY_DRIVEN_MODELS
from ..db.sampling import subsample_dataset
from ..db.schema import Dataset
from ..testbed.runner import TestbedConfig, run_testbed
from ..testbed.scores import ScoreLabel, WEIGHT_GRID
from ..utils.rng import rng_from_seed
from .encoder import GINEncoder
from .graph import FeatureGraph, batch_graphs, build_feature_graph


class SelectionBaseline:
    """Interface: fit on labeled graphs, recommend for a feature graph."""

    name: str = "abstract"

    def fit(self, graphs: list[FeatureGraph], labels: list[ScoreLabel]) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def recommend(self, graph: FeatureGraph, accuracy_weight: float) -> str:
        raise NotImplementedError  # pragma: no cover - abstract


class MLPSelector(SelectionBaseline):
    """GIN encoder + MLP classification head (cross-entropy)."""

    name = "MLP"

    def __init__(self, hidden_dim: int = 64, embedding_dim: int = 32,
                 epochs: int = 60, batch_size: int = 32, lr: float = 2e-3,
                 seed: int = 0) -> None:
        self.hidden_dim = hidden_dim
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.encoder: GINEncoder | None = None
        self.head: nn.MLP | None = None
        self.model_names: tuple[str, ...] = ()

    def fit(self, graphs: list[FeatureGraph], labels: list[ScoreLabel]) -> None:
        rng = rng_from_seed(self.seed)
        self.model_names = labels[0].model_names
        num_models = len(self.model_names)
        self.encoder = GINEncoder(graphs[0].vertex_dim, self.hidden_dim,
                                  self.embedding_dim, seed=self.seed)
        # Head input: embedding + the metric weight (w_a, w_e).
        self.head = nn.MLP([self.embedding_dim + 2, self.hidden_dim,
                            self.hidden_dim // 2, num_models], rng)
        params = self.encoder.parameters() + self.head.parameters()
        optimizer = nn.Adam(params, lr=self.lr)
        n = len(graphs)
        weight_cycle = list(WEIGHT_GRID)
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                if len(idx) < 2:
                    continue
                accuracy_weight = weight_cycle[step % len(weight_cycle)]
                step += 1
                batch = [graphs[i] for i in idx]
                targets = np.array([
                    labels[i].index_of(labels[i].best_model(accuracy_weight))
                    for i in idx])
                embeddings = self.encoder.encode_batch(batch)
                weight_cols = np.tile([accuracy_weight, 1.0 - accuracy_weight],
                                      (len(idx), 1))
                head_in = nn.concatenate(
                    [embeddings, nn.Tensor(weight_cols)], axis=1)
                logits = self.head(head_in)
                loss = nn.cross_entropy(logits, targets)
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
        self.encoder.eval()
        self.head.eval()

    def recommend(self, graph: FeatureGraph, accuracy_weight: float) -> str:
        with nn.no_grad():
            embedding = self.encoder.encode_batch([graph])
            weight_cols = np.array([[accuracy_weight, 1.0 - accuracy_weight]])
            logits = self.head(
                nn.concatenate([embedding, nn.Tensor(weight_cols)], axis=1))
        return self.model_names[int(np.argmax(logits.numpy()[0]))]


class RegressionSelector(SelectionBaseline):
    """AutoCE (Without DML): GIN + fully-connected head, MSE on score vectors.

    The Fig. 11(a) ablation: the same graph encoder trained end-to-end to
    *regress* the score vector (L = Σ ||ŷ − y||²) instead of learning a
    similarity-aware metric space; recommendation is argmax(ŷ).
    """

    name = "Without-DML"

    def __init__(self, hidden_dim: int = 64, embedding_dim: int = 32,
                 epochs: int = 60, batch_size: int = 32, lr: float = 2e-3,
                 seed: int = 0) -> None:
        self.hidden_dim = hidden_dim
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.encoder: GINEncoder | None = None
        self.head: nn.MLP | None = None
        self.model_names: tuple[str, ...] = ()

    def fit(self, graphs: list[FeatureGraph], labels: list[ScoreLabel]) -> None:
        rng = rng_from_seed(self.seed)
        self.model_names = labels[0].model_names
        num_models = len(self.model_names)
        self.encoder = GINEncoder(graphs[0].vertex_dim, self.hidden_dim,
                                  self.embedding_dim, seed=self.seed)
        self.head = nn.MLP([self.embedding_dim + 2, self.hidden_dim,
                            self.hidden_dim // 2, num_models], rng,
                           output_activation="sigmoid")
        params = self.encoder.parameters() + self.head.parameters()
        optimizer = nn.Adam(params, lr=self.lr)
        n = len(graphs)
        weight_cycle = list(WEIGHT_GRID)
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                if len(idx) < 2:
                    continue
                accuracy_weight = weight_cycle[step % len(weight_cycle)]
                step += 1
                batch = [graphs[i] for i in idx]
                targets = np.stack([labels[i].score_vector(accuracy_weight)
                                    for i in idx])
                embeddings = self.encoder.encode_batch(batch)
                weight_cols = np.tile([accuracy_weight, 1.0 - accuracy_weight],
                                      (len(idx), 1))
                predicted = self.head(nn.concatenate(
                    [embeddings, nn.Tensor(weight_cols)], axis=1))
                loss = nn.mse_loss(predicted, targets)
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
        self.encoder.eval()
        self.head.eval()

    def recommend(self, graph: FeatureGraph, accuracy_weight: float) -> str:
        with nn.no_grad():
            embedding = self.encoder.encode_batch([graph])
            weight_cols = np.array([[accuracy_weight, 1.0 - accuracy_weight]])
            predicted = self.head(
                nn.concatenate([embedding, nn.Tensor(weight_cols)], axis=1))
        return self.model_names[int(np.argmax(predicted.numpy()[0]))]


class RuleSelector(SelectionBaseline):
    """Heuristic rules from prior empirical studies (Sec. VII-A)."""

    name = "Rule"

    def __init__(self, seed: int = 0) -> None:
        self._rng = rng_from_seed(seed)
        self.model_names: tuple[str, ...] = tuple(CANDIDATE_MODELS)

    def fit(self, graphs: list[FeatureGraph], labels: list[ScoreLabel]) -> None:
        self.model_names = labels[0].model_names

    def recommend(self, graph: FeatureGraph, accuracy_weight: float) -> str:
        single_table = graph.num_tables == 1
        pool = DATA_DRIVEN_MODELS if single_table else QUERY_DRIVEN_MODELS
        pool = [m for m in pool if m in self.model_names] or list(self.model_names)
        return pool[int(self._rng.integers(0, len(pool)))]


class RawFeatureKnnSelector(SelectionBaseline):
    """KNN over raw feature vectors (no learned embedding)."""

    name = "Knn"

    def __init__(self, k: int = 2) -> None:
        self.k = k
        self._features: np.ndarray | None = None
        self._labels: list[ScoreLabel] = []

    def fit(self, graphs: list[FeatureGraph], labels: list[ScoreLabel]) -> None:
        n_max = max(g.num_tables for g in graphs)
        self._pad_to = n_max
        self._features = np.stack([g.padded(n_max).flat() for g in graphs])
        self._labels = list(labels)

    def recommend(self, graph: FeatureGraph, accuracy_weight: float) -> str:
        padded = graph.padded(max(self._pad_to, graph.num_tables))
        vector = padded.flat()
        features = self._features
        if len(vector) != features.shape[1]:
            # Align dimensions when the target has more tables than training.
            width = max(len(vector), features.shape[1])
            features = np.pad(features, ((0, 0), (0, width - features.shape[1])))
            vector = np.pad(vector, (0, width - len(vector)))
        distances = np.sqrt(((features - vector) ** 2).sum(axis=1))
        nearest = np.argsort(distances, kind="stable")[:min(self.k, len(distances))]
        score = np.mean([self._labels[i].score_vector(accuracy_weight)
                         for i in nearest], axis=0)
        return self._labels[0].model_names[int(np.argmax(score))]


@dataclass
class OnlineSelectorConfig:
    """Testbed budget for the online (Sampling / Learning-All) selectors."""

    sample_fraction: float = 0.3
    testbed: TestbedConfig = field(default_factory=lambda: TestbedConfig(
        num_train_queries=120, num_test_queries=30, sample_size=800))
    seed: int = 0


class SamplingSelector(SelectionBaseline):
    """Online learning on a sample: train & test all CE models per dataset.

    Unlike the learned selectors it needs the *dataset*, not its feature
    graph — selection cost is dominated by CE-model training, which is the
    overhead Fig. 12 quantifies.  Labels are memoized per dataset name so
    that evaluating several metric weights pays the training cost once.
    """

    name = "Sampling"

    def __init__(self, config: OnlineSelectorConfig | None = None) -> None:
        self.config = config or OnlineSelectorConfig()
        self._label_cache: dict[str, ScoreLabel] = {}

    def fit(self, graphs: list[FeatureGraph], labels: list[ScoreLabel]) -> None:
        pass  # Online method: nothing to train offline.

    def recommend(self, graph: FeatureGraph, accuracy_weight: float) -> str:
        raise TypeError("SamplingSelector needs the dataset; use recommend_dataset")

    def label_dataset(self, dataset: Dataset) -> ScoreLabel:
        if dataset.name not in self._label_cache:
            sample = subsample_dataset(dataset, self.config.sample_fraction,
                                       seed=self.config.seed)
            self._label_cache[dataset.name] = run_testbed(
                sample, config=self.config.testbed)
        return self._label_cache[dataset.name]

    def recommend_dataset(self, dataset: Dataset, accuracy_weight: float) -> str:
        return self.label_dataset(dataset).best_model(accuracy_weight)


class LearningAllSelector(SelectionBaseline):
    """Online learning on the full dataset (the LA method of Fig. 12)."""

    name = "Learning-All"

    def __init__(self, config: OnlineSelectorConfig | None = None) -> None:
        self.config = config or OnlineSelectorConfig()
        self._label_cache: dict[str, ScoreLabel] = {}

    def fit(self, graphs: list[FeatureGraph], labels: list[ScoreLabel]) -> None:
        pass  # Online method: nothing to train offline.

    def recommend(self, graph: FeatureGraph, accuracy_weight: float) -> str:
        raise TypeError("LearningAllSelector needs the dataset; use recommend_dataset")

    def label_dataset(self, dataset: Dataset) -> ScoreLabel:
        if dataset.name not in self._label_cache:
            self._label_cache[dataset.name] = run_testbed(
                dataset, config=self.config.testbed)
        return self._label_cache[dataset.name]

    def recommend_dataset(self, dataset: Dataset, accuracy_weight: float) -> str:
        return self.label_dataset(dataset).best_model(accuracy_weight)
