"""AutoCE core: feature graphs, GIN encoder, deep metric learning,
incremental learning, KNN recommendation and online adaptation."""

from .features import (column_features, column_features_matrix,
                       equality_correlation_matrix, table_feature_vector,
                       table_feature_vector_reference,
                       join_correlation_matrix, vertex_dimension,
                       FEATURES_PER_COLUMN)
from .graph import (FeatureGraph, GraphTensorBatcher, build_feature_graph,
                    build_feature_graph_reference, batch_graphs,
                    DEFAULT_MAX_COLUMNS)
from .encoder import GINEncoder, GINLayer
from .losses import (weighted_contrastive_loss, basic_contrastive_loss,
                     cosine_similarity_matrix, positive_negative_masks,
                     pairwise_distances, pair_weights)
from .dml import DMLConfig, DMLTrainer
from .serving import (ANNConfig, ANNIndex, E2LSHConfig, E2LSHIndex,
                      ExactIndex, INT8_EXACT_MAX_DIM, KNNPredictor,
                      NeighborIndex, PQStore,
                      QuantizationConfig, QuantizedStore,
                      Recommendation, RecommendationCandidateSet,
                      candidate_scan, exact_search,
                      quantized_distances_int32_reference,
                      rerank_candidates, seeded_kmeans,
                      select_neighbor_index, select_quantizer,
                      squared_distance_matrix, top_k_neighbors)
from .incremental import (IncrementalConfig, AugmentationResult,
                          collect_feedback, augment_with_mixup,
                          incremental_learning)
from .online import DriftDetector, OnlineAdapter
from .advisor import AutoCE, AutoCEConfig
from .persistence import save_advisor, load_advisor, FORMAT_VERSION
from .selection_baselines import (SelectionBaseline, MLPSelector, RuleSelector,
                                  RawFeatureKnnSelector, SamplingSelector,
                                  LearningAllSelector, OnlineSelectorConfig)

__all__ = [
    "column_features", "column_features_matrix", "equality_correlation_matrix",
    "table_feature_vector", "table_feature_vector_reference",
    "join_correlation_matrix", "vertex_dimension", "FEATURES_PER_COLUMN",
    "FeatureGraph", "GraphTensorBatcher", "build_feature_graph",
    "build_feature_graph_reference", "batch_graphs", "DEFAULT_MAX_COLUMNS",
    "GINEncoder", "GINLayer",
    "weighted_contrastive_loss", "basic_contrastive_loss",
    "cosine_similarity_matrix", "positive_negative_masks",
    "pairwise_distances", "pair_weights",
    "DMLConfig", "DMLTrainer",
    "ANNConfig", "ANNIndex", "E2LSHConfig", "E2LSHIndex", "ExactIndex",
    "KNNPredictor", "NeighborIndex",
    "INT8_EXACT_MAX_DIM", "PQStore", "QuantizationConfig", "QuantizedStore",
    "Recommendation", "RecommendationCandidateSet", "candidate_scan",
    "exact_search", "quantized_distances_int32_reference",
    "rerank_candidates", "seeded_kmeans", "select_neighbor_index",
    "select_quantizer", "squared_distance_matrix", "top_k_neighbors",
    "IncrementalConfig", "AugmentationResult", "collect_feedback",
    "augment_with_mixup", "incremental_learning",
    "DriftDetector", "OnlineAdapter",
    "AutoCE", "AutoCEConfig",
    "save_advisor", "load_advisor", "FORMAT_VERSION",
    "SelectionBaseline", "MLPSelector", "RuleSelector",
    "RawFeatureKnnSelector", "SamplingSelector", "LearningAllSelector",
    "OnlineSelectorConfig",
]
