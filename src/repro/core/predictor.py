"""KNN-based model recommendation (Sec. V-D, Eq. 13).

The recommendation candidate set (RCS, Def. 5) holds the embeddings of all
labeled datasets.  For a target dataset AutoCE embeds its feature graph,
finds the k nearest labeled embeddings, averages their score vectors under
the user's metric weights and recommends the top-scoring model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..testbed.scores import ScoreLabel


@dataclass
class Recommendation:
    """Outcome of one AutoCE recommendation."""

    model: str
    score_vector: np.ndarray
    model_names: tuple[str, ...]
    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray

    def ranking(self) -> list[tuple[str, float]]:
        order = np.argsort(-self.score_vector)
        return [(self.model_names[i], float(self.score_vector[i])) for i in order]


class RecommendationCandidateSet:
    """Def. 5: labeled embeddings (X, Y) searched by the KNN predictor."""

    def __init__(self, embeddings: np.ndarray | None = None,
                 labels: list[ScoreLabel] | None = None):
        self.embeddings = (np.zeros((0, 0)) if embeddings is None
                           else np.asarray(embeddings, dtype=np.float64))
        self.labels: list[ScoreLabel] = list(labels or [])
        if len(self.embeddings) != len(self.labels):
            raise ValueError("embeddings and labels must align")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def model_names(self) -> tuple[str, ...]:
        if not self.labels:
            raise ValueError("empty RCS")
        return self.labels[0].model_names

    def add(self, embedding: np.ndarray, label: ScoreLabel) -> None:
        embedding = np.asarray(embedding, dtype=np.float64)[None, :]
        if len(self.labels) == 0:
            self.embeddings = embedding
        else:
            self.embeddings = np.vstack([self.embeddings, embedding])
        self.labels.append(label)

    def replace_embeddings(self, embeddings: np.ndarray) -> None:
        """Refresh stored embeddings after the encoder is retrained."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if len(embeddings) != len(self.labels):
            raise ValueError("embedding count must match labels")
        self.embeddings = embeddings

    def nearest_neighbor_distances(self) -> np.ndarray:
        """Distance of each member to its nearest other member."""
        if len(self) < 2:
            return np.zeros(len(self))
        diff = self.embeddings[:, None, :] - self.embeddings[None, :, :]
        distances = np.sqrt((diff ** 2).sum(axis=2))
        np.fill_diagonal(distances, np.inf)
        return distances.min(axis=1)


class KNNPredictor:
    """Eq. 13: average the k nearest labels and pick the top ranker.

    The paper finds k = 2 optimal (Table IV); that is the default.
    """

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def recommend(self, embedding: np.ndarray, rcs: RecommendationCandidateSet,
                  accuracy_weight: float, k: int | None = None) -> Recommendation:
        if len(rcs) == 0:
            raise ValueError("cannot recommend from an empty RCS")
        k = k if k is not None else self.k
        k = min(k, len(rcs))
        distances = np.sqrt(((rcs.embeddings - embedding) ** 2).sum(axis=1))
        nearest = np.argsort(distances, kind="stable")[:k]
        score = np.mean(
            [rcs.labels[i].score_vector(accuracy_weight) for i in nearest], axis=0)
        names = rcs.model_names
        return Recommendation(
            model=names[int(np.argmax(score))],
            score_vector=score,
            model_names=names,
            neighbor_indices=nearest,
            neighbor_distances=distances[nearest],
        )
