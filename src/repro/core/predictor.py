"""KNN-based model recommendation (Sec. V-D, Eq. 13).

The recommendation candidate set (RCS, Def. 5) holds the embeddings of all
labeled datasets.  For a target dataset AutoCE embeds its feature graph,
finds the k nearest labeled embeddings, averages their score vectors under
the user's metric weights and recommends the top-scoring model.

Serving fast path: all pairwise distances go through the Gram-matrix
identity ``‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b`` (no O(n²·d) broadcast tensor),
neighbor selection uses ``argpartition`` plus a partial sort of the top-k
instead of a full sort, and :meth:`KNNPredictor.recommend_batch` serves many
queries against one ``[Q, N]`` distance matrix at once.

Scale-out serving: neighbor search is abstracted behind the
:class:`NeighborIndex` protocol.  :class:`ExactIndex` is the exhaustive
Gram-identity search; :class:`ANNIndex` is a random-hyperplane LSH with
multi-probe bucket expansion and exact re-ranking of the candidate pool,
for RCS sizes (CardBench scale — thousands of labeled datasets) where the
full ``[Q, N]`` scan dominates serving latency.  The RCS selects the ANN
index automatically once its size crosses ``ANNConfig.threshold`` and keeps
it fresh incrementally on :meth:`RecommendationCandidateSet.add` /
:meth:`RecommendationCandidateSet.replace_embeddings`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..testbed.scores import ScoreLabel


def squared_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances [Q, N] via the Gram identity.

    ``‖a‖² + ‖b‖² − 2·a·b`` avoids materializing the O(Q·N·d) difference
    tensor; numerical noise is clipped at zero.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    sq = ((a * a).sum(axis=1)[:, None] + (b * b).sum(axis=1)[None, :]
          - 2.0 * (a @ b.T))
    return np.maximum(sq, 0.0)


def top_k_neighbors(distances: np.ndarray, k: int) -> np.ndarray:
    """Top-k nearest indices per row of a [Q, N] distance matrix.

    ``argpartition`` selects the k candidates in O(N), then only those k are
    sorted.  Distance ties — including ties straddling the k boundary, where
    ``argpartition`` alone may pick an arbitrary tied member — are broken by
    lowest index, so the result matches a full ``argsort(kind="stable")[:k]``
    exactly.
    """
    distances = np.atleast_2d(distances)
    q, n = distances.shape
    k = min(k, n)
    if k >= n:
        part = np.broadcast_to(np.arange(n), (q, n))
        order = np.lexsort((part, distances), axis=1)
        return np.take_along_axis(np.ascontiguousarray(part), order, axis=1)
    part = np.argpartition(distances, k - 1, axis=1)[:, :k]
    # The k-th smallest value bounds the selection; keep everything strictly
    # closer and fill the remainder with the lowest-index boundary ties.
    boundary = np.take_along_axis(distances, part, axis=1).max(
        axis=1, keepdims=True)
    closer = distances < boundary
    need = k - closer.sum(axis=1)
    ties = distances == boundary
    tie_rank = np.cumsum(ties, axis=1)
    selected = closer | (ties & (tie_rank <= need[:, None]))
    idx = np.nonzero(selected)[1].reshape(q, k)
    order = np.lexsort((idx, np.take_along_axis(distances, idx, axis=1)),
                       axis=1)
    return np.take_along_axis(idx, order, axis=1)


def exact_search(queries: np.ndarray, embeddings: np.ndarray,
                 k: int) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustive k-NN: ([Q, k] indices, [Q, k] Euclidean distances)."""
    distances = np.sqrt(squared_distance_matrix(queries, embeddings))
    nearest = top_k_neighbors(distances, k)
    return nearest, np.take_along_axis(distances, nearest, axis=1)


@runtime_checkable
class NeighborIndex(Protocol):
    """Shared protocol of the exact and approximate serving indexes.

    ``embeddings`` in :meth:`search` is always the *live* RCS matrix — the
    index only accelerates candidate selection and re-ranks against the
    source of truth, so it never has to copy (or risk serving stale copies
    of) the embedding rows themselves.
    """

    def rebuild(self, embeddings: np.ndarray) -> None:
        """(Re)index the full [N, d] embedding matrix."""

    def add(self, embedding: np.ndarray) -> None:
        """Index one appended row without re-hashing the existing corpus."""

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """([Q, k] neighbor indices, [Q, k] Euclidean distances)."""


class ExactIndex:
    """The exhaustive Gram-identity search behind the index protocol."""

    def rebuild(self, embeddings: np.ndarray) -> None:
        pass

    def add(self, embedding: np.ndarray) -> None:
        pass

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        return exact_search(queries, embeddings, k)


@dataclass
class ANNConfig:
    """Random-hyperplane LSH parameters for the approximate serving index."""

    #: RCS size at which the advisor switches from exact to ANN search
    #: (0 disables ANN entirely).
    threshold: int = 1024
    #: Independent hash tables; more tables = higher recall, more probes.
    num_tables: int = 8
    #: Hyperplanes (signature bits) per table; 0 = auto-size from the
    #: indexed corpus size at rebuild time.
    num_bits: int = 0
    #: Extra buckets probed per table, flipping the signature bits whose
    #: projection margin is smallest (the classic multi-probe heuristic).
    num_probes: int = 4
    #: Queries whose probed candidate pool is smaller than this fall back to
    #: the exact search — the recall safety net for sparse bucket regions.
    min_candidates: int = 16
    #: Queries whose probed candidate pool exceeds this also fall back to
    #: the exact scan: a pool that large means the hash sees no locality to
    #: exploit, and one dense query must not widen the whole batch's padded
    #: re-rank matrix (0 = never).
    max_candidates: int = 1024
    #: PCA-whiten embeddings before hashing (re-ranking always uses the raw
    #: distances).  Graph-encoder embeddings concentrate most variance in
    #: very few directions — sum pooling makes "corpus size along the mean
    #: activation ray" dominant — and sign-of-projection hashes are blind
    #: along a dominant axis unless the cloud is equalized first.
    whiten: bool = True
    seed: int = 0


class ANNIndex:
    """Multi-probe random-hyperplane LSH with exact candidate re-ranking.

    Each of ``num_tables`` tables hashes an embedding to a ``num_bits``-bit
    signature (the sign pattern of projections onto random hyperplanes,
    taken around the corpus centroid so anisotropic embedding clouds still
    spread over buckets).  A query gathers every member sharing a bucket in
    any table — plus ``num_probes`` neighboring buckets per table, flipping
    the lowest-margin signature bits — and re-ranks that candidate pool with
    exact distances against the live embedding matrix.  Queries with too few
    candidates fall back to the exhaustive scan, so results degrade toward
    exact rather than toward empty.

    :meth:`add` hashes only the appended row (bucket tables are re-sorted
    lazily on the next search); :meth:`rebuild` re-hashes the corpus, which
    is also how the index heals itself if it observes an embedding matrix
    whose length it does not recognize.
    """

    def __init__(self, config: ANNConfig | None = None):
        self.config = config or ANNConfig()
        if self.config.num_tables < 1:
            raise ValueError("num_tables must be positive")
        self._projection: np.ndarray | None = None    # [d, L·b], whitening folded in
        self._center: np.ndarray | None = None        # [d]
        self._num_bits = 0
        self._codes: np.ndarray | None = None         # [L, capacity] growth buffer
        self._norms: np.ndarray | None = None         # [capacity] ‖x‖² per member
        self._size = 0
        self._order: np.ndarray | None = None         # [L, N] members by code
        self._sorted_codes: np.ndarray | None = None  # [L, N]
        self._stale_sort = True

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def rebuild(self, embeddings: np.ndarray) -> None:
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        n, dim = embeddings.shape
        config = self.config
        bits = config.num_bits
        if bits <= 0:
            # Generous signatures (2^b buckets >> n) keep buckets near
            # pure-locality collisions; recall then comes from the
            # multi-probe expansion rather than coarse buckets.
            bits = int(np.clip(np.ceil(np.log2(max(n, 2))) + 3, 8, 24))
        self._num_bits = bits
        rng = np.random.default_rng(config.seed)
        hyperplanes = rng.standard_normal((config.num_tables * bits, dim))
        self._center = (embeddings.mean(axis=0) if n else np.zeros(dim))
        # The whitening transform composes with the hyperplanes into one
        # [d, L·b] projection, so equalizing the embedding cloud costs
        # nothing per query.
        self._projection = hyperplanes.T
        if config.whiten and n > 1:
            centered = embeddings - self._center
            eigvals, eigvecs = np.linalg.eigh(centered.T @ centered / n)
            top = float(eigvals.max())
            if top > 0.0:
                scale = 1.0 / np.sqrt(np.maximum(eigvals, 1e-9 * top))
                self._projection = (eigvecs * scale) @ hyperplanes.T
        codes, _ = self._signatures(embeddings)
        capacity = max(4, n)
        self._codes = np.zeros((config.num_tables, capacity), dtype=np.int64)
        self._codes[:, :n] = codes.T
        self._norms = np.zeros(capacity)
        self._norms[:n] = (embeddings * embeddings).sum(axis=1)
        self._size = n
        self._stale_sort = True

    def add(self, embedding: np.ndarray) -> None:
        embedding = np.asarray(embedding, dtype=np.float64).reshape(1, -1)
        if self._projection is None:
            self.rebuild(embedding)
            return
        codes, _ = self._signatures(embedding)
        if self._size == self._codes.shape[1]:
            grown = np.zeros((self.config.num_tables, 2 * self._size),
                             dtype=np.int64)
            grown[:, :self._size] = self._codes[:, :self._size]
            self._codes = grown
            grown_norms = np.zeros(2 * self._size)
            grown_norms[:self._size] = self._norms[:self._size]
            self._norms = grown_norms
        self._codes[:, self._size] = codes[0]
        self._norms[self._size] = float((embedding * embedding).sum())
        self._size += 1
        self._stale_sort = True

    # ------------------------------------------------------------------
    def _signatures(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """([Q, L] bucket codes, [Q, L, b] signed projection margins)."""
        proj = (x - self._center) @ self._projection
        proj = proj.reshape(len(x), self.config.num_tables, self._num_bits)
        codes = (proj > 0) @ (np.int64(1) << np.arange(self._num_bits))
        return codes, proj

    def _refresh_sort(self) -> None:
        if not self._stale_sort:
            return
        codes = self._codes[:, :self._size]
        self._order = np.argsort(codes, axis=1, kind="stable")
        self._sorted_codes = np.take_along_axis(codes, self._order, axis=1)
        self._stale_sort = False

    def _probe_codes(self, queries: np.ndarray) -> np.ndarray:
        """[Q, L, 1 + p] bucket codes to visit per query and table."""
        codes, proj = self._signatures(queries)
        probes = min(self.config.num_probes, self._num_bits)
        out = np.empty(codes.shape + (1 + probes,), dtype=np.int64)
        out[..., 0] = codes
        if probes:
            # Flip the bits closest to their hyperplane: the buckets a near
            # neighbor is most likely to have landed in instead.
            flips = np.argsort(np.abs(proj), axis=2)[:, :, :probes]
            out[..., 1:] = codes[:, :, None] ^ (np.int64(1) << flips)
        return out

    def _candidate_pairs(self, probe: np.ndarray,
                         num_queries: int) -> tuple[np.ndarray, np.ndarray]:
        """Unique (query, member) pairs over all probed buckets."""
        per_query = probe.shape[2]
        qid_base = np.repeat(np.arange(num_queries), per_query)
        qid_parts: list[np.ndarray] = []
        member_parts: list[np.ndarray] = []
        for table in range(self.config.num_tables):
            wanted = probe[:, table, :].ravel()
            sorted_codes = self._sorted_codes[table]
            lo = np.searchsorted(sorted_codes, wanted, side="left")
            hi = np.searchsorted(sorted_codes, wanted, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if total == 0:
                continue
            # Vectorized ragged expansion of the [lo, hi) bucket ranges.
            starts = np.repeat(lo, counts)
            bases = np.repeat(np.cumsum(counts) - counts, counts)
            flat = starts + np.arange(total) - bases
            member_parts.append(self._order[table][flat])
            qid_parts.append(np.repeat(qid_base, counts))
        if not member_parts:
            return (np.empty(0, dtype=np.int64),) * 2
        # Dedup across tables/probes on the packed (query, member) key; the
        # sorted keys come back grouped by query with members ascending —
        # the order the re-rank's lowest-index tie-breaking relies on.
        keys = np.sort(np.concatenate(qid_parts) * np.int64(self._size)
                       + np.concatenate(member_parts))
        keep = np.empty(len(keys), dtype=bool)
        keep[0] = True
        np.not_equal(keys[1:], keys[:-1], out=keep[1:])
        return np.divmod(keys[keep], self._size)

    def _rerank(self, rows: np.ndarray, member: np.ndarray, pool: np.ndarray,
                offsets: np.ndarray, queries: np.ndarray,
                query_norms: np.ndarray, embeddings: np.ndarray,
                k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact re-rank of the candidate pools of the ``rows`` queries.

        The pools are padded to the subset's maximum width and the dot
        products run as one batched GEMM against the query vectors (the
        Gram identity again, with member norms precomputed at index time);
        inf padding never wins the top-k.  Within a row candidates are in
        ascending member order, so the lowest-index tie-break of
        ``top_k_neighbors`` matches the exhaustive search.
        """
        counts = pool[rows]
        width = int(counts.max())
        flat = (np.repeat(offsets[rows], counts)
                + np.arange(int(counts.sum()))
                - np.repeat(np.cumsum(counts) - counts, counts))
        rowid = np.repeat(np.arange(len(rows)), counts)
        position = flat - np.repeat(offsets[rows], counts)
        members = np.zeros((len(rows), width), dtype=np.int64)
        members[rowid, position] = member[flat]
        dots = (embeddings[members] @ queries[rows][:, :, None])[:, :, 0]
        padded = np.maximum(
            self._norms[members] + query_norms[rows][:, None] - 2.0 * dots,
            0.0)
        padded[np.arange(width) >= counts[:, None]] = np.inf
        local = top_k_neighbors(padded, k)
        return (np.take_along_axis(members, local, axis=1),
                np.sqrt(np.take_along_axis(padded, local, axis=1)))

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = len(embeddings)
        if n != self._size or self._projection is None:
            self.rebuild(embeddings)
        k = min(k, n)
        floor = min(max(k, self.config.min_candidates), n)
        if n <= floor:
            return exact_search(queries, embeddings, k)
        self._refresh_sort()
        num_queries = len(queries)
        qid, member = self._candidate_pairs(self._probe_codes(queries),
                                            num_queries)
        pool = np.bincount(qid, minlength=num_queries)
        offsets = np.cumsum(pool) - pool
        fallback = pool < floor
        if self.config.max_candidates > 0:
            fallback |= pool > self.config.max_candidates
        active = np.nonzero(~fallback)[0]
        if active.size == 0:
            return exact_search(queries, embeddings, k)

        indices = np.empty((num_queries, k), dtype=np.int64)
        distances = np.empty((num_queries, k))
        query_norms = (queries * queries).sum(axis=1)
        # Re-rank in geometric pool-size bins: a handful of dense queries
        # must not widen the padded candidate matrix of the (typically much
        # smaller) median pool.  frexp's exponent is floor(log2) + 1.
        levels = np.frexp(pool[active].astype(np.float64))[1]
        for level in np.unique(levels):
            rows = active[levels == level]
            indices[rows], distances[rows] = self._rerank(
                rows, member, pool, offsets, queries, query_norms,
                embeddings, k)
        if fallback.any():
            indices[fallback], distances[fallback] = exact_search(
                queries[fallback], embeddings, k)
        return indices, distances


@dataclass
class Recommendation:
    """Outcome of one AutoCE recommendation."""

    model: str
    score_vector: np.ndarray
    model_names: tuple[str, ...]
    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray

    def ranking(self) -> list[tuple[str, float]]:
        order = np.argsort(-self.score_vector)
        return [(self.model_names[i], float(self.score_vector[i])) for i in order]


class RecommendationCandidateSet:
    """Def. 5: labeled embeddings (X, Y) searched by the KNN predictor.

    Embeddings live in an amortized capacity-doubling buffer, so the online
    adaptation path can :meth:`add` members in O(1) amortized instead of
    re-allocating the whole matrix per insert.  Score matrices (one per
    accuracy weight) are memoized for the batched KNN.

    Neighbor queries go through :meth:`search`.  Small candidate sets use
    the exact Gram-identity scan; when an :class:`ANNConfig` is supplied and
    the membership crosses ``ANNConfig.threshold``, an :class:`ANNIndex` is
    attached automatically and kept fresh on :meth:`add` (incremental) and
    :meth:`replace_embeddings` (full re-hash).
    """

    def __init__(self, embeddings: np.ndarray | None = None,
                 labels: list[ScoreLabel] | None = None,
                 ann: ANNConfig | None = None):
        embeddings = (np.zeros((0, 0)) if embeddings is None
                      else np.asarray(embeddings, dtype=np.float64))
        self.labels: list[ScoreLabel] = list(labels or [])
        if len(embeddings) != len(self.labels):
            raise ValueError("embeddings and labels must align")
        self._buffer = np.array(embeddings, dtype=np.float64)
        self._size = len(embeddings)
        self._score_cache: dict[float, np.ndarray] = {}
        self.ann_config = ann
        self._index: NeighborIndex | None = None
        self._sync_index()

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def embeddings(self) -> np.ndarray:
        """The live [N, d] embedding matrix (a view of the growth buffer)."""
        return self._buffer[:self._size]

    @property
    def index(self) -> NeighborIndex | None:
        """The attached neighbor index (None = inline exact search)."""
        return self._index

    @property
    def model_names(self) -> tuple[str, ...]:
        if not self.labels:
            raise ValueError("empty RCS")
        return self.labels[0].model_names

    def _sync_index(self) -> None:
        """Attach the ANN index once membership crosses the threshold."""
        config = self.ann_config
        if (self._index is None and config is not None and config.threshold > 0
                and self._size >= config.threshold):
            self._index = ANNIndex(config)
            self._index.rebuild(self.embeddings)

    def add(self, embedding: np.ndarray, label: ScoreLabel) -> None:
        embedding = np.asarray(embedding, dtype=np.float64).ravel()
        dim = embedding.shape[0]
        if self._size == 0:
            if self._buffer.shape[1] != dim or len(self._buffer) == 0:
                self._buffer = np.zeros((max(4, len(self._buffer)), dim))
        elif self._buffer.shape[1] != dim:
            raise ValueError(
                f"embedding dimension {dim} != RCS dimension "
                f"{self._buffer.shape[1]}")
        if self._size == len(self._buffer):
            grown = np.zeros((max(4, 2 * len(self._buffer)), dim))
            grown[:self._size] = self._buffer[:self._size]
            self._buffer = grown
        self._buffer[self._size] = embedding
        self._size += 1
        self.labels.append(label)
        self._score_cache.clear()
        if self._index is not None:
            self._index.add(embedding)
        else:
            self._sync_index()

    def replace_embeddings(self, embeddings: np.ndarray) -> None:
        """Refresh stored embeddings after the encoder is retrained."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if len(embeddings) != len(self.labels):
            raise ValueError("embedding count must match labels")
        self._buffer = np.array(embeddings, dtype=np.float64)
        self._size = len(embeddings)
        self._score_cache.clear()
        if self._index is not None:
            self._index.rebuild(self.embeddings)
        else:
            self._sync_index()

    def search(self, queries: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """k nearest members per query: ([Q, k] indices, [Q, k] distances)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        k = min(k, self._size)
        if self._index is None:
            return exact_search(queries, self.embeddings, k)
        return self._index.search(queries, self.embeddings, k)

    def score_matrix(self, accuracy_weight: float) -> np.ndarray:
        """Memoized [N, m] matrix of member score vectors at one weight."""
        key = float(accuracy_weight)
        cached = self._score_cache.get(key)
        if cached is None or len(cached) != len(self.labels):
            cached = np.stack(
                [label.score_vector(key) for label in self.labels])
            self._score_cache[key] = cached
        return cached

    def nearest_neighbor_distances(self) -> np.ndarray:
        """Distance of each member to its nearest other member."""
        if len(self) < 2:
            return np.zeros(len(self))
        sq = squared_distance_matrix(self.embeddings, self.embeddings)
        np.fill_diagonal(sq, np.inf)
        return np.sqrt(sq.min(axis=1))


class KNNPredictor:
    """Eq. 13: average the k nearest labels and pick the top ranker.

    The paper finds k = 2 optimal (Table IV); that is the default.  Neighbor
    search is delegated to :meth:`RecommendationCandidateSet.search`, so the
    predictor transparently uses whichever :class:`NeighborIndex` the RCS
    has selected (exact below the ANN threshold, LSH above it).
    """

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def recommend(self, embedding: np.ndarray, rcs: RecommendationCandidateSet,
                  accuracy_weight: float, k: int | None = None) -> Recommendation:
        return self.recommend_batch(
            np.atleast_2d(np.asarray(embedding, dtype=np.float64)),
            rcs, accuracy_weight, k=k)[0]

    def recommend_batch(self, embeddings: np.ndarray,
                        rcs: RecommendationCandidateSet,
                        accuracy_weight: float,
                        k: int | None = None) -> list[Recommendation]:
        """Vectorized Eq. 13 for Q queries at once.

        One [Q, N] Gram-identity distance matrix (or one ANN probe pass),
        one ``argpartition`` per row, and one gather over the memoized score
        matrix replace Q independent full-sort searches.
        """
        if len(rcs) == 0:
            raise ValueError("cannot recommend from an empty RCS")
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        k = k if k is not None else self.k
        k = min(k, len(rcs))
        nearest, neighbor_distances = rcs.search(embeddings, k)   # [Q, k]
        scores = rcs.score_matrix(accuracy_weight)[nearest].mean(axis=1)
        best = np.argmax(scores, axis=1)
        names = rcs.model_names
        return [
            Recommendation(
                model=names[int(best[i])],
                score_vector=scores[i],
                model_names=names,
                neighbor_indices=nearest[i],
                neighbor_distances=neighbor_distances[i],
            )
            for i in range(len(embeddings))
        ]
