"""Deprecated shim over :mod:`repro.core.serving`.

The predictor monolith was split along its tier boundaries into the
``core/serving/`` package — ``kernels`` (float substrate), ``quantizers``
(int8 / PQ candidate tiers), ``indexes`` (the LSH families behind the
:class:`NeighborIndex` protocol), ``probe`` (the sign-hash recall probe)
and ``store`` (the RCS + KNN predictor).  This module re-exports the full
public surface so that

- existing ``from repro.core.predictor import X`` call sites keep working,
- pickled advisors saved before the split (whose classes resolve through
  ``repro.core.predictor``) keep loading, and
- ``seeded_kmeans`` monkeypatches land on one canonical module
  (:mod:`repro.core.serving.quantizers`) — patch there, not here.

New code should import from :mod:`repro.core.serving` (or the specific
submodule).  REP006 pins this file as a thin shim (< 100 lines) so the
monolith cannot silently regrow.
"""

from .serving.indexes import (ANNConfig, ANNIndex, E2LSHConfig, E2LSHIndex,
                              ExactIndex, NeighborIndex, _BucketedLSHIndex)
from .serving.kernels import (_FLOAT_DTYPES, _as_float_matrix,
                              _common_dtype, exact_search,
                              require_finite_embeddings,
                              squared_distance_matrix, top_k_neighbors)
from .serving.probe import select_neighbor_index
from .serving.quantizers import (INT8_EXACT_MAX_DIM, CandidateStore,
                                 PQStore, QuantizationConfig,
                                 QuantizedStore, candidate_scan,
                                 quantized_distances_int32_reference,
                                 rerank_candidates, seeded_kmeans,
                                 select_quantizer)
from .serving.store import (KNNPredictor, Recommendation,
                            RecommendationCandidateSet)

__all__ = [
    "_FLOAT_DTYPES", "_as_float_matrix", "_common_dtype", "exact_search",
    "require_finite_embeddings", "squared_distance_matrix",
    "top_k_neighbors",
    "INT8_EXACT_MAX_DIM", "CandidateStore", "PQStore",
    "QuantizationConfig", "QuantizedStore", "candidate_scan",
    "quantized_distances_int32_reference", "rerank_candidates",
    "seeded_kmeans", "select_quantizer",
    "ANNConfig", "ANNIndex", "E2LSHConfig", "E2LSHIndex", "ExactIndex",
    "NeighborIndex", "_BucketedLSHIndex",
    "select_neighbor_index",
    "KNNPredictor", "Recommendation", "RecommendationCandidateSet",
]
