"""KNN-based model recommendation (Sec. V-D, Eq. 13).

The recommendation candidate set (RCS, Def. 5) holds the embeddings of all
labeled datasets.  For a target dataset AutoCE embeds its feature graph,
finds the k nearest labeled embeddings, averages their score vectors under
the user's metric weights and recommends the top-scoring model.

Serving fast path: all pairwise distances go through the Gram-matrix
identity ``‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b`` (no O(n²·d) broadcast tensor),
neighbor selection uses ``argpartition`` plus a partial sort of the top-k
instead of a full sort, and :meth:`KNNPredictor.recommend_batch` serves many
queries against one ``[Q, N]`` distance matrix at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..testbed.scores import ScoreLabel


def squared_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances [Q, N] via the Gram identity.

    ``‖a‖² + ‖b‖² − 2·a·b`` avoids materializing the O(Q·N·d) difference
    tensor; numerical noise is clipped at zero.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    sq = ((a * a).sum(axis=1)[:, None] + (b * b).sum(axis=1)[None, :]
          - 2.0 * (a @ b.T))
    return np.maximum(sq, 0.0)


def top_k_neighbors(distances: np.ndarray, k: int) -> np.ndarray:
    """Top-k nearest indices per row of a [Q, N] distance matrix.

    ``argpartition`` selects the k candidates in O(N), then only those k are
    sorted.  Distance ties — including ties straddling the k boundary, where
    ``argpartition`` alone may pick an arbitrary tied member — are broken by
    lowest index, so the result matches a full ``argsort(kind="stable")[:k]``
    exactly.
    """
    distances = np.atleast_2d(distances)
    q, n = distances.shape
    k = min(k, n)
    if k >= n:
        part = np.broadcast_to(np.arange(n), (q, n))
        order = np.lexsort((part, distances), axis=1)
        return np.take_along_axis(np.ascontiguousarray(part), order, axis=1)
    part = np.argpartition(distances, k - 1, axis=1)[:, :k]
    # The k-th smallest value bounds the selection; keep everything strictly
    # closer and fill the remainder with the lowest-index boundary ties.
    boundary = np.take_along_axis(distances, part, axis=1).max(
        axis=1, keepdims=True)
    closer = distances < boundary
    need = k - closer.sum(axis=1)
    ties = distances == boundary
    tie_rank = np.cumsum(ties, axis=1)
    selected = closer | (ties & (tie_rank <= need[:, None]))
    idx = np.nonzero(selected)[1].reshape(q, k)
    order = np.lexsort((idx, np.take_along_axis(distances, idx, axis=1)),
                       axis=1)
    return np.take_along_axis(idx, order, axis=1)


@dataclass
class Recommendation:
    """Outcome of one AutoCE recommendation."""

    model: str
    score_vector: np.ndarray
    model_names: tuple[str, ...]
    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray

    def ranking(self) -> list[tuple[str, float]]:
        order = np.argsort(-self.score_vector)
        return [(self.model_names[i], float(self.score_vector[i])) for i in order]


class RecommendationCandidateSet:
    """Def. 5: labeled embeddings (X, Y) searched by the KNN predictor.

    Embeddings live in an amortized capacity-doubling buffer, so the online
    adaptation path can :meth:`add` members in O(1) amortized instead of
    re-allocating the whole matrix per insert.  Score matrices (one per
    accuracy weight) are memoized for the batched KNN.
    """

    def __init__(self, embeddings: np.ndarray | None = None,
                 labels: list[ScoreLabel] | None = None):
        embeddings = (np.zeros((0, 0)) if embeddings is None
                      else np.asarray(embeddings, dtype=np.float64))
        self.labels: list[ScoreLabel] = list(labels or [])
        if len(embeddings) != len(self.labels):
            raise ValueError("embeddings and labels must align")
        self._buffer = np.array(embeddings, dtype=np.float64)
        self._size = len(embeddings)
        self._score_cache: dict[float, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def embeddings(self) -> np.ndarray:
        """The live [N, d] embedding matrix (a view of the growth buffer)."""
        return self._buffer[:self._size]

    @property
    def model_names(self) -> tuple[str, ...]:
        if not self.labels:
            raise ValueError("empty RCS")
        return self.labels[0].model_names

    def add(self, embedding: np.ndarray, label: ScoreLabel) -> None:
        embedding = np.asarray(embedding, dtype=np.float64).ravel()
        dim = embedding.shape[0]
        if self._size == 0:
            if self._buffer.shape[1] != dim or len(self._buffer) == 0:
                self._buffer = np.zeros((max(4, len(self._buffer)), dim))
        elif self._buffer.shape[1] != dim:
            raise ValueError(
                f"embedding dimension {dim} != RCS dimension "
                f"{self._buffer.shape[1]}")
        if self._size == len(self._buffer):
            grown = np.zeros((max(4, 2 * len(self._buffer)), dim))
            grown[:self._size] = self._buffer[:self._size]
            self._buffer = grown
        self._buffer[self._size] = embedding
        self._size += 1
        self.labels.append(label)
        self._score_cache.clear()

    def replace_embeddings(self, embeddings: np.ndarray) -> None:
        """Refresh stored embeddings after the encoder is retrained."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if len(embeddings) != len(self.labels):
            raise ValueError("embedding count must match labels")
        self._buffer = np.array(embeddings, dtype=np.float64)
        self._size = len(embeddings)
        self._score_cache.clear()

    def score_matrix(self, accuracy_weight: float) -> np.ndarray:
        """Memoized [N, m] matrix of member score vectors at one weight."""
        key = float(accuracy_weight)
        cached = self._score_cache.get(key)
        if cached is None or len(cached) != len(self.labels):
            cached = np.stack(
                [label.score_vector(key) for label in self.labels])
            self._score_cache[key] = cached
        return cached

    def nearest_neighbor_distances(self) -> np.ndarray:
        """Distance of each member to its nearest other member."""
        if len(self) < 2:
            return np.zeros(len(self))
        sq = squared_distance_matrix(self.embeddings, self.embeddings)
        np.fill_diagonal(sq, np.inf)
        return np.sqrt(sq.min(axis=1))


class KNNPredictor:
    """Eq. 13: average the k nearest labels and pick the top ranker.

    The paper finds k = 2 optimal (Table IV); that is the default.
    """

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def recommend(self, embedding: np.ndarray, rcs: RecommendationCandidateSet,
                  accuracy_weight: float, k: int | None = None) -> Recommendation:
        if len(rcs) == 0:
            raise ValueError("cannot recommend from an empty RCS")
        k = k if k is not None else self.k
        k = min(k, len(rcs))
        distances = np.sqrt(((rcs.embeddings - embedding) ** 2).sum(axis=1))
        nearest = top_k_neighbors(distances, k)[0]
        score = rcs.score_matrix(accuracy_weight)[nearest].mean(axis=0)
        names = rcs.model_names
        return Recommendation(
            model=names[int(np.argmax(score))],
            score_vector=score,
            model_names=names,
            neighbor_indices=nearest,
            neighbor_distances=distances[nearest],
        )

    def recommend_batch(self, embeddings: np.ndarray,
                        rcs: RecommendationCandidateSet,
                        accuracy_weight: float,
                        k: int | None = None) -> list[Recommendation]:
        """Vectorized Eq. 13 for Q queries at once.

        One [Q, N] Gram-identity distance matrix, one ``argpartition`` per
        row, and one gather over the memoized score matrix replace Q
        independent full-sort searches.
        """
        if len(rcs) == 0:
            raise ValueError("cannot recommend from an empty RCS")
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        k = k if k is not None else self.k
        k = min(k, len(rcs))
        distances = np.sqrt(squared_distance_matrix(embeddings, rcs.embeddings))
        nearest = top_k_neighbors(distances, k)                      # [Q, k]
        scores = rcs.score_matrix(accuracy_weight)[nearest].mean(axis=1)
        best = np.argmax(scores, axis=1)
        names = rcs.model_names
        neighbor_distances = np.take_along_axis(distances, nearest, axis=1)
        return [
            Recommendation(
                model=names[int(best[i])],
                score_vector=scores[i],
                model_names=names,
                neighbor_indices=nearest[i],
                neighbor_distances=neighbor_distances[i],
            )
            for i in range(len(embeddings))
        ]
