"""KNN-based model recommendation (Sec. V-D, Eq. 13).

The recommendation candidate set (RCS, Def. 5) holds the embeddings of all
labeled datasets.  For a target dataset AutoCE embeds its feature graph,
finds the k nearest labeled embeddings, averages their score vectors under
the user's metric weights and recommends the top-scoring model.

Serving fast path: all pairwise distances go through the Gram-matrix
identity ``‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b`` (no O(n²·d) broadcast tensor),
neighbor selection uses ``argpartition`` plus a partial sort of the top-k
instead of a full sort, and :meth:`KNNPredictor.recommend_batch` serves many
queries against one ``[Q, N]`` distance matrix at once.

Scale-out serving: neighbor search is abstracted behind the
:class:`NeighborIndex` protocol.  :class:`ExactIndex` is the exhaustive
Gram-identity search.  Two LSH families share one bucketed-index substrate
(:class:`_BucketedLSHIndex`): :class:`ANNIndex` is a random-hyperplane
*sign* hash with multi-probe bit flips — ideal when the corpus has
family/cluster structure — and :class:`E2LSHIndex` is a quantized-projection
(E2LSH-style) hash ``floor((x·w + b) / r)`` with multi-probe bucket walks,
which keeps discriminating by *distance* on corpora without any cluster
structure (where sign buckets degenerate and the sign hash falls back to
the exact scan).  :func:`select_neighbor_index` — the sign-hash recall
probe — picks between them when the RCS crosses ``ANNConfig.threshold``,
and the RCS keeps the chosen index fresh incrementally on
:meth:`RecommendationCandidateSet.add` / fully on
:meth:`RecommendationCandidateSet.replace_embeddings`.

All kernels are precision-tier aware: a float32 embedding matrix (the
advisor's fast serving tier) is searched in float32 end-to-end, halving the
memory bandwidth of the distance GEMMs.  A third, quantized tier
accelerates the *candidate* pass — rankings survive because the DML metric
space only needs neighbor order, not distances.  Two code layouts share
one config (:class:`QuantizationConfig`) and one routing contract:
:class:`QuantizedStore` keeps flat int8 codes (exact integer arithmetic up
to ``INT8_EXACT_MAX_DIM`` dims) and :class:`PQStore` product-quantizes
wider embeddings into per-subspace codebooks scanned with ADC lookup
tables; :func:`select_quantizer` picks between them.  Scan-shaped searches
(the exhaustive scan and the LSH indexes' exact fallbacks) rank the whole
corpus in code space, the bucketed LSH indexes additionally rank their
padded re-rank pools in code space (:meth:`_BucketedLSHIndex._narrow_pools`),
and in every path only the top ``k · overfetch`` candidates reach the
float-tier re-rank, so returned distances stay float-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..testbed.scores import ScoreLabel

#: Floating dtypes preserved by the serving kernels (everything else is
#: promoted to the float64 default).
_FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _as_float_matrix(a: np.ndarray) -> np.ndarray:
    """2-D float view of ``a``, keeping a float32 tier, promoting the rest."""
    a = np.atleast_2d(np.asarray(a))
    if a.dtype not in _FLOAT_DTYPES:
        return a.astype(np.float64)
    return a


def require_finite_embeddings(embeddings: np.ndarray,
                              context: str = "embeddings") -> None:
    """Reject NaN/inf rows before they enter a candidate set.

    One non-finite row silently poisons everything calibrated from the
    corpus — quantizer scales collapse to NaN, LSH projections hash every
    member to the same bucket, distance ties become unordered — so entry
    points fail loudly instead, naming the offending rows.
    """
    matrix = np.atleast_2d(np.asarray(embeddings))
    finite = np.isfinite(matrix).all(axis=1)
    if not finite.all():
        bad = np.flatnonzero(~finite)
        shown = ", ".join(str(int(i)) for i in bad[:5])
        more = f" (+{len(bad) - 5} more)" if len(bad) > 5 else ""
        raise ValueError(
            f"{context} contain non-finite values in row(s) {shown}{more}; "
            "NaN/inf embeddings would poison quantizer calibration and "
            "LSH projections")


def _common_dtype(a: np.ndarray, b: np.ndarray) -> np.dtype:
    """The precision tier two operands meet at (float32 only when both are)."""
    da = a.dtype if a.dtype in _FLOAT_DTYPES else np.dtype(np.float64)
    db = b.dtype if b.dtype in _FLOAT_DTYPES else np.dtype(np.float64)
    return np.result_type(da, db)


def squared_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances [Q, N] via the Gram identity.

    ``‖a‖² + ‖b‖² − 2·a·b`` avoids materializing the O(Q·N·d) difference
    tensor; numerical noise is clipped at zero.  Runs on the operands'
    common precision tier (float32 in, float32 GEMM out).
    """
    dtype = _common_dtype(np.asarray(a), np.asarray(b))
    a = np.atleast_2d(np.asarray(a, dtype=dtype))
    b = np.atleast_2d(np.asarray(b, dtype=dtype))
    sq = ((a * a).sum(axis=1)[:, None] + (b * b).sum(axis=1)[None, :]
          - 2.0 * (a @ b.T))
    return np.maximum(sq, 0.0)


def top_k_neighbors(distances: np.ndarray, k: int) -> np.ndarray:
    """Top-k nearest indices per row of a [Q, N] distance matrix.

    ``argpartition`` selects the k candidates in O(N), then only those k are
    sorted.  Distance ties — including ties straddling the k boundary, where
    ``argpartition`` alone may pick an arbitrary tied member — are broken by
    lowest index, so the result matches a full ``argsort(kind="stable")[:k]``
    exactly.
    """
    distances = np.atleast_2d(distances)
    q, n = distances.shape
    k = min(k, n)
    if k >= n:
        part = np.broadcast_to(np.arange(n), (q, n))
        order = np.lexsort((part, distances), axis=1)
        return np.take_along_axis(np.ascontiguousarray(part), order, axis=1)
    part = np.argpartition(distances, k - 1, axis=1)[:, :k]
    # The k-th smallest value bounds the selection; keep everything strictly
    # closer and fill the remainder with the lowest-index boundary ties.
    boundary = np.take_along_axis(distances, part, axis=1).max(
        axis=1, keepdims=True)
    closer = distances < boundary
    need = k - closer.sum(axis=1)
    ties = distances == boundary
    tie_rank = np.cumsum(ties, axis=1)
    selected = closer | (ties & (tie_rank <= need[:, None]))
    idx = np.nonzero(selected)[1].reshape(q, k)
    order = np.lexsort((idx, np.take_along_axis(distances, idx, axis=1)),
                       axis=1)
    return np.take_along_axis(idx, order, axis=1)


def exact_search(queries: np.ndarray, embeddings: np.ndarray,
                 k: int) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustive k-NN: ([Q, k] indices, [Q, k] Euclidean distances)."""
    distances = np.sqrt(squared_distance_matrix(queries, embeddings))
    nearest = top_k_neighbors(distances, k)
    return nearest, np.take_along_axis(distances, nearest, axis=1)


# ----------------------------------------------------------------------
# Quantized candidate tiers (int8 flat codes and product quantization)
# ----------------------------------------------------------------------
#: Widest embedding whose assembled int8 code distance (4 · d · 127²) still
#: fits float32's 24-bit mantissa — the exactness bound of the flat int8
#: kernel, and the dimension past which :func:`select_quantizer` switches
#: the "auto" mode to product quantization.
INT8_EXACT_MAX_DIM = 260


@dataclass
class QuantizationConfig:
    """Parameters of the quantized candidate tiers.

    Serving only needs neighbor *rankings* to survive — the DML metric space
    (Eq. 9) is trained so that rank order, not absolute distance, carries the
    recommendation signal — which is exactly what a low-precision candidate
    pass exploits: scan the whole corpus in compressed codes, keep the top
    ``k · overfetch`` candidates, and re-rank only those in the float tier.

    Two code layouts share this config.  The flat int8 tier
    (:class:`QuantizedStore`) keeps one code per dimension and is exact
    integer arithmetic up to ``d = 260``; the product-quantization tier
    (:class:`PQStore`) splits the dimensions into subspaces with a learned
    codebook each, compressing wide embeddings to one byte per subspace.
    :func:`select_quantizer` picks between them (``mode="auto"``) on the
    int8 exactness bound.
    """

    #: Attach a quantized candidate tier to the RCS.
    enabled: bool = False
    #: Code layout: "auto" picks flat int8 for embeddings up to
    #: ``INT8_EXACT_MAX_DIM`` dims and product quantization past that;
    #: "int8" / "pq" pin one layout.
    mode: str = "auto"
    #: PQ: contiguous dimension subspaces (0 = auto-size ~d/128, clipped
    #: to [4, 16]); each subspace is encoded to one uint8 codebook id.
    #: More subspaces = finer codes but a linearly slower ADC scan.
    num_subspaces: int = 0
    #: PQ: centroids per subspace codebook (≤ 256 so codes stay uint8).
    codebook_size: int = 256
    #: PQ: Lloyd-iteration cap of the seeded k-means codebook training.
    kmeans_iters: int = 12
    #: PQ: codebooks train on at most this many (deterministically sampled)
    #: corpus rows; encoding always covers the full corpus.
    kmeans_sample: int = 4096
    #: PQ: opt-in residual refinement — a second codebook pass over the
    #: quantization residuals roughly halves the reconstruction error at
    #: the cost of a second code byte per subspace and a second ADC lookup
    #: per scan.  For recall-critical corpora whose neighbor gaps sit near
    #: the single-pass quantization error.
    residual: bool = False
    #: PQ: RNG seed of the k-means++ init and the training-row sample.
    seed: int = 0
    #: Candidate pool per query = ``k · overfetch``; the float-tier re-rank
    #: only sees this many members, so recall failures require the true
    #: neighbor to be pushed past ``k · (overfetch − 1)`` impostors by
    #: quantization error alone.
    overfetch: int = 8
    #: Corpora smaller than this serve the plain float scan (at those sizes
    #: the candidate pass saves nothing worth the second top-k).
    min_size: int = 64
    #: Recalibrate the scale/zero-points when more than this fraction of the
    #: rows added since the last calibration clipped at the int8 range — the
    #: drift signal that the corpus has outgrown its calibrated envelope.
    drift_clip_fraction: float = 0.02
    #: A single row overshooting the calibrated range by this factor
    #: triggers recalibration immediately (a gross outlier would otherwise
    #: fold onto the range boundary and alias with every other boundary row).
    drift_outlier_factor: float = 2.0
    #: Wrap the selected store in an IVF coarse partition
    #: (:class:`~repro.core.ivf.IVFStore`): a seeded-k-means coarse
    #: quantizer over the corpus, per-cell contiguous code blocks, and a
    #: probed scan touching only the ``nprobe`` nearest cells —
    #: O(N/cells · nprobe) candidate cost instead of O(N).
    ivf: bool = False
    #: IVF: number of coarse cells (0 = auto, ≈ √N clipped).
    ivf_cells: int = 0
    #: IVF: cells probed per query.  ``nprobe ≥ cells`` degrades —
    #: bit-for-bit — to the unpartitioned store scan.
    nprobe: int = 8
    #: IVF: corpora below this many members skip the probed path entirely
    #: (the coarse GEMM + per-cell bookkeeping only pays for itself once
    #: the full code scan is large); the unpartitioned store serves.
    ivf_min_size: int = 1024

    def __post_init__(self) -> None:
        # Fail at configuration time, not from deep inside the RCS attach.
        if self.mode not in ("auto", "int8", "pq"):
            raise ValueError(
                f"unknown quantization mode {self.mode!r}; expected one of "
                "'auto', 'int8', 'pq'")
        if not 1 <= self.codebook_size <= 256:
            raise ValueError("codebook_size must be in [1, 256] "
                             "(PQ codes are uint8)")
        if self.ivf_cells < 0:
            raise ValueError("ivf_cells must be >= 0 (0 = auto)")
        if self.nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if self.ivf_min_size < 0:
            raise ValueError("ivf_min_size must be >= 0")


def quantized_distances_int32_reference(query_codes: np.ndarray,
                                        member_codes: np.ndarray) -> np.ndarray:
    """[Q, N] code-space squared distances with literal int32 accumulation.

    The ground truth of the quantized kernel: Gram identity over int8 codes
    with every product and partial sum carried in int32 (int8·int8 ≤ 127²
    and a sum over ``d`` dimensions stays far below 2³¹ for any embedding
    width the encoder produces).  The production path
    (:meth:`QuantizedStore.code_distances`) computes the *same integers*
    through a float32 BLAS GEMM; their exact agreement is a property test.
    """
    q = np.atleast_2d(query_codes).astype(np.int32)
    m = np.atleast_2d(member_codes).astype(np.int32)
    cross = q @ m.T
    qn = (q * q).sum(axis=1, dtype=np.int32)
    mn = (m * m).sum(axis=1, dtype=np.int32)
    return qn[:, None] + mn[None, :] - 2 * cross


def rerank_candidates(queries: np.ndarray, embeddings: np.ndarray,
                      candidates: np.ndarray, k: int,
                      member_norms: np.ndarray | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Float-tier exact re-rank of per-query candidate lists.

    ``candidates`` is [Q, P] member indices, ascending within each row (the
    order the lowest-index tie-break of :func:`top_k_neighbors` relies on).
    Shared by every quantized candidate pass — flat int8 and PQ alike — so
    returned distances are always float-tier exact regardless of the code
    layout that selected the pool.  ``member_norms`` optionally supplies
    the [N] float-tier ``‖x‖²`` vector (it must have been computed from the
    same embedding matrix, same dtype — the stores memoize it under their
    recalibrate/add staleness contract).
    """
    dtype = _common_dtype(queries, embeddings)
    queries = queries.astype(dtype, copy=False)
    gathered = embeddings[candidates].astype(dtype, copy=False)
    dots = (gathered @ queries[:, :, None])[:, :, 0]
    if member_norms is not None and member_norms.dtype == dtype:
        # The caller's precomputed ‖x‖² (bit-identical to the reductions
        # below when the serving tier matches): skip the norm pass.
        member_norms = member_norms[candidates]
    elif candidates.size >= len(embeddings):
        # One corpus-wide norm pass + a [Q, P] gather: bit-identical to the
        # per-candidate reduction (same per-row multiply-sum order) but
        # O(N·d) instead of O(Q·P·d) — the common case for batched serving,
        # where the candidate pools jointly cover the corpus many times.
        cast = np.asarray(embeddings, dtype=dtype)
        member_norms = (cast * cast).sum(axis=1)[candidates]
    else:
        member_norms = (gathered * gathered).sum(axis=2)
    query_norms = (queries * queries).sum(axis=1)
    sq = np.maximum(member_norms + query_norms[:, None] - 2.0 * dots, 0.0)
    # Rank the sqrt'd values, exactly as exact_search does: in float32 a
    # near-tie distinct in squared space can collapse to one value under
    # sqrt, and the lowest-index tie-break must see what exact_search
    # sees or the two paths return different k-sets at the boundary.
    distances = np.sqrt(sq)
    local = top_k_neighbors(distances, k)
    return (np.take_along_axis(candidates, local, axis=1),
            np.take_along_axis(distances, local, axis=1))


class QuantizedStore:
    """Symmetric int8 codes of the RCS embeddings + the candidate kernel.

    Layout: per-dimension zero-points (the midrange of each dimension over
    the calibration corpus) with one shared symmetric scale.  The shared
    scale is deliberate — it is the only int8 layout whose code-space
    distances are *exactly proportional* to dequantized Euclidean distances
    (``‖x̂_a − x̂_b‖² = scale² · Σ(c_a − c_b)²``; the zero-points cancel),
    so candidate rankings in pure integer arithmetic are the dequantized
    float rankings.  Per-dimension scales would shrink the per-dimension
    rounding error but warp the metric into a range-whitened space, which is
    precisely what the DML embedding geometry must not be searched in.

    The distance kernel is int32-accumulated: every ``(c_a − c_b)²`` term is
    an integer and the full Gram-identity result ``‖c_a‖² + ‖c_b‖² −
    2·c_a·c_b`` is bounded by ``4 · d · 127² < 2²⁴`` for any ``d ≤ 260``, so
    a float32 GEMM over the codes performs the exact integer accumulation
    (every intermediate — cross term, norms and the assembled distance —
    fits the 24-bit mantissa) at BLAS speed — numpy has no fast int8 GEMM.
    Wider embeddings fall back to a float64 GEMM (exact below 2⁵³).  On top of the
    scan, :meth:`search` keeps the ``k · overfetch`` best candidates per
    query and re-ranks them against the live float-tier embedding matrix, so
    returned distances are always float-tier exact.

    :meth:`add` quantizes appended rows under the frozen calibration and
    reports drift (clipped rows / gross outliers); the owner — the RCS —
    responds by calling :meth:`recalibrate` with the live embedding matrix.
    """

    #: Code layout tag (the serving CLI and tier reports read this).
    kind = "int8"

    def __init__(self, embeddings: np.ndarray,
                 config: QuantizationConfig | None = None) -> None:
        self.config = config or QuantizationConfig()
        self.scale = 1.0
        self.zero_point: np.ndarray | None = None   # [d] float64
        self._codes: np.ndarray | None = None       # [capacity, d] int8
        self._codes_float: np.ndarray | None = None  # [N, d] GEMM-tier memo
        self._norms: np.ndarray | None = None       # [capacity] ‖c‖² (float)
        self._size = 0
        self._gemm_dtype = np.dtype(np.float32)
        self._added_since_calibration = 0
        self._clipped_since_calibration = 0
        self.recalibrate(embeddings)

    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The live [N, d] int8 code matrix."""
        return self._codes[:self._size]

    # -- calibration ----------------------------------------------------
    def recalibrate(self, embeddings: np.ndarray) -> None:
        """(Re)derive scale/zero-points from the corpus and requantize it."""
        embeddings = _as_float_matrix(embeddings)
        n, dim = embeddings.shape
        if n:
            lo = embeddings.min(axis=0).astype(np.float64)
            hi = embeddings.max(axis=0).astype(np.float64)
        else:
            lo = hi = np.zeros(dim, dtype=np.float64)
        self.zero_point = (lo + hi) / 2.0
        # Symmetric shared scale over the widest dimension; the floor keeps
        # a constant (or single-member, or empty) corpus at all-zero codes
        # instead of dividing by zero.
        self.scale = max(float(np.max(hi - self.zero_point, initial=0.0)),
                         1e-12) / 127.0
        # The assembled distance ‖c_a‖² + ‖c_b‖² − 2·c_a·c_b reaches
        # 4 · d · 127² and must fit the GEMM mantissa for the integer
        # arithmetic to be exact: 24 bits buy d ≤ 260 in float32, float64
        # covers the rest.
        self._gemm_dtype = np.dtype(
            np.float32 if 4 * dim * 127 * 127 < 2 ** 24 else np.float64)
        capacity = max(4, n)
        self._codes = np.zeros((capacity, dim), dtype=np.int8)
        self._codes[:n] = self.quantize(embeddings)
        self._codes_float = None
        self._norms = np.zeros(capacity, dtype=self._gemm_dtype)
        codes = self._codes[:n].astype(self._gemm_dtype)
        self._norms[:n] = (codes * codes).sum(axis=1)
        self._size = n
        self._added_since_calibration = 0
        self._clipped_since_calibration = 0

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Int8 codes of ``x`` under the current calibration (clipping)."""
        raw = (np.asarray(_as_float_matrix(x), dtype=np.float64)
               - self.zero_point) / self.scale
        return np.clip(np.rint(raw), -127, 127).astype(np.int8)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Float64 reconstruction ``zero_point + scale · codes``."""
        return self.zero_point + self.scale * np.asarray(codes, np.float64)

    # -- growth ----------------------------------------------------------
    def add(self, embedding: np.ndarray) -> bool:
        """Quantize one appended row; True = drift, caller must recalibrate.

        Drift is either a gross outlier (the row overshoots the calibrated
        range by ``drift_outlier_factor``) or an accumulated clip fraction
        above ``drift_clip_fraction`` — both mean the frozen scale no longer
        covers the corpus and code distances are degrading.
        """
        row = np.asarray(_as_float_matrix(embedding), np.float64).ravel()
        raw = (row - self.zero_point) / self.scale
        overshoot = float(np.max(np.abs(raw), initial=0.0))
        self._added_since_calibration += 1
        if overshoot > 127.5:
            self._clipped_since_calibration += 1
        if self._size == len(self._codes):
            grown = np.zeros((2 * self._size, self._codes.shape[1]),
                             dtype=np.int8)
            grown[:self._size] = self._codes[:self._size]
            self._codes = grown
            grown_norms = np.zeros(2 * self._size, dtype=self._norms.dtype)
            grown_norms[:self._size] = self._norms[:self._size]
            self._norms = grown_norms
        codes = np.clip(np.rint(raw), -127, 127).astype(np.int8)
        self._codes[self._size] = codes
        self._codes_float = None
        c = codes.astype(self._gemm_dtype)
        self._norms[self._size] = (c * c).sum()
        self._size += 1
        if overshoot > 127.5 * self.config.drift_outlier_factor:
            return True
        return (self._clipped_since_calibration
                > self.config.drift_clip_fraction
                * max(self._added_since_calibration, 1))

    # -- the int32-accumulated candidate kernel --------------------------
    def code_distances(self, queries: np.ndarray) -> np.ndarray:
        """[Q, N] code-space squared distances of float-tier queries.

        Exact integer arithmetic end-to-end (see the class docstring for why
        the float32 GEMM qualifies); multiplied by ``scale²`` this is the
        dequantized squared Euclidean distance, but candidate selection only
        ranks, so the factor is never applied.

        The GEMM-tier view of the member codes is memoized between searches
        (dropped by :meth:`add` / :meth:`recalibrate`): a single-query
        serving path must not pay an O(N·d) cast per call.  The memo trades
        the steady-state footprint back up to one float copy of the codes —
        resident-set-critical deployments can drop it after each search.
        """
        qcodes, query_norms = self.query_context(queries)
        members = self._codes_gemm()
        cross = qcodes @ members.T
        return self._norms[:self._size][None, :] - 2.0 * cross \
            + query_norms[:, None]

    def _codes_gemm(self) -> np.ndarray:
        """The memoized GEMM-tier view of the live member codes."""
        if (self._codes_float is None
                or len(self._codes_float) != self._size):
            self._codes_float = self._codes[:self._size].astype(
                self._gemm_dtype)
        return self._codes_float

    # -- the LSH-pool hooks ----------------------------------------------
    def query_context(self, queries: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Per-batch query state shared by every pool/scan distance call."""
        qcodes = self.quantize(queries).astype(self._gemm_dtype)
        return qcodes, (qcodes * qcodes).sum(axis=1)

    def pool_distances(self, context: tuple[np.ndarray, np.ndarray],
                       rows: np.ndarray,
                       members: np.ndarray) -> np.ndarray:
        """[R, W] code-space distances of padded candidate pools.

        ``members[i, j]`` is a member index in query ``rows[i]``'s pool (pad
        slots included — the caller masks them afterwards).  Same exact
        integer arithmetic as :meth:`code_distances`, run as one batched
        GEMM over the gathered code rows, so the bucketed-LSH re-rank pools
        select their float-tier candidates from int8 codes instead of
        paying the full-width float GEMM.
        """
        qcodes, query_norms = context
        gathered = self._codes_gemm()[members]          # [R, W, d]
        dots = (gathered @ qcodes[rows][:, :, None])[:, :, 0]
        return (self._norms[members] + query_norms[rows][:, None]
                - 2.0 * dots)

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """Quantized candidate pass + float-tier re-rank.

        The int8 scan ranks the whole corpus in code space and keeps the
        ``k · overfetch`` best candidates per query — no square roots, no
        exact tie resolution, just one ``argpartition`` — then the float
        tier re-ranks that pool exactly (same tie-breaking as
        :func:`exact_search`, candidates pre-sorted by member index).

        Like the bucketed LSH indexes, the store heals itself when handed
        an embedding matrix whose length it does not recognize (full
        recalibration); a same-length geometry change must be announced via
        :meth:`recalibrate` — the RCS hooks do — or candidates are selected
        from stale codes (the float re-rank still prices whatever pool
        comes out, so staleness degrades recall, never distances).
        """
        embeddings = np.atleast_2d(np.asarray(embeddings))
        queries = _as_float_matrix(queries)
        n = len(embeddings)
        if n != self._size:
            self.recalibrate(embeddings)
        k = min(k, n)
        pool = k * max(self.config.overfetch, 1)
        if pool >= n or n < self.config.min_size:
            return exact_search(queries, embeddings, k)
        code_sq = self.code_distances(queries)
        candidates = np.argpartition(code_sq, pool - 1, axis=1)[:, :pool]
        candidates.sort(axis=1)
        return rerank_candidates(queries, embeddings, candidates, k)

    # -- persistence ------------------------------------------------------
    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """(arrays, JSON-able meta) capturing calibration, codes and the
        drift-accounting counters — everything :meth:`restore` needs to
        resurrect the store without requantizing."""
        assert self.zero_point is not None and self._codes is not None
        arrays = {"codes": self._codes[:self._size],
                  "zero_point": self.zero_point}
        meta = {"scale": self.scale,
                "added": self._added_since_calibration,
                "clipped": self._clipped_since_calibration}
        return arrays, meta

    @classmethod
    def restore(cls, embeddings: np.ndarray, config: QuantizationConfig,
                arrays: dict[str, np.ndarray],
                meta: dict) -> "QuantizedStore":
        """Rebuild from persisted state — no calibration pass.

        The code norms are recomputed from the saved codes (bit-identical
        to what :meth:`recalibrate` derives — same cast, same reduction);
        everything else loads verbatim, including the drift counters, so a
        restored node recalibrates at exactly the same future add as the
        node that saved it.
        """
        store = cls.__new__(cls)
        store.config = config
        codes = np.asarray(arrays["codes"], dtype=np.int8)
        n, dim = codes.shape
        store.scale = float(meta["scale"])
        store.zero_point = np.asarray(arrays["zero_point"],
                                      dtype=np.float64)
        store._gemm_dtype = np.dtype(
            np.float32 if 4 * dim * 127 * 127 < 2 ** 24 else np.float64)
        capacity = max(4, n)
        store._codes = np.zeros((capacity, dim), dtype=np.int8)
        store._codes[:n] = codes
        store._codes_float = None
        store._norms = np.zeros(capacity, dtype=store._gemm_dtype)
        gemm = store._codes[:n].astype(store._gemm_dtype)
        store._norms[:n] = (gemm * gemm).sum(axis=1)
        store._size = n
        store._added_since_calibration = int(meta["added"])
        store._clipped_since_calibration = int(meta["clipped"])
        return store


# ----------------------------------------------------------------------
# Product-quantization tier (wide embeddings)
# ----------------------------------------------------------------------
def seeded_kmeans(x: np.ndarray, k: int, rng: np.random.Generator,
                  iters: int) -> np.ndarray:
    """Deterministic k-means: k-means++ init from ``rng``, capped Lloyd.

    Every source of randomness flows through the caller's generator (the
    advisor RNG), every tie — centroid assignment, duplicate rows — breaks
    by lowest index, and the scatter-update runs through ``np.add.at``
    (sequential, order-stable), so identical inputs and seed produce
    bit-identical codebooks on every run: the property the CI determinism
    job pins.  When the corpus has fewer distinct rows than ``k`` the
    k-means++ pass runs out of mass (all distances zero) and the remaining
    centroids duplicate the first — assignments still resolve
    deterministically to the lowest centroid index.
    """
    n = len(x)
    k = max(1, min(k, n))
    centroids = np.empty((k, x.shape[1]), dtype=np.float64)
    centroids[0] = x[int(rng.integers(n))]
    d2 = squared_distance_matrix(x, centroids[:1])[:, 0]
    for j in range(1, k):
        total = float(d2.sum())
        if total <= 0.0:
            centroids[j:] = centroids[0]
            break
        choice = int(rng.choice(n, p=d2 / total))
        centroids[j] = x[choice]
        d2 = np.minimum(d2,
                        squared_distance_matrix(x, centroids[j:j + 1])[:, 0])
    for _ in range(iters):
        assign = squared_distance_matrix(x, centroids).argmin(axis=1)
        counts = np.bincount(assign, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, x)
        # Empty clusters keep their previous centroid (no random respawn —
        # determinism beats marginally better codebook utilization here).
        updated = np.where(counts[:, None] > 0,
                           sums / np.maximum(counts, 1)[:, None], centroids)
        if np.array_equal(updated, centroids):
            break
        centroids = updated
    return centroids


class PQStore:
    """Product-quantization codes of wide RCS embeddings + the ADC kernel.

    The flat int8 tier stops being attractive past ``INT8_EXACT_MAX_DIM``
    dims: its code distances lose int32 exactness (falling back to a
    float64 GEMM that costs as much as the float tier it was supposed to
    undercut) and one code byte per dimension stops compressing anything.
    Product quantization instead splits the ``d`` dimensions into
    ``num_subspaces`` contiguous subspaces, trains one ``codebook_size``-
    centroid codebook per subspace with :func:`seeded_kmeans`, and encodes
    every member as one uint8 centroid id per subspace — d floats become
    ``num_subspaces`` bytes.

    Scanning is asymmetric-distance computation (ADC): per query batch one
    lookup table of ``−2 · q_m · c_{m,j}`` per subspace is computed once
    (a [Q, K] GEMM against each codebook), and a member's approximate
    distance is its precomputed reconstruction norm plus ``num_subspaces``
    table gathers — no per-member inner products at all, which is the whole
    speedup at d = 512.  The ADC values are rank-only surrogates: they omit
    the per-query ``‖q‖²`` constant (it cannot reorder one query's
    candidates) and may be slightly negative; the top ``k · overfetch``
    candidates are re-ranked exactly in the float tier
    (:func:`rerank_candidates`), so returned distances are float-exact,
    just as in the int8 tier.

    ``residual=True`` adds a second codebook pass over the quantization
    residuals (``x − x̂``): reconstruction error roughly halves, at one
    more code byte and one more ADC gather per subspace — the opt-in knob
    for recall-critical corpora.

    :meth:`add` encodes appended rows under the frozen codebooks and
    reports drift through the reconstruction error: a row whose error
    overshoots the calibration-time maximum by ``drift_outlier_factor``
    (or an accumulated fraction of above-maximum rows past
    ``drift_clip_fraction``) means the frozen codebooks no longer cover
    the corpus geometry, and the owner — the RCS — recalibrates.
    """

    #: Code layout tag (the serving CLI and tier reports read this).
    kind = "pq"

    def __init__(self, embeddings: np.ndarray,
                 config: QuantizationConfig | None = None) -> None:
        self.config = config or QuantizationConfig()
        self._splits: list[slice] = []
        self._codebooks: list[np.ndarray] = []           # M × [K, d_m]
        self._residual_codebooks: list[np.ndarray] = []
        self._codebook_k = 0
        self._num_subspaces = 0
        self._codes: np.ndarray | None = None            # [capacity, M] uint8
        self._residual_codes: np.ndarray | None = None
        self._gather_codes: list[np.ndarray] | None = None  # [M, N] int64 memo
        self._recon_norms: np.ndarray | None = None      # [capacity] ‖x̂‖²
        self._member_norms: np.ndarray | None = None     # [capacity] ‖x‖² (float tier)
        #: Per-codebook [K] centroid norms, folded into the ADC tables so
        #: the plain-PQ scan needs no per-member norm pass at all (the
        #: subspaces are disjoint, so ‖x̂‖² = Σ_m ‖c_m‖²).
        self._centroid_norms: list[list[np.ndarray]] = []
        #: Residual mode only: the per-member cross term ``2 Σ_m c1_m·c2_m``
        #: the folded tables cannot carry ([capacity] float32; None = plain).
        self._scan_bias: np.ndarray | None = None
        self._size = 0
        self._err_scale = 0.0
        self._added_since_calibration = 0
        self._high_error_since_calibration = 0
        self.recalibrate(embeddings)

    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The live [N, M] uint8 code matrix (first-pass codebook ids)."""
        return self._codes[:self._size]

    @property
    def codebooks(self) -> list[np.ndarray]:
        """The per-subspace [K, d_m] centroid matrices."""
        return self._codebooks

    @property
    def num_subspaces(self) -> int:
        return self._num_subspaces

    # -- calibration ----------------------------------------------------
    def recalibrate(self, embeddings: np.ndarray) -> None:
        """(Re)train the codebooks from the corpus and re-encode it."""
        raw = _as_float_matrix(embeddings)
        # Float-tier member norms for the re-rank, computed on the corpus'
        # own serving tier *before* the float64 cast the codebook math
        # runs on — bit-identical to what the re-rank would recompute.
        member_norms = (raw * raw).sum(axis=1)
        embeddings = np.asarray(raw, dtype=np.float64)
        n, dim = embeddings.shape
        config = self.config
        m = config.num_subspaces
        if m <= 0:
            # The subspace count IS the scan cost: every member costs one
            # table gather per subspace, so the ADC pass only beats the
            # float GEMM when m stays far below d.  ~128 dims per subspace
            # keeps the d = 512 scan ≥ 2× the exact float32 scan (the
            # pq_search bench); corpora whose neighbor gaps sit near the
            # coarser reconstruction error can buy fidelity back with
            # ``residual=True`` (or an explicit ``num_subspaces``) instead
            # of paying gathers on every query.
            m = int(np.clip(dim // 128, 4, 16))
        m = max(1, min(m, max(dim, 1)))
        bounds = np.linspace(0, dim, m + 1).astype(np.int64)
        self._splits = [slice(int(bounds[i]), int(bounds[i + 1]))
                        for i in range(m)]
        self._num_subspaces = m
        rng = np.random.default_rng(config.seed)
        train = embeddings
        if n > config.kmeans_sample:
            train = embeddings[np.sort(
                rng.choice(n, config.kmeans_sample, replace=False))]
        self._codebook_k = max(1, min(config.codebook_size,
                                      max(len(train), 1)))
        self._codebooks = [
            seeded_kmeans(train[:, sl], self._codebook_k, rng,
                          config.kmeans_iters)
            if len(train) else np.zeros((1, sl.stop - sl.start),
                                        dtype=np.float64)
            for sl in self._splits
        ]
        self._codebook_k = len(self._codebooks[0])
        self._residual_codebooks = []
        if config.residual and len(train):
            train_recon = self._encode_with(train, self._codebooks)[1]
            residuals = train - train_recon
            self._residual_codebooks = [
                seeded_kmeans(residuals[:, sl], self._codebook_k, rng,
                              config.kmeans_iters)
                for sl in self._splits
            ]
        self._centroid_norms = [
            [(book * book).sum(axis=1) for book in books]
            for books in ([self._codebooks, self._residual_codebooks]
                          if self._residual_codebooks else [self._codebooks])
        ]
        codes, residual_codes, recon = self._encode(embeddings)
        capacity = max(4, n)
        self._codes = np.zeros((capacity, m), dtype=np.uint8)
        self._codes[:n] = codes
        self._residual_codes = None
        self._scan_bias = None
        if self._residual_codebooks:
            self._residual_codes = np.zeros((capacity, m), dtype=np.uint8)
            self._residual_codes[:n] = residual_codes
            self._scan_bias = np.zeros(capacity, dtype=np.float32)
        self._member_norms = np.zeros(capacity, dtype=member_norms.dtype)
        self._member_norms[:n] = member_norms
        self._recon_norms = np.zeros(capacity, dtype=np.float32)
        self._recon_norms[:n] = (recon * recon).sum(axis=1)
        if self._scan_bias is not None:
            self._scan_bias[:n] = self._recon_norms[:n] - self._fold_norms(
                codes, residual_codes)
        self._gather_codes = None
        self._size = n
        # Drift reference: the worst reconstruction error the calibration
        # itself produced (floored against a perfectly reconstructed tiny
        # corpus, where any genuinely new row warrants a cheap recalibrate).
        err = np.sqrt(np.maximum(((embeddings - recon) ** 2).sum(axis=1),
                                 0.0))
        floor = 1e-9 * max(float(np.abs(embeddings).max()) if n else 0.0, 1.0)
        self._err_scale = max(float(err.max()) if n else 0.0, floor)
        self._added_since_calibration = 0
        self._high_error_since_calibration = 0

    def _fold_norms(self, codes: np.ndarray,
                    residual_codes: np.ndarray | None) -> np.ndarray:
        """Σ_m ‖c_m‖² over every codebook pass — what the folded ADC tables
        already account for per member."""
        folded = np.zeros(len(codes), dtype=np.float64)
        for pass_norms, pass_codes in zip(
                self._centroid_norms,
                [codes] + ([residual_codes]
                           if residual_codes is not None else [])):
            for i in range(self._num_subspaces):
                folded += pass_norms[i][pass_codes[:, i].astype(np.int64)]
        return folded.astype(np.float32)

    def _encode_with(self, x: np.ndarray, codebooks: list[np.ndarray]
                     ) -> tuple[np.ndarray, np.ndarray]:
        """([n, M] uint8 codes, [n, d] reconstruction) under ``codebooks``."""
        codes = np.empty((len(x), self._num_subspaces), dtype=np.uint8)
        recon = np.empty_like(x)
        for i, sl in enumerate(self._splits):
            assign = squared_distance_matrix(
                x[:, sl], codebooks[i]).argmin(axis=1)
            codes[:, i] = assign
            recon[:, sl] = codebooks[i][assign]
        return codes, recon

    def _encode(self, x: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        """Full encode: first-pass codes, residual codes (opt-in), recon."""
        codes, recon = self._encode_with(x, self._codebooks)
        residual_codes = None
        if self._residual_codebooks:
            residual_codes, residual_recon = self._encode_with(
                x - recon, self._residual_codebooks)
            recon = recon + residual_recon
        return codes, residual_codes, recon

    def reconstruct(self) -> np.ndarray:
        """Float64 reconstruction of the live corpus from its codes."""
        recon = np.empty((self._size, self._splits[-1].stop),
                         dtype=np.float64)
        for i, sl in enumerate(self._splits):
            recon[:, sl] = self._codebooks[i][
                self._codes[:self._size, i].astype(np.int64)]
            if self._residual_codes is not None:
                recon[:, sl] += self._residual_codebooks[i][
                    self._residual_codes[:self._size, i].astype(np.int64)]
        return recon

    # -- growth ----------------------------------------------------------
    def add(self, embedding: np.ndarray) -> bool:
        """Encode one appended row; True = drift, caller must recalibrate."""
        raw = _as_float_matrix(embedding).reshape(1, -1)
        row = np.asarray(raw, dtype=np.float64)
        codes, residual_codes, recon = self._encode(row)
        err = float(np.sqrt(max(((row - recon) ** 2).sum(), 0.0)))
        self._added_since_calibration += 1
        if err > self._err_scale:
            self._high_error_since_calibration += 1
        if self._size == len(self._codes):
            grown = np.zeros((2 * self._size, self._num_subspaces),
                             dtype=np.uint8)
            grown[:self._size] = self._codes[:self._size]
            self._codes = grown
            if self._residual_codes is not None:
                grown = np.zeros((2 * self._size, self._num_subspaces),
                                 dtype=np.uint8)
                grown[:self._size] = self._residual_codes[:self._size]
                self._residual_codes = grown
            grown_norms = np.zeros(2 * self._size, dtype=np.float32)
            grown_norms[:self._size] = self._recon_norms[:self._size]
            self._recon_norms = grown_norms
            grown_member = np.zeros(2 * self._size,
                                    dtype=self._member_norms.dtype)
            grown_member[:self._size] = self._member_norms[:self._size]
            self._member_norms = grown_member
            if self._scan_bias is not None:
                grown_bias = np.zeros(2 * self._size, dtype=np.float32)
                grown_bias[:self._size] = self._scan_bias[:self._size]
                self._scan_bias = grown_bias
        self._codes[self._size] = codes[0]
        if self._residual_codes is not None:
            self._residual_codes[self._size] = residual_codes[0]
        self._recon_norms[self._size] = (recon * recon).sum()
        # Norm of the row as the RCS stores it (the corpus tier), so the
        # memo stays bit-identical to a recomputation from the live matrix.
        row_tier = np.asarray(raw[0], dtype=self._member_norms.dtype)
        self._member_norms[self._size] = (row_tier * row_tier).sum()
        if self._scan_bias is not None:
            self._scan_bias[self._size] = (
                self._recon_norms[self._size]
                - self._fold_norms(codes, residual_codes)[0])
        self._gather_codes = None
        self._size += 1
        config = self.config
        if err > self._err_scale * config.drift_outlier_factor:
            return True
        return (self._high_error_since_calibration
                > config.drift_clip_fraction
                * max(self._added_since_calibration, 1))

    # -- the ADC kernel ---------------------------------------------------
    def query_context(self, queries: np.ndarray) -> list[np.ndarray]:
        """The per-batch ADC lookup tables, computed once per query batch.

        One [M, Q, K] float32 table per codebook pass holding
        ``‖c_{m,j}‖² − 2 · q_m · c_{m,j}`` — the centroid norms are folded
        in because the subspaces are disjoint (``‖x̂‖² = Σ_m ‖c_m‖²``), so
        a member's rank surrogate is just M table gathers (2M plus the
        per-member cross-term bias with residuals) and the scan never
        touches a per-member norm array.
        """
        q = np.asarray(_as_float_matrix(queries), dtype=np.float64)
        tables = [self._adc_table(q, self._codebooks,
                                  self._centroid_norms[0])]
        if self._residual_codebooks:
            tables.append(self._adc_table(q, self._residual_codebooks,
                                          self._centroid_norms[1]))
        return tables

    def _adc_table(self, q: np.ndarray, codebooks: list[np.ndarray],
                   centroid_norms: list[np.ndarray]) -> np.ndarray:
        table = np.empty((self._num_subspaces, len(q), self._codebook_k),
                         dtype=np.float32)
        for i, sl in enumerate(self._splits):
            table[i] = centroid_norms[i][None, :] - 2.0 * (q[:, sl]
                                                           @ codebooks[i].T)
        return table

    def _scan_codes(self) -> list[np.ndarray]:
        """Memoized [M, N] int64 transposed code rows for the ADC scan.

        ``np.take`` with a contiguous int64 index row runs ~2× faster than
        with a strided uint8 column view, and the transposition is paid
        once per corpus change (dropped by :meth:`add` /
        :meth:`recalibrate`) instead of once per scan chunk.
        """
        if (self._gather_codes is None
                or self._gather_codes[0].shape[1] != self._size):
            sets = [self._codes[:self._size]]
            if self._residual_codes is not None:
                sets.append(self._residual_codes[:self._size])
            self._gather_codes = [
                np.ascontiguousarray(codes.T.astype(np.int64))
                for codes in sets
            ]
        return self._gather_codes

    def _accumulate_block(self, context: list[np.ndarray],
                          code_sets: list[np.ndarray], start: int,
                          stop: int) -> np.ndarray:
        """One [Q, stop−start] ADC block: bias (residual cross term) or a
        first-table fast path, plus the remaining table gathers.  The single
        accumulation kernel behind both the materialized scan
        (:meth:`adc_distances`) and the chunk-local selection
        (:meth:`_scan_select`)."""
        if self._scan_bias is not None:
            block = np.broadcast_to(
                self._scan_bias[start:stop],
                (context[0].shape[1], stop - start)).copy()
            first = 0
        else:
            block = np.take(context[0][0], code_sets[0][0][start:stop],
                            axis=1)
            first = 1
        for pass_id, (table, codes) in enumerate(zip(context, code_sets)):
            lo = first if pass_id == 0 else 0
            for i in range(lo, self._num_subspaces):
                block += np.take(table[i], codes[i][start:stop], axis=1)
        return block

    def adc_distances(self, queries: np.ndarray) -> np.ndarray:
        """[Q, N] ADC rank surrogates of the whole corpus.

        Chunked over members so the [Q, chunk] accumulator stays cache-
        resident across the M (or 2M) gather passes instead of streaming a
        [Q, N] matrix through memory per subspace.
        """
        context = self.query_context(queries)
        num_queries = context[0].shape[1]
        n = self._size
        out = np.empty((num_queries, n), dtype=np.float32)
        code_sets = self._scan_codes()
        step = int(max(256, (1 << 21) // max(num_queries, 1)))
        for start in range(0, n, step):
            stop = min(start + step, n)
            out[:, start:stop] = self._accumulate_block(context, code_sets,
                                                        start, stop)
        return out

    def pool_distances(self, context: list[np.ndarray], rows: np.ndarray,
                       members: np.ndarray) -> np.ndarray:
        """[R, W] ADC rank surrogates of padded candidate pools.

        Same contract as :meth:`QuantizedStore.pool_distances`: pad slots
        come back with real values and the caller masks them, so the
        bucketed-LSH pools select their float-tier candidates from PQ codes
        without any per-member inner products.
        """
        if self._scan_bias is not None:
            acc = self._scan_bias[members].astype(np.float32, copy=True)
        else:
            acc = np.zeros(members.shape, dtype=np.float32)
        code_sets = [self._codes]
        if self._residual_codes is not None:
            code_sets.append(self._residual_codes)
        for table, codes in zip(context, code_sets):
            gathered = codes[members].astype(np.int64)       # [R, W, M]
            sub = table[:, rows]          # one [M, R, K] row-gather per pass
            for i in range(self._num_subspaces):
                acc += np.take_along_axis(sub[i], gathered[:, :, i], axis=1)
        return acc

    def _scan_select(self, queries: np.ndarray, pool: int) -> np.ndarray:
        """[Q, pool] ADC-best member indices, selected chunk-locally.

        Equivalent to ``argpartition(adc_distances(q), pool)`` but the
        partial top-``pool`` of each member chunk is taken while the just-
        computed ADC block is still cache-resident, and only the per-chunk
        survivors meet in the final (tiny) partition — the full [Q, N]
        surrogate matrix is never materialized or re-read cold.
        """
        context = self.query_context(queries)
        num_queries = context[0].shape[1]
        n = self._size
        code_sets = self._scan_codes()
        step = int(max(2 * pool, (1 << 21) // max(num_queries, 1)))
        best_vals: list[np.ndarray] = []
        best_idx: list[np.ndarray] = []
        for start in range(0, n, step):
            stop = min(start + step, n)
            block = self._accumulate_block(context, code_sets, start, stop)
            if pool < stop - start:
                local = np.argpartition(block, pool - 1, axis=1)[:, :pool]
                best_vals.append(np.take_along_axis(block, local, axis=1))
                best_idx.append(local + start)
            else:
                best_vals.append(block)
                best_idx.append(np.broadcast_to(np.arange(start, stop),
                                                block.shape))
        vals = np.concatenate(best_vals, axis=1)
        idx = np.concatenate(best_idx, axis=1)
        if pool < vals.shape[1]:
            final = np.argpartition(vals, pool - 1, axis=1)[:, :pool]
            idx = np.take_along_axis(idx, final, axis=1)
        return idx

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """ADC candidate pass + float-tier re-rank.

        Mirrors :meth:`QuantizedStore.search` including the overfetch edge:
        a pool of ``k · overfetch ≥ N`` candidates selects the whole corpus
        anyway, so the scan degrades to the plain float search (no
        duplicate or missing candidates), and a corpus below ``min_size``
        never pays the ADC table build.  The store heals itself when handed
        an embedding matrix whose length it does not recognize.
        """
        embeddings = np.atleast_2d(np.asarray(embeddings))
        queries = _as_float_matrix(queries)
        n = len(embeddings)
        if n != self._size:
            self.recalibrate(embeddings)
        k = min(k, n)
        pool = k * max(self.config.overfetch, 1)
        if pool >= n or n < self.config.min_size:
            return exact_search(queries, embeddings, k)
        candidates = self._scan_select(queries, pool)
        candidates.sort(axis=1)
        return rerank_candidates(queries, embeddings, candidates, k,
                                 member_norms=self._member_norms[:n])

    # -- persistence ------------------------------------------------------
    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """(arrays, JSON-able meta) capturing codebooks, codes, the
        reconstruction norms and the drift counters."""
        assert self._codes is not None and self._recon_norms is not None
        arrays: dict[str, np.ndarray] = {
            "codes": self._codes[:self._size],
            "recon_norms": self._recon_norms[:self._size],
        }
        for i, book in enumerate(self._codebooks):
            arrays[f"codebook_{i}"] = book
        if self._residual_codes is not None:
            arrays["residual_codes"] = self._residual_codes[:self._size]
            for i, book in enumerate(self._residual_codebooks):
                arrays[f"residual_codebook_{i}"] = book
        meta = {"err_scale": self._err_scale,
                "added": self._added_since_calibration,
                "high_error": self._high_error_since_calibration,
                "num_subspaces": self._num_subspaces}
        return arrays, meta

    @classmethod
    def restore(cls, embeddings: np.ndarray, config: QuantizationConfig,
                arrays: dict[str, np.ndarray], meta: dict) -> "PQStore":
        """Rebuild from persisted state — **zero** k-means calls.

        Codebooks, codes and reconstruction norms load verbatim; the
        float-tier member norms are recomputed from the live corpus (the
        same reduction :meth:`recalibrate` runs, bit-identical), the
        centroid-norm fold and the residual scan bias are re-derived from
        the loaded codebooks (cheap, deterministic), and the drift
        counters resume exactly where the saving node left them.
        """
        store = cls.__new__(cls)
        store.config = config
        codes = np.asarray(arrays["codes"], dtype=np.uint8)
        n, m = codes.shape
        raw = _as_float_matrix(embeddings)
        member_norms = (raw * raw).sum(axis=1)
        dim = raw.shape[1]
        bounds = np.linspace(0, dim, m + 1).astype(np.int64)
        store._splits = [slice(int(bounds[i]), int(bounds[i + 1]))
                        for i in range(m)]
        store._num_subspaces = m
        store._codebooks = [
            np.asarray(arrays[f"codebook_{i}"], dtype=np.float64)
            for i in range(m)]
        store._codebook_k = len(store._codebooks[0])
        store._residual_codebooks = []
        residual_codes = None
        if "residual_codes" in arrays:
            residual_codes = np.asarray(arrays["residual_codes"],
                                        dtype=np.uint8)
            store._residual_codebooks = [
                np.asarray(arrays[f"residual_codebook_{i}"],
                           dtype=np.float64)
                for i in range(m)]
        store._centroid_norms = [
            [(book * book).sum(axis=1) for book in books]
            for books in ([store._codebooks, store._residual_codebooks]
                          if store._residual_codebooks
                          else [store._codebooks])
        ]
        capacity = max(4, n)
        store._codes = np.zeros((capacity, m), dtype=np.uint8)
        store._codes[:n] = codes
        store._residual_codes = None
        store._scan_bias = None
        if residual_codes is not None:
            store._residual_codes = np.zeros((capacity, m), dtype=np.uint8)
            store._residual_codes[:n] = residual_codes
            store._scan_bias = np.zeros(capacity, dtype=np.float32)
        store._member_norms = np.zeros(capacity, dtype=member_norms.dtype)
        store._member_norms[:n] = member_norms
        store._recon_norms = np.zeros(capacity, dtype=np.float32)
        store._recon_norms[:n] = np.asarray(arrays["recon_norms"],
                                            dtype=np.float32)
        if store._scan_bias is not None:
            store._scan_bias[:n] = store._recon_norms[:n] - store._fold_norms(
                codes, residual_codes)
        store._gather_codes = None
        store._size = n
        store._err_scale = float(meta["err_scale"])
        store._added_since_calibration = int(meta["added"])
        store._high_error_since_calibration = int(meta["high_error"])
        return store


if TYPE_CHECKING:
    from .ivf import IVFStore

    #: Any quantized candidate tier; everything downstream of
    #: :func:`select_quantizer` is layout-agnostic (``candidate_scan``,
    #: the LSH pool narrowing, the RCS requantization hooks).
    CandidateStore = QuantizedStore | PQStore | IVFStore
else:
    # Runtime alias kept import-cycle-free: core.ivf imports this module,
    # so the IVF member only joins the union under TYPE_CHECKING and
    # select_quantizer imports it locally.
    CandidateStore = QuantizedStore | PQStore


def select_quantizer(embeddings: np.ndarray,
                     config: QuantizationConfig) -> "CandidateStore":
    """Build the candidate tier a corpus' width calls for.

    ``mode="auto"`` picks flat int8 up to ``INT8_EXACT_MAX_DIM`` dims —
    where its code distances are exact integer arithmetic in a float32
    GEMM — and product quantization past that, where flat int8 loses both
    its exactness bound and its compression ratio.  "int8" / "pq" pin a
    layout regardless of width.  ``ivf=True`` wraps the chosen flat store
    in an :class:`~repro.core.ivf.IVFStore` coarse partition, which probes
    only the ``nprobe`` nearest cells per query and delegates back to the
    flat scan whenever the partition can't beat it (small corpus,
    ``nprobe >= cells``).
    """
    embeddings = _as_float_matrix(embeddings)
    mode = config.mode
    if mode == "auto":
        mode = ("int8" if embeddings.shape[1] <= INT8_EXACT_MAX_DIM
                else "pq")
    base: QuantizedStore | PQStore
    if mode == "pq":
        base = PQStore(embeddings, config)
    else:
        base = QuantizedStore(embeddings, config)
    if config.ivf:
        from .ivf import IVFStore
        return IVFStore(embeddings, config, store=base)
    return base


def candidate_scan(queries: np.ndarray, embeddings: np.ndarray, k: int,
                   store: "CandidateStore | None" = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Corpus scan at the best attached precision: quantized candidates
    (int8 codes or PQ ADC) when a size-synced store is available, float
    otherwise.  With ``k · overfetch`` covering the whole corpus both
    stores degrade to the plain float scan — same indices, same distances,
    no duplicate or missing candidates."""
    if store is not None and len(store) == len(embeddings):
        return store.search(queries, embeddings, k)
    return exact_search(queries, embeddings, k)


@runtime_checkable
class NeighborIndex(Protocol):
    """Shared protocol of the exact and approximate serving indexes.

    ``embeddings`` in :meth:`search` is always the *live* RCS matrix — the
    index only accelerates candidate selection and re-ranks against the
    source of truth, so it never has to copy (or risk serving stale copies
    of) the embedding rows themselves.
    """

    def rebuild(self, embeddings: np.ndarray) -> None:
        """(Re)index the full [N, d] embedding matrix."""

    def add(self, embedding: np.ndarray) -> None:
        """Index one appended row without re-hashing the existing corpus."""

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int, *, store: "CandidateStore | None" = None
               ) -> tuple[np.ndarray, np.ndarray]:
        """([Q, k] neighbor indices, [Q, k] Euclidean distances).

        ``store`` optionally provides a quantized candidate tier (flat
        int8 codes or PQ): scan-shaped passes (the exhaustive search and
        the LSH indexes' exact fallbacks) run their candidate selection
        over the codes, and the bucketed LSH indexes additionally rank
        their padded re-rank pools in code space — all re-ranked in the
        float tier.
        """


class ExactIndex:
    """The exhaustive Gram-identity search behind the index protocol."""

    def rebuild(self, embeddings: np.ndarray) -> None:
        pass

    def add(self, embedding: np.ndarray) -> None:
        pass

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int, *, store: CandidateStore | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        return candidate_scan(queries, embeddings, k, store)


@dataclass
class E2LSHConfig:
    """Quantized-projection (E2LSH-style) hash parameters.

    Each of ``num_tables`` tables hashes an embedding to the integer lattice
    cell of ``num_projections`` quantized projections ``floor((x·w + b)/r)``.
    Unlike the sign hash, the bucket id changes with *distance along* each
    projection, not just its sign, so corpora without family/cluster
    structure (uniform clouds, shells, low-intrinsic-dimension manifolds)
    still spread over distance-coherent buckets.
    """

    #: Independent hash tables; more tables = higher recall, more probes.
    #: Each table sits on its own rung of the radius ladder (see ``radius``).
    num_tables: int = 10
    #: Quantized projections per table; 0 = auto-size from the corpus size
    #: at rebuild time.
    num_projections: int = 0
    #: Quantization width r; 0 = calibrate a per-table radius *ladder* from
    #: the corpus at rebuild time: table t's radius is ``radius_scale``
    #: times the t-th percentile of the sampled members' k-NN distances.
    #: Embedding clouds whose local neighbor scale varies across the corpus
    #: (e.g. sum-pooled GIN embeddings, where scale grows with the radial
    #: coordinate) then always have some rungs quantizing at the right
    #: granularity; a corpus with one global scale gets ~equal rungs and
    #: the ladder degenerates to the textbook single radius.
    radius: float = 0.0
    #: Multiplier applied to the sampled k-NN distance scale(s).
    radius_scale: float = 2.4
    #: Members sampled (and the k used) for the radius calibration probe.
    calibration_sample: int = 256
    calibration_k: int = 5
    #: Extra buckets walked per table and query: single lattice steps along
    #: the coordinates whose cell boundary is nearest (the query-directed
    #: multi-probe heuristic of Lv et al., restricted to ±1 perturbations);
    #: values beyond 2·num_projections extend the walk with the cheapest
    #: two-coordinate combinations.
    num_probes: int = 16
    #: Buckets larger than this contribute no candidates (0 = no cap): an
    #: oversized bucket is a mismatched ladder rung quantizing too coarsely
    #: for this query's neighborhood and would flood the re-rank pool.
    bucket_cap: int = 128
    #: Pool-size guard rails shared with the sign hash: too-sparse pools
    #: fall back to exact search, too-dense pools (no locality to exploit,
    #: e.g. a degenerate all-identical corpus) likewise (0 = never).
    min_candidates: int = 16
    max_candidates: int = 2048
    seed: int = 0


@dataclass
class ANNConfig:
    """Random-hyperplane LSH parameters for the approximate serving index."""

    #: RCS size at which the advisor switches from exact to ANN search
    #: (0 disables ANN entirely).
    threshold: int = 1024
    #: Independent hash tables; more tables = higher recall, more probes.
    num_tables: int = 8
    #: Hyperplanes (signature bits) per table; 0 = auto-size from the
    #: indexed corpus size at rebuild time.
    num_bits: int = 0
    #: Extra buckets probed per table, flipping the signature bits whose
    #: projection margin is smallest (the classic multi-probe heuristic).
    num_probes: int = 4
    #: Queries whose probed candidate pool is smaller than this fall back to
    #: the exact search — the recall safety net for sparse bucket regions.
    min_candidates: int = 16
    #: Queries whose probed candidate pool exceeds this also fall back to
    #: the exact scan: a pool that large means the hash sees no locality to
    #: exploit, and one dense query must not widen the whole batch's padded
    #: re-rank matrix (0 = never).
    max_candidates: int = 1024
    #: Per-bucket candidate cap shared with the E2LSH index (0 = no cap,
    #: the sign hash's historical behavior: oversized buckets flow into the
    #: pool and trip the ``max_candidates`` exact fallback instead).
    bucket_cap: int = 0
    #: PCA-whiten embeddings before hashing (re-ranking always uses the raw
    #: distances).  Graph-encoder embeddings concentrate most variance in
    #: very few directions — sum pooling makes "corpus size along the mean
    #: activation ray" dominant — and sign-of-projection hashes are blind
    #: along a dominant axis unless the cloud is equalized first.
    whiten: bool = True
    #: Pin the index family instead of letting the recall probe choose:
    #: "auto" (the probe), "sign" (:class:`ANNIndex`), "e2lsh"
    #: (:class:`E2LSHIndex`) or "exact" (:class:`ExactIndex`).  Useful for
    #: operational pinning and for exercising one specific serving path.
    family: str = "auto"
    #: Let :func:`select_neighbor_index` (the sign-hash recall probe) swap
    #: in the :class:`E2LSHIndex` when the corpus has no family/cluster
    #: structure for sign buckets to exploit.
    auto_e2lsh: bool = True
    #: Members replayed by the recall probe.  The sign hash is kept only
    #: when at most ``probe_fallback_threshold`` of them fall back to the
    #: exact scan, its recall@5 against the exact ground truth reaches
    #: ``probe_min_recall`` (healthy-looking buckets can still be blind to
    #: distance on cluster-free corpora — the recall check catches that),
    #: and the mean candidate pool stays under ``probe_max_pool_fraction``
    #: of the corpus (a hash that re-ranks a third of the RCS per query has
    #: degraded to a slightly-disguised exact scan).
    probe_sample: int = 64
    probe_fallback_threshold: float = 0.5
    probe_min_recall: float = 0.85
    probe_max_pool_fraction: float = 0.05
    #: When the sign hash degrades, corpora at least this large switch to
    #: the quantized-projection E2LSH index; smaller ones serve the plain
    #: exact scan (at those sizes the scan is cheaper than any hash walk).
    e2lsh_threshold: int = 4096
    #: Parameters of the quantized-projection index the probe may select.
    e2lsh: E2LSHConfig = field(default_factory=E2LSHConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        # Fail at configuration time, not from deep inside an online add
        # when the RCS first crosses the attachment threshold.
        if self.family not in ("auto", "sign", "e2lsh", "exact"):
            raise ValueError(
                f"unknown index family {self.family!r}; expected one of "
                "'auto', 'sign', 'e2lsh', 'exact'")


class _BucketedLSHIndex:
    """Shared substrate of the bucketed LSH serving indexes.

    Owns everything hash-family-agnostic: the [L, capacity] bucket-code
    growth buffer, precomputed member norms, the lazily re-sorted per-table
    bucket tables, the vectorized candidate-pair expansion, the padded
    exact re-rank in geometric pool-size bins, and the per-query exact
    fallback for degenerate (too sparse / too dense) pools.  Subclasses
    provide the hash family through two hooks:

    * :meth:`_fit` — derive projections/calibration from the corpus;
    * :meth:`_hash_codes` — [Q, L] int64 bucket codes;
    * :meth:`_probe_codes` — [Q, L, P] bucket codes to visit per query.

    ``last_fallback_fraction`` records, after every :meth:`search`, the
    fraction of queries served by the exact fallback — the observable the
    sign-hash recall probe (:func:`select_neighbor_index`) reads to detect
    a corpus the hash family cannot bucket usefully.
    """

    def __init__(self, config: ANNConfig | E2LSHConfig) -> None:
        self.config = config
        if config.num_tables < 1:
            raise ValueError("num_tables must be positive")
        self._fitted = False
        self._codes: np.ndarray | None = None         # [L, capacity] growth buffer
        self._norms: np.ndarray | None = None         # [capacity] ‖x‖² per member
        self._size = 0
        self._order: np.ndarray | None = None         # [L, N] members by code
        self._sorted_codes: np.ndarray | None = None  # [L, N]
        self._stale_sort = True
        self.last_fallback_fraction = 0.0
        self.last_pool_fraction = 0.0

    def __len__(self) -> int:
        return self._size

    # -- subclass hooks -------------------------------------------------
    def _fit(self, embeddings: np.ndarray) -> None:
        raise NotImplementedError

    def _hash_codes(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _probe_codes(self, queries: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def rebuild(self, embeddings: np.ndarray) -> None:
        embeddings = _as_float_matrix(embeddings)
        n = len(embeddings)
        self._fit(embeddings)
        self._fitted = True
        codes = self._hash_codes(embeddings)
        capacity = max(4, n)
        self._codes = np.zeros((self.config.num_tables, capacity),
                               dtype=np.int64)
        self._codes[:, :n] = codes.T
        self._norms = np.zeros(capacity, dtype=embeddings.dtype)
        self._norms[:n] = (embeddings * embeddings).sum(axis=1)
        self._size = n
        self._stale_sort = True

    def add(self, embedding: np.ndarray) -> None:
        embedding = _as_float_matrix(embedding).reshape(1, -1)
        if not self._fitted:
            self.rebuild(embedding)
            return
        codes = self._hash_codes(embedding)
        if self._size == self._codes.shape[1]:
            grown = np.zeros((self.config.num_tables, 2 * self._size),
                             dtype=np.int64)
            grown[:, :self._size] = self._codes[:, :self._size]
            self._codes = grown
            grown_norms = np.zeros(2 * self._size, dtype=self._norms.dtype)
            grown_norms[:self._size] = self._norms[:self._size]
            self._norms = grown_norms
        self._codes[:, self._size] = codes[0]
        self._norms[self._size] = float((embedding * embedding).sum())
        self._size += 1
        self._stale_sort = True

    # ------------------------------------------------------------------
    #: 64-bit multiplicative-hash constant (golden-ratio based).
    _HASH_GOLD = np.uint64(0x9E3779B97F4A7C15)

    def _refresh_sort(self) -> None:
        if not self._stale_sort:
            return
        codes = self._codes[:, :self._size]
        self._order = np.argsort(codes, axis=1, kind="stable")
        self._sorted_codes = np.take_along_axis(codes, self._order, axis=1)
        self._build_bucket_maps()
        self._stale_sort = False

    # -- open-addressing bucket maps ------------------------------------
    # Probing visits Q·L·(1+p) buckets per search; binary search over the
    # sorted codes costs ~100ns per lookup (the measured hot spot of the
    # whole ANN path), while a vectorized linear-probing hash table resolves
    # most lookups with one or two gathers.  Each table maps a bucket code
    # to its [lo, hi) run in the sorted order arrays.

    def _hash_slots(self, keys: np.ndarray) -> np.ndarray:
        mixed = keys.astype(np.uint64) * self._HASH_GOLD
        mixed ^= mixed >> np.uint64(29)
        return (mixed & np.uint64(self._map_mask)).astype(np.int64)

    def _build_bucket_maps(self) -> None:
        """One flat open-addressing arena over all tables' buckets.

        Slot ``table * S + h`` holds table-local bucket data; every table's
        inserts and lookups run in the same vectorized probe rounds, so the
        round overhead is paid once per search instead of once per table.
        Load factor ≤ ¼ keeps linear-probe chains short.
        """
        n = self._size
        num_tables = self.config.num_tables
        size = 1 << int(np.ceil(np.log2(max(8, 4 * n))))
        self._map_mask = size - 1
        self._map_used = np.zeros(num_tables * size, dtype=bool)
        self._map_key = np.zeros(num_tables * size, dtype=np.int64)
        self._map_lo = np.zeros(num_tables * size, dtype=np.int64)
        self._map_hi = np.zeros(num_tables * size, dtype=np.int64)
        if n == 0:
            return
        codes = self._sorted_codes
        boundary = np.empty((num_tables, n), dtype=bool)
        boundary[:, 0] = True
        np.not_equal(codes[:, 1:], codes[:, :-1], out=boundary[:, 1:])
        table_id, lo = np.nonzero(boundary)
        run_starts = np.flatnonzero(boundary.ravel())
        hi = np.append(run_starts[1:], num_tables * n) - table_id * n
        keys = codes[table_id, lo]
        base = table_id * size
        slots = base + self._hash_slots(keys)
        pending = np.arange(len(keys))
        while pending.size:
            attempt = slots[pending]
            free = ~self._map_used[attempt]
            # Among writers hitting one free slot this round, the first
            # wins; losers (and occupied-slot hits) probe the next slot.
            winner_slots, first = np.unique(attempt[free], return_index=True)
            winners = pending[free][first]
            self._map_used[winner_slots] = True
            self._map_key[winner_slots] = keys[winners]
            self._map_lo[winner_slots] = lo[winners]
            self._map_hi[winner_slots] = hi[winners]
            placed = np.zeros(len(keys), dtype=bool)
            placed[winners] = True
            pending = pending[~placed[pending]]
            slots[pending] = (base[pending]
                              + ((slots[pending] + 1) & self._map_mask))

    def _bucket_ranges(self, probe: np.ndarray) -> tuple[np.ndarray,
                                                         np.ndarray]:
        """[lo, hi) sorted-order ranges for every probed bucket.

        ``probe`` is the [Q, L, P] code tensor; the result arrays are
        [L, Q·P] (tables leading, matching the expansion loop's layout).
        """
        num_tables = self.config.num_tables
        wanted = probe.transpose(1, 0, 2).reshape(num_tables, -1)
        width = wanted.shape[1]
        wanted = wanted.ravel()
        size = self._map_mask + 1
        base = np.repeat(np.arange(num_tables) * size, width)
        lo = np.zeros(len(wanted), dtype=np.int64)
        hi = np.zeros(len(wanted), dtype=np.int64)
        slots = base + self._hash_slots(wanted)
        pending = np.arange(len(wanted))
        target = wanted
        while pending.size:
            occupied = self._map_used[slots]
            match = occupied & (self._map_key[slots] == target)
            hits = pending[match]
            lo[hits] = self._map_lo[slots[match]]
            hi[hits] = self._map_hi[slots[match]]
            # Empty slot = code absent (count stays 0); otherwise keep
            # probing past the collision.
            miss = occupied & ~match
            pending = pending[miss]
            target = target[miss]
            base = base[miss]
            slots = base + ((slots[miss] + 1) & self._map_mask)
        return lo.reshape(num_tables, width), hi.reshape(num_tables, width)

    def _candidate_pairs(self, probe: np.ndarray,
                         num_queries: int) -> tuple[np.ndarray, np.ndarray]:
        """Unique (query, member) pairs over all probed buckets.

        Buckets larger than ``config.bucket_cap`` (when positive) contribute
        nothing: a bucket that large carries no locality information for
        this table — typically a lattice cell of a mismatched-radius ladder
        rung — and expanding it would only flood the re-rank pool.
        """
        per_query = probe.shape[2]
        num_tables = self.config.num_tables
        bucket_cap = getattr(self.config, "bucket_cap", 0)
        all_lo, all_hi = self._bucket_ranges(probe)
        counts = (all_hi - all_lo).ravel()              # [L · Q · P]
        if bucket_cap > 0:
            counts = np.where(counts > bucket_cap, 0, counts)
        total = int(counts.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64),) * 2
        # One vectorized ragged expansion of every [lo, hi) bucket range
        # across all tables; the order arrays are addressed flat with each
        # table's row offset folded into its start positions.
        starts = (all_lo
                  + (np.arange(num_tables) * self._size)[:, None]).ravel()
        expanded_starts = np.repeat(starts, counts)
        bases = np.repeat(np.cumsum(counts) - counts, counts)
        member = self._order.ravel()[expanded_starts + np.arange(total)
                                     - bases]
        qid_base = np.tile(np.repeat(np.arange(num_queries), per_query),
                           num_tables)
        # Dedup across tables/probes on the packed (query, member) key; the
        # sorted keys come back grouped by query with members ascending —
        # the order the re-rank's lowest-index tie-breaking relies on.
        keys = np.sort(np.repeat(qid_base, counts) * np.int64(self._size)
                       + member)
        keep = np.empty(len(keys), dtype=bool)
        keep[0] = True
        np.not_equal(keys[1:], keys[:-1], out=keep[1:])
        return np.divmod(keys[keep], self._size)

    def _rerank(self, rows: np.ndarray, member: np.ndarray, pool: np.ndarray,
                offsets: np.ndarray, queries: np.ndarray,
                query_norms: np.ndarray, embeddings: np.ndarray,
                k: int,
                pool_codes: tuple[QuantizedStore,
                                  tuple[np.ndarray, np.ndarray],
                                  int] | None = None
                ) -> tuple[np.ndarray, np.ndarray]:
        """Exact re-rank of the candidate pools of the ``rows`` queries.

        The pools are padded to the subset's maximum width and the dot
        products run as one batched GEMM against the query vectors (the
        Gram identity again, with member norms precomputed at index time);
        inf padding never wins the top-k.  Within a row candidates are in
        ascending member order, so the lowest-index tie-break of
        ``top_k_neighbors`` matches the exhaustive search.

        ``pool_codes`` — a ``(store, query_context, keep)`` triple — routes
        wide pools through the quantized tier first: the padded pool is
        ranked in code space (int8 GEMM / PQ ADC gathers) and only the
        ``keep = k · overfetch`` best candidates reach the float-tier GEMM,
        so the padded float matrix is never wider than the overfetch pool
        regardless of how dense the probed buckets were.
        """
        counts = pool[rows]
        width = int(counts.max())
        flat = (np.repeat(offsets[rows], counts)
                + np.arange(int(counts.sum()))
                - np.repeat(np.cumsum(counts) - counts, counts))
        rowid = np.repeat(np.arange(len(rows)), counts)
        position = flat - np.repeat(offsets[rows], counts)
        members = np.zeros((len(rows), width), dtype=np.int64)
        members[rowid, position] = member[flat]
        if pool_codes is not None and width > pool_codes[2]:
            members, counts = self._narrow_pools(pool_codes, rows, members,
                                                 counts)
            width = members.shape[1]
        dots = (embeddings[members] @ queries[rows][:, :, None])[:, :, 0]
        padded = np.maximum(
            self._norms[members] + query_norms[rows][:, None] - 2.0 * dots,
            0.0)
        padded[np.arange(width) >= counts[:, None]] = np.inf
        local = top_k_neighbors(padded, k)
        return (np.take_along_axis(members, local, axis=1),
                np.sqrt(np.take_along_axis(padded, local, axis=1)))

    @staticmethod
    def _narrow_pools(pool_codes: tuple[QuantizedStore,
                                        tuple[np.ndarray, np.ndarray], int],
                      rows: np.ndarray, members: np.ndarray,
                      counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Code-space narrowing of wide padded re-rank pools.

        Ranks every pool candidate in the attached store's code space and
        keeps the ``keep`` best per row.  Pad slots are masked to inf
        before selection; in rows with fewer than ``keep`` real candidates
        some pads are unavoidably selected, so the surviving candidates are
        reordered valid-first (then ascending member index — the order the
        float re-rank's lowest-index tie-break relies on) and the narrowed
        per-row counts mask the tail exactly as the original pads were
        masked.  No candidate is duplicated or dropped below ``keep``.
        """
        store, context, keep = pool_codes
        width = members.shape[1]
        code = store.pool_distances(context, rows, members)
        code[np.arange(width) >= counts[:, None]] = np.inf
        selected = np.argpartition(code, keep - 1, axis=1)[:, :keep]
        valid = np.take_along_axis(code, selected, axis=1) != np.inf
        chosen = np.take_along_axis(members, selected, axis=1)
        order = np.lexsort((chosen, ~valid), axis=1)
        return (np.take_along_axis(chosen, order, axis=1),
                valid.sum(axis=1))

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int, *, store: CandidateStore | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        embeddings = np.atleast_2d(np.asarray(embeddings))
        queries = _as_float_matrix(queries)
        dtype = _common_dtype(queries, embeddings)
        queries = queries.astype(dtype, copy=False)
        n = len(embeddings)
        if n != self._size or not self._fitted:
            self.rebuild(embeddings)
        k = min(k, n)
        floor = min(max(k, self.config.min_candidates), n)
        if n <= floor:
            self.last_fallback_fraction = 1.0
            self.last_pool_fraction = 1.0
            return candidate_scan(queries, embeddings, k, store)
        self._refresh_sort()
        num_queries = len(queries)
        qid, member = self._candidate_pairs(self._probe_codes(queries),
                                            num_queries)
        pool = np.bincount(qid, minlength=num_queries)
        offsets = np.cumsum(pool) - pool
        fallback = pool < floor
        if self.config.max_candidates > 0:
            fallback |= pool > self.config.max_candidates
        self.last_fallback_fraction = float(fallback.mean())
        # How much of the corpus an average query still touches (fallback
        # queries touch all of it): the recall probe's "is this hash
        # actually pruning anything" signal.
        self.last_pool_fraction = float(
            np.where(fallback, n, pool).mean() / n)
        active = np.nonzero(~fallback)[0]
        if active.size == 0:
            return candidate_scan(queries, embeddings, k, store)

        # Quantized re-rank pools: when a size-synced store is attached,
        # wide pools rank their candidates in code space (one shared
        # query context per search) and only k·overfetch survivors reach
        # the padded float GEMM — the second half of the candidate tier.
        pool_codes = None
        if (store is not None and len(store) == n
                and n >= store.config.min_size):
            keep = k * max(store.config.overfetch, 1)
            if keep > 0 and int(pool[active].max()) > keep:
                pool_codes = (store, store.query_context(queries), keep)

        indices = np.empty((num_queries, k), dtype=np.int64)
        distances = np.empty((num_queries, k), dtype=dtype)
        query_norms = (queries * queries).sum(axis=1)
        # Re-rank in geometric pool-size bins: a handful of dense queries
        # must not widen the padded candidate matrix of the (typically much
        # smaller) median pool.  frexp's exponent is floor(log2) + 1.
        levels = np.frexp(pool[active].astype(np.float64))[1]
        for level in np.unique(levels):
            rows = active[levels == level]
            indices[rows], distances[rows] = self._rerank(
                rows, member, pool, offsets, queries, query_norms,
                embeddings, k, pool_codes)
        if fallback.any():
            indices[fallback], distances[fallback] = candidate_scan(
                queries[fallback], embeddings, k, store)
        return indices, distances


class ANNIndex(_BucketedLSHIndex):
    """Multi-probe random-hyperplane *sign* LSH with exact re-ranking.

    Each of ``num_tables`` tables hashes an embedding to a ``num_bits``-bit
    signature (the sign pattern of projections onto random hyperplanes,
    taken around the corpus centroid so anisotropic embedding clouds still
    spread over buckets).  A query gathers every member sharing a bucket in
    any table — plus ``num_probes`` neighboring buckets per table, flipping
    the lowest-margin signature bits — and re-ranks that candidate pool with
    exact distances against the live embedding matrix.  Queries with too few
    candidates fall back to the exhaustive scan, so results degrade toward
    exact rather than toward empty.

    :meth:`add` hashes only the appended row (bucket tables are re-sorted
    lazily on the next search); :meth:`rebuild` re-hashes the corpus, which
    is also how the index heals itself if it observes an embedding matrix
    whose length it does not recognize.
    """

    def __init__(self, config: ANNConfig | None = None) -> None:
        super().__init__(config or ANNConfig())
        self._projection: np.ndarray | None = None  # [d, L·b], whitening folded in
        self._center: np.ndarray | None = None      # [d]
        self._num_bits = 0

    # ------------------------------------------------------------------
    def _fit(self, embeddings: np.ndarray) -> None:
        n, dim = embeddings.shape
        config = self.config
        bits = config.num_bits
        if bits <= 0:
            # Generous signatures (2^b buckets >> n) keep buckets near
            # pure-locality collisions; recall then comes from the
            # multi-probe expansion rather than coarse buckets.
            bits = int(np.clip(np.ceil(np.log2(max(n, 2))) + 3, 8, 24))
        self._num_bits = bits
        rng = np.random.default_rng(config.seed)
        hyperplanes = rng.standard_normal((config.num_tables * bits, dim))
        center = (embeddings.mean(axis=0, dtype=np.float64) if n
                  else np.zeros(dim, dtype=np.float64))
        # The whitening transform composes with the hyperplanes into one
        # [d, L·b] projection, so equalizing the embedding cloud costs
        # nothing per query; hashing then runs on the corpus' precision
        # tier (the whitening solve itself stays float64 for stability).
        projection = hyperplanes.T
        if config.whiten and n > 1:
            centered = np.asarray(embeddings, dtype=np.float64) - center
            eigvals, eigvecs = np.linalg.eigh(centered.T @ centered / n)
            top = float(eigvals.max())
            if top > 0.0:
                scale = 1.0 / np.sqrt(np.maximum(eigvals, 1e-9 * top))
                projection = (eigvecs * scale) @ hyperplanes.T
        self._center = center.astype(embeddings.dtype, copy=False)
        self._projection = projection.astype(embeddings.dtype, copy=False)

    def _signatures(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """([Q, L] bucket codes, [Q, L, b] signed projection margins)."""
        proj = (x.astype(self._projection.dtype, copy=False)
                - self._center) @ self._projection
        proj = proj.reshape(len(x), self.config.num_tables, self._num_bits)
        codes = (proj > 0) @ (np.int64(1) << np.arange(self._num_bits))
        return codes, proj

    def _hash_codes(self, x: np.ndarray) -> np.ndarray:
        return self._signatures(x)[0]

    def _probe_codes(self, queries: np.ndarray) -> np.ndarray:
        """[Q, L, 1 + p] bucket codes to visit per query and table."""
        codes, proj = self._signatures(queries)
        probes = min(self.config.num_probes, self._num_bits)
        out = np.empty(codes.shape + (1 + probes,), dtype=np.int64)
        out[..., 0] = codes
        if probes:
            # Flip the bits closest to their hyperplane: the buckets a near
            # neighbor is most likely to have landed in instead.
            flips = np.argsort(np.abs(proj), axis=2)[:, :, :probes]
            out[..., 1:] = codes[:, :, None] ^ (np.int64(1) << flips)
        return out


class E2LSHIndex(_BucketedLSHIndex):
    """Multi-probe quantized-projection (E2LSH-style) LSH.

    Hash family of Datar et al.: ``h(x) = floor((x·w + b) / r)`` with
    Gaussian ``w`` and ``b ~ U[0, r)``.  Collision probability decays with
    the true distance *along every projection* — not just its sign — so the
    index keeps discriminating near neighbors on corpora with no cluster
    structure at all (uniform clouds, shells), exactly where sign buckets
    collapse into a few huge cells and degrade to the exact scan.

    Per table the ``num_projections`` lattice coordinates are mixed into one
    int64 bucket key with random odd multipliers; because the key is linear
    in the coordinates, the multi-probe walk (stepping the coordinate whose
    cell boundary is closest to the query, in the cheaper direction) is a
    constant-time key increment per probe.  Candidate expansion, re-ranking
    and the degenerate-pool exact fallback are shared with the sign hash
    through :class:`_BucketedLSHIndex`.
    """

    #: Pair probes are drawn from combinations of this many cheapest single
    #: steps (m choose 2 extra probe candidates per table).
    _PAIR_POOL = 6

    def __init__(self, config: E2LSHConfig | None = None) -> None:
        super().__init__(config or E2LSHConfig())
        self._projection: np.ndarray | None = None  # [d, L·b]
        self._offsets: np.ndarray | None = None     # [L·b]
        self._mix: np.ndarray | None = None         # [L, b] odd multipliers
        self._num_projections = 0
        self._radii: np.ndarray | None = None       # [L] ladder rungs

    # ------------------------------------------------------------------
    def _fit(self, embeddings: np.ndarray) -> None:
        n, dim = embeddings.shape
        config = self.config
        rng = np.random.default_rng(config.seed)
        projections = config.num_projections
        if projections <= 0:
            # More lattice coordinates sharpen buckets but cost recall per
            # table; ~0.6·log2(n) keeps expected home-bucket sizes within
            # the re-rank guard rails across the sizes the RCS serves.
            projections = int(np.clip(round(0.6 * np.log2(max(n, 2))), 2, 12))
        self._num_projections = projections
        total = config.num_tables * projections
        hyperplanes = rng.standard_normal((dim, total))
        self._radii = self._calibrate_radii(embeddings, rng).astype(
            embeddings.dtype)
        # Offsets are uniform within each table's own cell width.
        self._offsets = (rng.uniform(0.0, 1.0, size=(config.num_tables,
                                                     projections))
                         * self._radii[:, None]).reshape(total).astype(
                             embeddings.dtype)
        self._projection = hyperplanes.astype(embeddings.dtype, copy=False)
        # Odd multipliers mix lattice coordinates into one int64 key with
        # wraparound arithmetic; a cross-bucket key collision only adds a
        # few spurious candidates to the exact re-rank.
        self._mix = (rng.integers(1, np.iinfo(np.int64).max,
                                  size=(config.num_tables, projections),
                                  dtype=np.int64) | np.int64(1))

    def _calibrate_radii(self, embeddings: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
        """The [L] radius ladder from the sampled k-NN distance spread.

        The hash is only useful where one lattice cell is on the order of
        the distances the serving path must resolve.  Rung t quantizes at
        ``radius_scale`` times the t-th percentile of the sampled members'
        ``calibration_k``-NN distances, so corpora whose local neighbor
        scale varies (radially growing GIN clouds) are covered at every
        scale; a fixed ``config.radius`` pins every rung instead.
        """
        config = self.config
        num_tables = config.num_tables
        if config.radius > 0:
            return np.full(num_tables, float(config.radius),
                           dtype=np.float64)
        n = len(embeddings)
        sample = min(config.calibration_sample, n)
        if sample < 2:
            return np.ones(num_tables, dtype=np.float64)
        idx = rng.choice(n, size=sample, replace=False)
        k = min(config.calibration_k + 1, n)   # +1: the member finds itself
        _, dists = exact_search(embeddings[idx], embeddings, k)
        scales = dists[:, -1][dists[:, -1] > 0]
        if len(scales) == 0:
            # Degenerate corpus (duplicates everywhere): any radius maps it
            # to one bucket per table and the dense-pool fallback serves it
            # exactly.
            return np.ones(num_tables, dtype=np.float64)
        percentiles = 100.0 * (np.arange(num_tables) + 0.5) / num_tables
        rungs = config.radius_scale * np.percentile(
            np.asarray(scales, dtype=np.float64), percentiles)
        return np.maximum(rungs, 1e-12)

    def _lattice(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """([Q, L, b] lattice coordinates, [Q, L, b] in-cell fractions)."""
        scaled = (x.astype(self._projection.dtype, copy=False)
                  @ self._projection + self._offsets)
        scaled = scaled.reshape(len(x), self.config.num_tables,
                                self._num_projections)
        scaled = scaled / self._radii[None, :, None]
        coords = np.floor(scaled)
        return coords.astype(np.int64), scaled - coords

    def _hash_codes(self, x: np.ndarray) -> np.ndarray:
        coords, _ = self._lattice(x)
        return (coords * self._mix).sum(axis=2)

    def _probe_codes(self, queries: np.ndarray) -> np.ndarray:
        """[Q, L, 1 + p] bucket keys: home cell + nearest lattice walks.

        A near neighbor most likely sits one lattice step along the
        coordinate whose cell boundary the query is closest to: stepping
        down costs the in-cell fraction, stepping up its complement, and a
        two-coordinate walk costs the sum.  The key is linear in the
        coordinates, so every probe is a couple of ±multiplier increments.
        """
        coords, frac = self._lattice(queries)
        codes = (coords * self._mix).sum(axis=2)
        b = self._num_projections
        # Single steps: [Q, L, 2b] (down then up per coordinate).
        costs = np.concatenate([frac, 1.0 - frac], axis=2)
        deltas = np.broadcast_to(
            np.concatenate([-self._mix, self._mix], axis=1), costs.shape)
        pool = min(self._PAIR_POOL, 2 * b)
        if self.config.num_probes > 2 * b and pool >= 2:
            # Extend the walk with pairs of the cheapest single steps
            # (skipping the degenerate down+up of one coordinate).  Probe
            # *sets* are all that matters — buckets are visited, not ranked
            # — so argpartition replaces every argsort on this path.
            top = np.argpartition(costs, pool - 1, axis=2)[:, :, :pool]
            top_costs = np.take_along_axis(costs, top, axis=2)
            top_deltas = np.take_along_axis(deltas, top, axis=2)
            left, right = np.triu_indices(pool, 1)
            pair_costs = top_costs[:, :, left] + top_costs[:, :, right]
            same = (top % b)[:, :, left] == (top % b)[:, :, right]
            pair_costs = np.where(same, np.inf, pair_costs)
            costs = np.concatenate([costs, pair_costs], axis=2)
            deltas = np.concatenate(
                [deltas, top_deltas[:, :, left] + top_deltas[:, :, right]],
                axis=2)
        probes = min(self.config.num_probes, costs.shape[2])
        out = np.empty(codes.shape + (1 + probes,), dtype=np.int64)
        out[..., 0] = codes
        if probes:
            if probes < costs.shape[2]:
                walk = np.argpartition(costs, probes - 1,
                                       axis=2)[:, :, :probes]
            else:
                walk = np.broadcast_to(np.arange(probes), costs.shape[:2]
                                       + (probes,))
            out[..., 1:] = codes[:, :, None] + np.take_along_axis(
                deltas, walk, axis=2)
        return out


def select_neighbor_index(embeddings: np.ndarray,
                          config: ANNConfig) -> NeighborIndex:
    """The sign-hash recall probe: pick the serving index a corpus supports.

    Builds the sign-hash :class:`ANNIndex` and replays a sample of the
    corpus' own members through it, scoring two health signals against the
    exact ground truth on the same sample: the fraction of queries that
    fell back to the exact scan (degenerate pools), and recall@5 (sign
    buckets can be perfectly sized yet carry no distance information on a
    cluster-free corpus).  A corpus with family/cluster structure passes
    both checks and keeps the sign hash; a degraded corpus switches to the
    quantized-projection :class:`E2LSHIndex` when it is large enough for
    any hash walk to beat the scan, and to the plain :class:`ExactIndex`
    below that size.  ``config.family`` pins one family and skips the probe.
    """
    if config.family != "auto":
        if config.family == "exact":
            return ExactIndex()
        pinned: NeighborIndex = (E2LSHIndex(config.e2lsh)
                                 if config.family == "e2lsh"
                                 else ANNIndex(config))
        pinned.rebuild(embeddings)
        return pinned
    index = ANNIndex(config)
    index.rebuild(embeddings)
    if not config.auto_e2lsh:
        return index
    n = len(embeddings)
    sample = min(config.probe_sample, n)
    if sample == 0:
        return index
    rng = np.random.default_rng(config.seed)
    probe = rng.choice(n, size=sample, replace=False)
    queries = np.asarray(embeddings)[probe]
    k = min(5, n)
    approx, _ = index.search(queries, embeddings, k)
    fallback = index.last_fallback_fraction
    pool_fraction = index.last_pool_fraction
    exact, _ = exact_search(queries, embeddings, k)
    recall = float(np.mean([len(set(a) & set(e)) / k
                            for a, e in zip(approx, exact)]))
    if (fallback <= config.probe_fallback_threshold
            and recall >= config.probe_min_recall
            and pool_fraction <= config.probe_max_pool_fraction):
        return index
    if n >= config.e2lsh_threshold:
        e2lsh = E2LSHIndex(config.e2lsh)
        e2lsh.rebuild(embeddings)
        return e2lsh
    return ExactIndex()


@dataclass
class Recommendation:
    """Outcome of one AutoCE recommendation."""

    model: str
    score_vector: np.ndarray
    model_names: tuple[str, ...]
    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray

    def ranking(self) -> list[tuple[str, float]]:
        order = np.argsort(-self.score_vector)
        return [(self.model_names[i], float(self.score_vector[i])) for i in order]


class RecommendationCandidateSet:
    """Def. 5: labeled embeddings (X, Y) searched by the KNN predictor.

    Embeddings live in an amortized capacity-doubling buffer, so the online
    adaptation path can :meth:`add` members in O(1) amortized instead of
    re-allocating the whole matrix per insert.  Score matrices (one per
    accuracy weight) are memoized for the batched KNN.

    Neighbor queries go through :meth:`search`.  Small candidate sets use
    the exact Gram-identity scan; when an :class:`ANNConfig` is supplied and
    the membership crosses ``ANNConfig.threshold``, an :class:`ANNIndex` is
    attached automatically and kept fresh on :meth:`add` (incremental) and
    :meth:`replace_embeddings` (full re-hash).
    """

    def __init__(self, embeddings: np.ndarray | None = None,
                 labels: list[ScoreLabel] | None = None,
                 ann: ANNConfig | None = None,
                 quantization: QuantizationConfig | None = None,
                 quantized_store: "CandidateStore | None" = None) -> None:
        # The buffer keeps the embeddings' precision tier: a float32 corpus
        # (the serving fast tier) is stored and searched in float32.
        embeddings = (np.zeros((0, 0), dtype=np.float64)
                      if embeddings is None
                      else _as_float_matrix(embeddings))
        self.labels: list[ScoreLabel] = list(labels or [])
        if len(embeddings) != len(self.labels):
            raise ValueError("embeddings and labels must align")
        self._buffer = np.array(embeddings, dtype=embeddings.dtype)
        self._size = len(embeddings)
        self._score_cache: dict[float, np.ndarray] = {}
        self.ann_config = ann
        self._index: NeighborIndex | None = None
        #: RCS size at the last recall-probe run (see :meth:`add`).
        self._index_size = 0
        self.quantization = quantization
        self._quantized: CandidateStore | None = None
        #: Value snapshot of the config the attached store was built under
        #: (the live ``quantization`` object may be mutated in place by
        #: :meth:`AutoCE.set_quantization`; the snapshot is what makes the
        #: no-op check a *value* comparison).
        self._quantized_config: QuantizationConfig | None = None
        self._sync_index()
        if (quantized_store is not None and quantization is not None
                and quantization.enabled
                and len(quantized_store) == self._size):
            # Warm attach (persistence restore path): adopt a prebuilt
            # store instead of retraining codebooks from the rows.
            self._quantized = quantized_store
            self._quantized_config = replace(quantization)
        else:
            self._sync_quantized()

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def embeddings(self) -> np.ndarray:
        """The live [N, d] embedding matrix (a view of the growth buffer)."""
        return self._buffer[:self._size]

    @property
    def index(self) -> NeighborIndex | None:
        """The attached neighbor index (None = inline exact search)."""
        return self._index

    @property
    def quantized(self) -> CandidateStore | None:
        """The attached quantized candidate tier — flat int8 or PQ,
        whichever :func:`select_quantizer` picked (None = float
        candidates)."""
        return self._quantized

    @property
    def model_names(self) -> tuple[str, ...]:
        if not self.labels:
            raise ValueError("empty RCS")
        return self.labels[0].model_names

    def _sync_index(self) -> None:
        """Attach a neighbor index once membership crosses the threshold.

        The index family is chosen by the sign-hash recall probe
        (:func:`select_neighbor_index`): sign-hash LSH when the corpus has
        cluster structure, the quantized-projection E2LSH otherwise.
        """
        config = self.ann_config
        if (self._index is None and config is not None and config.threshold > 0
                and self._size >= config.threshold):
            self._index = select_neighbor_index(self.embeddings, config)
            self._index_size = self._size

    def _sync_quantized(self) -> None:
        """Attach a quantized candidate tier once membership reaches its
        floor; :func:`select_quantizer` picks the code layout (flat int8
        up to the exactness bound, PQ for wider embeddings)."""
        config = self.quantization
        if (self._quantized is None and config is not None and config.enabled
                and self._size >= config.min_size):
            self._quantized = select_quantizer(self.embeddings, config)
            self._quantized_config = replace(config)

    def set_quantization(self, config: QuantizationConfig | None) -> bool:
        """Switch the quantized candidate tier on or off for a live RCS.

        Returns whether anything changed.  Re-enabling with a config whose
        *values* match the one the attached store was built under (and a
        store still covering the live corpus) is a no-op — no codebook
        retraining, no k-means.  Any value change re-selects the layout: a
        config whose ``mode`` changed (or whose "auto" resolves
        differently) swaps the store class, and construction recalibrates
        from the live corpus either way.
        """
        self.quantization = config
        if config is None or not config.enabled:
            changed = self._quantized is not None
            self._quantized = None
            self._quantized_config = None
            return changed
        if (self._quantized is not None
                and self._quantized_config == config
                and len(self._quantized) == self._size):
            return False
        self._quantized = None
        self._quantized_config = None
        self._sync_quantized()
        return True

    def add(self, embedding: np.ndarray, label: ScoreLabel) -> None:
        embedding = _as_float_matrix(embedding).ravel()
        require_finite_embeddings(embedding, "RCS embedding")
        dim = embedding.shape[0]
        if self._size == 0:
            if self._buffer.shape[1] != dim or len(self._buffer) == 0:
                self._buffer = np.zeros((max(4, len(self._buffer)), dim),
                                        dtype=embedding.dtype)
        elif self._buffer.shape[1] != dim:
            raise ValueError(
                f"embedding dimension {dim} != RCS dimension "
                f"{self._buffer.shape[1]}")
        if self._size == len(self._buffer):
            grown = np.zeros((max(4, 2 * len(self._buffer)), dim),
                             dtype=self._buffer.dtype)
            grown[:self._size] = self._buffer[:self._size]
            self._buffer = grown
        self._buffer[self._size] = embedding
        self._size += 1
        self.labels.append(label)
        self._score_cache.clear()
        if self._index is not None:
            self._index.add(embedding)
            # Re-run the recall probe once the corpus has doubled since the
            # index family was chosen (structural drift — clusters forming
            # or dissolving — can change the right family; doubling keeps
            # the re-probe cost amortized O(1) per add), and immediately
            # when an ExactIndex chosen for a scan-sized degraded corpus
            # crosses the E2LSH size floor.
            grown = self._size >= 2 * max(self._index_size, 1)
            graduates = (isinstance(self._index, ExactIndex)
                         and self._index_size < self.ann_config.e2lsh_threshold
                         <= self._size)
            if grown or graduates:
                self._index = select_neighbor_index(self.embeddings,
                                                    self.ann_config)
                self._index_size = self._size
        else:
            self._sync_index()
        if self._quantized is not None:
            # Requantization hook: the store quantizes the appended row
            # under its frozen calibration and reports drift (clipping /
            # gross outliers), at which point the scale and zero-points are
            # recalibrated from the live corpus.
            if self._quantized.add(embedding):
                self._quantized.recalibrate(self.embeddings)
        else:
            self._sync_quantized()

    def replace_embeddings(self, embeddings: np.ndarray) -> None:
        """Refresh stored embeddings after the encoder is retrained.

        Retraining (or a precision-tier switch) can change the corpus
        geometry, so the recall probe re-selects the index family rather
        than blindly re-hashing the previous choice.
        """
        embeddings = _as_float_matrix(embeddings)
        require_finite_embeddings(embeddings, "RCS embeddings")
        if len(embeddings) != len(self.labels):
            raise ValueError("embedding count must match labels")
        self._buffer = np.array(embeddings, dtype=embeddings.dtype)
        self._size = len(embeddings)
        self._score_cache.clear()
        if self._index is not None:
            self._index = select_neighbor_index(self.embeddings,
                                                self.ann_config)
            self._index_size = self._size
        else:
            self._sync_index()
        if self._quantized is not None:
            # Retrained embeddings land on new geometry; the old calibration
            # is meaningless, so requantize the whole corpus.
            self._quantized.recalibrate(self.embeddings)
        else:
            self._sync_quantized()

    def search(self, queries: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """k nearest members per query: ([Q, k] indices, [Q, k] distances)."""
        queries = _as_float_matrix(queries)
        k = min(k, self._size)
        if self._index is None:
            return candidate_scan(queries, self.embeddings, k,
                                  self._quantized)
        return self._index.search(queries, self.embeddings, k,
                                  store=self._quantized)

    def score_matrix(self, accuracy_weight: float) -> np.ndarray:
        """Memoized [N, m] matrix of member score vectors at one weight."""
        key = float(accuracy_weight)
        cached = self._score_cache.get(key)
        if cached is None or len(cached) != len(self.labels):
            cached = np.stack(
                [label.score_vector(key) for label in self.labels])
            self._score_cache[key] = cached
        return cached

    def nearest_neighbor_distances(self) -> np.ndarray:
        """Distance of each member to its nearest other member."""
        if len(self) < 2:
            return np.zeros(len(self), dtype=self._buffer.dtype)
        sq = squared_distance_matrix(self.embeddings, self.embeddings)
        np.fill_diagonal(sq, np.inf)
        return np.sqrt(sq.min(axis=1))


class KNNPredictor:
    """Eq. 13: average the k nearest labels and pick the top ranker.

    The paper finds k = 2 optimal (Table IV); that is the default.  Neighbor
    search is delegated to :meth:`RecommendationCandidateSet.search`, so the
    predictor transparently uses whichever :class:`NeighborIndex` the RCS
    has selected (exact below the ANN threshold, LSH above it).
    """

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def recommend(self, embedding: np.ndarray, rcs: RecommendationCandidateSet,
                  accuracy_weight: float, k: int | None = None) -> Recommendation:
        return self.recommend_batch(
            _as_float_matrix(embedding), rcs, accuracy_weight, k=k)[0]

    def recommend_batch(self, embeddings: np.ndarray,
                        rcs: RecommendationCandidateSet,
                        accuracy_weight: float,
                        k: int | None = None) -> list[Recommendation]:
        """Vectorized Eq. 13 for Q queries at once.

        One [Q, N] Gram-identity distance matrix (or one ANN probe pass),
        one ``argpartition`` per row, and one gather over the memoized score
        matrix replace Q independent full-sort searches.
        """
        if len(rcs) == 0:
            raise ValueError("cannot recommend from an empty RCS")
        embeddings = _as_float_matrix(embeddings)
        k = k if k is not None else self.k
        k = min(k, len(rcs))
        nearest, neighbor_distances = rcs.search(embeddings, k)   # [Q, k]
        scores = rcs.score_matrix(accuracy_weight)[nearest].mean(axis=1)
        best = np.argmax(scores, axis=1)
        names = rcs.model_names
        return [
            Recommendation(
                model=names[int(best[i])],
                score_vector=scores[i],
                model_names=names,
                neighbor_indices=nearest[i],
                neighbor_distances=neighbor_distances[i],
            )
            for i in range(len(embeddings))
        ]
