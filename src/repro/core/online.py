"""Online adapting for unexpected data distributions (Sec. V-E).

Detects datasets whose feature-graph embedding is far from every member of
the RCS (data drift), obtains a ground-truth label for them via online
learning (the caller supplies a labeler — typically the CE testbed), adds
the new sample to the RCS, and updates the encoder with a few DML steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..testbed.scores import ScoreLabel
from .dml import DMLTrainer
from .graph import FeatureGraph
from .serving import RecommendationCandidateSet, squared_distance_matrix


@dataclass
class DriftDetector:
    """Thresholded nearest-RCS-distance drift test.

    The threshold is the 90th percentile of the RCS members' own
    nearest-neighbor distances, exactly as described in Sec. V-E.
    """

    percentile: float = 90.0

    def threshold(self, rcs: RecommendationCandidateSet) -> float:
        # A 0- or 1-member RCS has no meaningful nearest-neighbor spread
        # (``nearest_neighbor_distances`` degenerates to ``[0.0]`` for a
        # single member, which would flag *every* dataset as drifted), so
        # nothing counts as drift until there are at least two members.
        if len(rcs) < 2:
            return np.inf
        return float(np.percentile(rcs.nearest_neighbor_distances(),
                                   self.percentile))

    def distance_to_rcs(self, embedding: np.ndarray,
                        rcs: RecommendationCandidateSet) -> float:
        if len(rcs) == 0:
            return np.inf
        sq = squared_distance_matrix(embedding, rcs.embeddings)
        return float(np.sqrt(sq.min()))

    def is_drifted(self, embedding: np.ndarray,
                   rcs: RecommendationCandidateSet) -> bool:
        return self.distance_to_rcs(embedding, rcs) > self.threshold(rcs)


class OnlineAdapter:
    """Applies the three-step online adaptation of Sec. V-E."""

    def __init__(self, trainer: DMLTrainer, detector: DriftDetector | None = None,
                 update_epochs: int = 5) -> None:
        self.trainer = trainer
        self.detector = detector or DriftDetector()
        self.update_epochs = update_epochs

    def adapt(self, graph: FeatureGraph, label: ScoreLabel,
              graphs: list[FeatureGraph], labels: list[ScoreLabel],
              rcs: RecommendationCandidateSet) -> None:
        """Add a freshly labeled drifted dataset and update encoder + RCS."""
        graphs.append(graph)
        labels.append(label)
        self.trainer.train(graphs, labels, epochs=self.update_epochs)
        # Refresh the RCS on its *own* precision tier: a mixed-tier node
        # serves (say) float32 embeddings over this float64 training loop,
        # and replace_embeddings triggers a full index re-probe plus int8
        # requantization — work that must not run once per tier.
        embeddings = np.asarray(self.trainer.encoder.embed(graphs),
                                dtype=rcs.embeddings.dtype)
        rcs.labels = list(labels)
        rcs.replace_embeddings(embeddings)
