"""Feature engineering (Sec. V-A.1): extract CE-relevant dataset features.

Per column we extract the six features of Fig. 4 — skewness, kurtosis,
standard deviation, mean (absolute) deviation, range and domain size — plus
the column-to-column equality correlations (the reverse of generation
process F2).  Per table we add the number of rows and columns; per FK edge
we extract the join correlation |set(FK)| / |set(PK)| (the reverse of F3).

All features are squashed into bounded ranges so they are directly usable
as GIN inputs without a separate scaler.

Two implementations share the same definition: the vectorized fast path
(:func:`column_features_matrix`, :func:`equality_correlation_matrix`,
:func:`table_feature_vector`) computes all six statistics for every column
and the full m×m correlation matrix of a table in single broadcast numpy
passes, while the scalar reference path (:func:`column_features`,
:func:`correlation_row`, :func:`table_feature_vector_reference`) keeps the
original per-column loops.  The two are numerically equivalent on the exact
path (asserted in ``tests/core/test_fast_path.py``); the fast path
additionally accepts a row-sampling sketch for very large tables.
"""

from __future__ import annotations

import numpy as np

from ..datagen.distributions import measure_equality_correlation
from ..db.schema import Dataset
from ..db.table import Table
from ..utils.rng import rng_from_seed

#: Number of scalar features extracted per column (the paper's ``k``).
FEATURES_PER_COLUMN = 6


def _squash(value: float) -> float:
    """Map an unbounded statistic into (-1, 1)."""
    return float(value / (1.0 + abs(value)))


def _squash_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_squash`."""
    return values / (1.0 + np.abs(values))


def column_features(values: np.ndarray) -> np.ndarray:
    """The k = 6 per-column features of Fig. 4 (bounded encodings)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.zeros(FEATURES_PER_COLUMN)
    mean = values.mean()
    std = values.std()
    centered = values - mean
    if std > 0:
        skewness = float((centered ** 3).mean() / std ** 3)
        kurtosis = float((centered ** 4).mean() / std ** 4 - 3.0)
    else:
        skewness = 0.0
        kurtosis = 0.0
    value_range = float(values.max() - values.min())
    domain = float(len(np.unique(values)))
    mean_dev = float(np.abs(centered).mean())
    return np.array([
        _squash(skewness),
        _squash(kurtosis),
        std / (value_range + 1.0),
        mean_dev / (value_range + 1.0),
        np.log1p(value_range) / 10.0,
        np.log1p(domain) / 10.0,
    ])


def column_features_matrix(matrix: np.ndarray) -> np.ndarray:
    """All six Fig. 4 features for every row of ``matrix`` in one pass.

    ``matrix`` is [m, R] (one row per column of the table); the result is
    [m, k].  Numerically identical to stacking :func:`column_features` over
    the rows — every reduction runs along the contiguous row axis exactly as
    the scalar path does over its 1-D array.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a [columns, rows] matrix")
    m, r = matrix.shape
    if r == 0 or m == 0:
        return np.zeros((m, FEATURES_PER_COLUMN))
    mean = matrix.mean(axis=1)
    centered = matrix - mean[:, None]
    # Moments via explicit products: ``centered ** 3`` / ``** 4`` dispatch to
    # libm pow, ~60× slower than the equivalent multiplications.
    squared = centered * centered
    variance = squared.mean(axis=1)
    std = np.sqrt(variance)
    safe_std = np.where(std > 0, std, 1.0)
    nonzero = std > 0
    skewness = np.where(
        nonzero, (squared * centered).mean(axis=1) / safe_std ** 3, 0.0)
    kurtosis = np.where(
        nonzero, (squared * squared).mean(axis=1) / safe_std ** 4 - 3.0, 0.0)
    value_range = matrix.max(axis=1) - matrix.min(axis=1)
    # Domain size via a per-row sort: #unique = 1 + #(adjacent differences).
    sorted_rows = np.sort(matrix, axis=1)
    domain = 1.0 + np.count_nonzero(
        sorted_rows[:, 1:] != sorted_rows[:, :-1], axis=1)
    # NaN != NaN, so adjacent counting sees every NaN as distinct while the
    # scalar reference path's np.unique collapses them (equal_nan=True);
    # fold the extras back so both paths agree on NaN-bearing columns.
    nan_counts = np.isnan(matrix).sum(axis=1)
    domain = domain - np.maximum(nan_counts - 1, 0)
    mean_dev = np.abs(centered).mean(axis=1)
    return np.column_stack([
        _squash_array(skewness),
        _squash_array(kurtosis),
        std / (value_range + 1.0),
        mean_dev / (value_range + 1.0),
        np.log1p(value_range) / 10.0,
        np.log1p(domain) / 10.0,
    ])


def equality_correlation_matrix(matrix: np.ndarray) -> np.ndarray:
    """Full m×m equality-correlation matrix of the rows of ``matrix`` (F2⁻¹).

    Replaces the O(m²) per-pair :func:`correlation_row` passes with a single
    broadcast comparison.
    """
    matrix = np.asarray(matrix)
    m, r = matrix.shape
    if r == 0 or m == 0:
        return np.zeros((m, m))
    return (matrix[:, None, :] == matrix[None, :, :]).mean(axis=2)


def correlation_row(table: Table, column: str, columns: list[str],
                    max_columns: int) -> np.ndarray:
    """Equality correlations of ``column`` against every table column (F2⁻¹)."""
    row = np.zeros(max_columns)
    source = table[column]
    for j, other in enumerate(columns[:max_columns]):
        row[j] = measure_equality_correlation(source, table[other])
    return row


def sample_row_indices(num_rows: int, sample_rows: int,
                       seed: int = 0) -> np.ndarray:
    """Deterministic row subsample used by the featurizer sketch."""
    if sample_rows >= num_rows:
        return np.arange(num_rows)
    rng = rng_from_seed(seed)
    return np.sort(rng.choice(num_rows, size=sample_rows, replace=False))


def _column_matrix(table: Table, columns: list[str],
                   sample_rows: int | None, seed: int) -> np.ndarray:
    """Stack the selected columns into an int64 [m, R] matrix, optionally
    sketched down to ``sample_rows`` rows."""
    matrix = np.stack([table[c] for c in columns])
    if sample_rows is not None and table.num_rows > sample_rows:
        matrix = matrix[:, sample_row_indices(table.num_rows, sample_rows, seed)]
    return matrix


def table_feature_vector(table: Table, max_columns: int,
                         sample_rows: int | None = None,
                         sample_seed: int = 0) -> np.ndarray:
    """Flattened vertex features: [n_rows, n_cols, per-column (k + m) blocks].

    Layout follows Sec. V-A.2 vertex modeling: a table contributes
    ``(k + m) · m + 2`` features, zero-padded when it has fewer than ``m``
    data columns.  ``sample_rows`` enables the row-sampling sketch: column
    statistics and correlations are computed over a deterministic subsample
    of that many rows (the exact path, ``sample_rows=None``, is the default
    and matches :func:`table_feature_vector_reference` exactly).
    """
    columns = table.data_columns()[:max_columns]
    k = FEATURES_PER_COLUMN
    vector = np.zeros((k + max_columns) * max_columns + 2)
    vector[0] = np.log1p(table.num_rows) / 15.0
    vector[1] = len(table.data_columns()) / 25.0
    if not columns:
        return vector
    matrix = _column_matrix(table, columns, sample_rows, sample_seed)
    n_cols = len(columns)
    # One [m, k + max_columns] block per column, ravelled into the vector.
    block = np.zeros((n_cols, k + max_columns))
    block[:, :k] = column_features_matrix(matrix)
    block[:, k:k + n_cols] = equality_correlation_matrix(matrix)
    vector[2:2 + n_cols * (k + max_columns)] = block.ravel()
    return vector


def table_feature_vector_reference(table: Table, max_columns: int) -> np.ndarray:
    """Scalar reference path: the original per-column loop implementation.

    Kept as the numerical ground truth for the vectorized fast path (see the
    equivalence tests and ``benchmarks/run_benchmarks.py``).
    """
    columns = table.data_columns()[:max_columns]
    k = FEATURES_PER_COLUMN
    vector = np.zeros((k + max_columns) * max_columns + 2)
    vector[0] = np.log1p(table.num_rows) / 15.0
    vector[1] = len(table.data_columns()) / 25.0
    offset = 2
    for column in columns:
        vector[offset:offset + k] = column_features(table[column])
        offset += k
        vector[offset:offset + max_columns] = correlation_row(
            table, column, columns, max_columns)
        offset += max_columns
    return vector


def join_correlation_matrix(dataset: Dataset) -> np.ndarray:
    """Edge matrix E (Sec. V-A.2): E[i][j] = join correlation of FK j→i.

    ``E[i][j]`` holds |set(FK)| / |set(PK)| when table ``j`` holds an FK
    referencing the PK of table ``i``, else 0 — exactly Example 3's layout.
    """
    names = sorted(dataset.table_names)
    index = {name: i for i, name in enumerate(names)}
    edges = np.zeros((len(names), len(names)))
    for fk in dataset.foreign_keys:
        parent = index[fk.parent]
        child = index[fk.child]
        edges[parent, child] = dataset.join_correlation(fk)
    return edges


def vertex_dimension(max_columns: int) -> int:
    return (FEATURES_PER_COLUMN + max_columns) * max_columns + 2
