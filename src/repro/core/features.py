"""Feature engineering (Sec. V-A.1): extract CE-relevant dataset features.

Per column we extract the six features of Fig. 4 — skewness, kurtosis,
standard deviation, mean (absolute) deviation, range and domain size — plus
the column-to-column equality correlations (the reverse of generation
process F2).  Per table we add the number of rows and columns; per FK edge
we extract the join correlation |set(FK)| / |set(PK)| (the reverse of F3).

All features are squashed into bounded ranges so they are directly usable
as GIN inputs without a separate scaler.
"""

from __future__ import annotations

import numpy as np

from ..datagen.distributions import measure_equality_correlation
from ..db.schema import Dataset
from ..db.table import Table

#: Number of scalar features extracted per column (the paper's ``k``).
FEATURES_PER_COLUMN = 6


def _squash(value: float) -> float:
    """Map an unbounded statistic into (-1, 1)."""
    return float(value / (1.0 + abs(value)))


def column_features(values: np.ndarray) -> np.ndarray:
    """The k = 6 per-column features of Fig. 4 (bounded encodings)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.zeros(FEATURES_PER_COLUMN)
    mean = values.mean()
    std = values.std()
    centered = values - mean
    if std > 0:
        skewness = float((centered ** 3).mean() / std ** 3)
        kurtosis = float((centered ** 4).mean() / std ** 4 - 3.0)
    else:
        skewness = 0.0
        kurtosis = 0.0
    value_range = float(values.max() - values.min())
    domain = float(len(np.unique(values)))
    mean_dev = float(np.abs(centered).mean())
    return np.array([
        _squash(skewness),
        _squash(kurtosis),
        std / (value_range + 1.0),
        mean_dev / (value_range + 1.0),
        np.log1p(value_range) / 10.0,
        np.log1p(domain) / 10.0,
    ])


def correlation_row(table: Table, column: str, columns: list[str],
                    max_columns: int) -> np.ndarray:
    """Equality correlations of ``column`` against every table column (F2⁻¹)."""
    row = np.zeros(max_columns)
    source = table[column]
    for j, other in enumerate(columns[:max_columns]):
        row[j] = measure_equality_correlation(source, table[other])
    return row


def table_feature_vector(table: Table, max_columns: int) -> np.ndarray:
    """Flattened vertex features: [n_rows, n_cols, per-column (k + m) blocks].

    Layout follows Sec. V-A.2 vertex modeling: a table contributes
    ``(k + m) · m + 2`` features, zero-padded when it has fewer than ``m``
    data columns.
    """
    columns = table.data_columns()[:max_columns]
    k = FEATURES_PER_COLUMN
    vector = np.zeros((k + max_columns) * max_columns + 2)
    vector[0] = np.log1p(table.num_rows) / 15.0
    vector[1] = len(table.data_columns()) / 25.0
    offset = 2
    for column in columns:
        vector[offset:offset + k] = column_features(table[column])
        offset += k
        vector[offset:offset + max_columns] = correlation_row(
            table, column, columns, max_columns)
        offset += max_columns
    return vector


def join_correlation_matrix(dataset: Dataset) -> np.ndarray:
    """Edge matrix E (Sec. V-A.2): E[i][j] = join correlation of FK j→i.

    ``E[i][j]`` holds |set(FK)| / |set(PK)| when table ``j`` holds an FK
    referencing the PK of table ``i``, else 0 — exactly Example 3's layout.
    """
    names = sorted(dataset.table_names)
    index = {name: i for i, name in enumerate(names)}
    edges = np.zeros((len(names), len(names)))
    for fk in dataset.foreign_keys:
        parent = index[fk.parent]
        child = index[fk.child]
        edges[parent, child] = dataset.join_correlation(fk)
    return edges


def vertex_dimension(max_columns: int) -> int:
    return (FEATURES_PER_COLUMN + max_columns) * max_columns + 2
