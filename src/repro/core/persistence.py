"""Saving and loading a trained advisor (offline training → online serving).

The paper's deployment story (Fig. 2) trains AutoCE offline and serves
recommendations online; a cloud vendor trains once and ships the advisor to
every tenant-facing node.  This module persists everything a serving node
needs into one ``.npz`` file:

* the advisor configuration (JSON),
* the GIN encoder weights (in ``Module.parameters()`` order),
* the training feature graphs (needed only for later online adapting),
* the labels, and the RCS embeddings.

Labels round-trip losslessly: :class:`DatasetLabel` keeps its raw testbed
measurements (so D-error and percentile re-normalization still work after a
reload), while synthetic :class:`ScoreLabel` instances (from Mixup or from
:meth:`~repro.testbed.scores.DatasetLabel.with_accuracy_metric`) keep their
normalized scores.

Typical usage::

    save_advisor(advisor, "advisor.npz")
    advisor = load_advisor("advisor.npz")
    advisor.recommend(new_dataset, accuracy_weight=0.9)
"""

from __future__ import annotations

import hashlib
import json
import zipfile
import zlib
from dataclasses import asdict

import numpy as np

from ..testbed.scores import DatasetLabel, ScoreLabel
from .advisor import AutoCE, AutoCEConfig
from .dml import DMLConfig, DMLTrainer
from .encoder import GINEncoder
from .graph import FeatureGraph
from .incremental import IncrementalConfig
from .serving import (ANNConfig, CandidateStore, E2LSHConfig, PQStore,
                      QuantizationConfig, QuantizedStore,
                      RecommendationCandidateSet)

#: Bump on any change to the on-disk layout.  Version 2 added the optional
#: quantizer-state block (``quant_*`` arrays + the ``"quantizer"`` metadata
#: entry carrying kind / generation stamp / scalar state) so reloaded nodes
#: attach codebooks instead of retraining them.
FORMAT_VERSION = 2

#: Versions this build can read.  Version-1 saves simply have no quantizer
#: block, so they load through the retrain-on-attach path unchanged.
_SUPPORTED_VERSIONS = frozenset({1, 2})

#: Prefix namespacing the quantizer-state arrays inside the ``.npz``.
_QUANT_PREFIX = "quant_"


class AdvisorLoadError(ValueError):
    """A saved advisor could not be loaded — missing file, torn or
    corrupt payload, or an incompatible format.

    :func:`load_advisor` is all-or-nothing: any failure raises this (a
    ``ValueError`` subclass, so pre-existing callers keep working) and
    never returns a half-restored advisor.  The original exception is
    chained as ``__cause__``.
    """

#: DatasetLabel array fields persisted when present (None-able ones last).
_RAW_LABEL_FIELDS = ("qerror_means", "latency_means", "qerror_medians",
                     "fit_times", "qerror_p95", "qerror_p99")


def _config_to_dict(config: AutoCEConfig) -> dict:
    return asdict(config)


def _config_from_dict(payload: dict) -> AutoCEConfig:
    payload = dict(payload)
    dml = dict(payload["dml"])
    # JSON has no tuples; restore the weight grid's declared type.
    dml["weights"] = tuple(dml["weights"])
    payload["dml"] = DMLConfig(**dml)
    payload["incremental"] = IncrementalConfig(**payload["incremental"])
    # Advisors saved before the scale-out serving fields existed load with
    # the defaults (exact search, in-memory cache only); likewise the
    # nested E2LSH block and the dtype tier default when absent.
    # `.get(...) is not None`, not `in`: an advisor configured with the
    # index (or the quantized tier) explicitly off serializes the field as
    # JSON null, which must round-trip to None rather than crash the load.
    if payload.get("ann") is not None:
        ann = dict(payload["ann"])
        if "e2lsh" in ann:
            ann["e2lsh"] = E2LSHConfig(**ann["e2lsh"])
        payload["ann"] = ANNConfig(**ann)
    if payload.get("quantization") is not None:
        payload["quantization"] = QuantizationConfig(
            **payload["quantization"])
    return AutoCEConfig(**payload)


def _label_to_dict(label: ScoreLabel) -> dict:
    """JSON-serializable label payload (arrays as lists)."""
    payload: dict = {"model_names": list(label.model_names)}
    if isinstance(label, DatasetLabel):
        payload["kind"] = "dataset"
        for name in _RAW_LABEL_FIELDS:
            value = getattr(label, name, None)
            payload[name] = None if value is None else np.asarray(value).tolist()
    else:
        payload["kind"] = "score"
        payload["sa"] = label.sa.tolist()
        payload["se"] = label.se.tolist()
    return payload


def _label_from_dict(payload: dict) -> ScoreLabel:
    names = tuple(payload["model_names"])
    if payload["kind"] == "dataset":
        # JSON stores arrays as plain lists; hand DatasetLabel real float64
        # arrays so reloaded labels behave bit-identically to the originals
        # (indexing, percentile re-normalization, D-error).
        kwargs = {
            name: (None if payload.get(name) is None
                   else np.asarray(payload[name], dtype=np.float64))
            for name in _RAW_LABEL_FIELDS
        }
        return DatasetLabel(model_names=names, **kwargs)
    return ScoreLabel(model_names=names,
                      sa=np.asarray(payload["sa"], dtype=np.float64),
                      se=np.asarray(payload["se"], dtype=np.float64))


def quantizer_generation(embeddings: np.ndarray,
                         config: QuantizationConfig) -> str:
    """Content stamp binding quantizer artifacts to (corpus, config).

    Codebooks, codes and coarse centroids are pure functions of the RCS
    rows and the quantization parameters, so the stamp hashes exactly
    those two inputs.  A reloaded node recomputes the stamp from what it
    actually loaded and attaches the saved artifacts only on a match —
    anything else (edited rows, changed knobs, a save produced by other
    code) falls back to retraining, never to serving stale codes.
    """
    digest = hashlib.sha256()
    rows = np.ascontiguousarray(embeddings)
    digest.update(str(rows.shape).encode())
    digest.update(str(rows.dtype).encode())
    digest.update(rows.tobytes())
    digest.update(repr(sorted(asdict(config).items())).encode())
    return digest.hexdigest()[:16]


def _restore_quantizer(embeddings: np.ndarray, config: QuantizationConfig,
                       data: "np.lib.npyio.NpzFile",
                       payload: dict) -> CandidateStore:
    """Rebuild the saved candidate store — zero k-means, zero calibration."""
    arrays = {name[len(_QUANT_PREFIX):]: data[name]
              for name in data.files if name.startswith(_QUANT_PREFIX)}
    meta = payload["meta"]
    kind = payload["kind"]
    base_kind = kind[len("ivf-"):] if kind.startswith("ivf-") else kind
    base: QuantizedStore | PQStore
    if base_kind == "pq":
        base = PQStore.restore(embeddings, config, arrays, meta)
    else:
        base = QuantizedStore.restore(embeddings, config, arrays, meta)
    if kind.startswith("ivf-"):
        from .ivf import IVFStore
        return IVFStore.restore(embeddings, config, arrays, meta, base)
    return base


def save_advisor(advisor: AutoCE, path: str, *,
                 include_quantizer_state: bool = True) -> None:
    """Persist a fitted advisor to a single compressed ``.npz`` file.

    When the RCS has a quantized candidate tier attached, its full state
    (codebooks, codes, coarse centroids/assignments, drift counters) is
    saved alongside — stamped by :func:`quantizer_generation` — so
    :func:`load_advisor` restores it without retraining.  Pass
    ``include_quantizer_state=False`` to write rows-only saves (the
    pre-version-2 behavior; loads retrain on attach).
    """
    if advisor.encoder is None or advisor.rcs is None:
        raise ValueError("cannot save an unfitted advisor; call fit() first")

    metadata = {
        "format_version": FORMAT_VERSION,
        "config": _config_to_dict(advisor.config),
        "vertex_dim": advisor.encoder.vertex_dim,
        "graph_names": [g.name for g in advisor._graphs],
        "num_graphs": len(advisor._graphs),
        "num_params": len(advisor.encoder.parameters()),
    }
    arrays: dict[str, np.ndarray] = {
        "rcs_embeddings": advisor.rcs.embeddings,
    }
    labels = advisor._labels
    if (labels and all(type(label) is ScoreLabel for label in labels)
            and all(label.model_names == labels[0].model_names
                    for label in labels)):
        # Uniform synthetic corpora (the common serving shape) stack into
        # two [N, m] arrays instead of N JSON dicts — per-member JSON is
        # what used to dominate large-corpus load_advisor time.
        metadata["labels"] = {"kind": "score_stack",
                              "model_names": list(labels[0].model_names)}
        arrays["label_sa"] = np.stack(
            [np.asarray(label.sa, dtype=np.float64) for label in labels])
        arrays["label_se"] = np.stack(
            [np.asarray(label.se, dtype=np.float64) for label in labels])
    else:
        metadata["labels"] = [_label_to_dict(label) for label in labels]
    store = advisor.rcs.quantized
    if include_quantizer_state and store is not None:
        quant_arrays, quant_meta = store.export_state()
        for name, value in quant_arrays.items():
            arrays[f"{_QUANT_PREFIX}{name}"] = value
        metadata["quantizer"] = {
            "kind": store.kind,
            "generation": quantizer_generation(
                advisor.rcs.embeddings, advisor.config.quantization),
            "meta": quant_meta,
        }
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    for i, param in enumerate(advisor.encoder.parameters()):
        arrays[f"param_{i}"] = param.numpy()
    for i, graph in enumerate(advisor._graphs):
        arrays[f"graph_{i}_vertices"] = graph.vertices
        arrays[f"graph_{i}_edges"] = graph.edges
    # Stored, not deflated: the bulk of a save is float embedding rows and
    # quantizer codes, which zlib shrinks by only a few percent while
    # costing ~10x the read time — and restart latency (a crashed shard
    # worker reloading inside its backoff budget) is exactly what the
    # persisted quantizer state exists to protect.
    np.savez(path, **arrays)


def load_advisor(path: str) -> AutoCE:
    """Reload an advisor saved by :func:`save_advisor`, ready to recommend.

    All-or-nothing: a missing file, a torn/truncated write, flipped bytes,
    or a format mismatch raise :class:`AdvisorLoadError`; a successfully
    returned advisor is always fully restored.
    """
    try:
        return _load_advisor(path)
    except AdvisorLoadError:
        raise
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile,
            zlib.error) as error:
        raise AdvisorLoadError(
            f"cannot load advisor from {path!r}: "
            f"{type(error).__name__}: {error}") from error


def _load_advisor(path: str) -> AutoCE:
    with np.load(path) as data:
        metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
        version = metadata.get("format_version")
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported advisor format version {version!r} "
                f"(this build reads versions "
                f"{sorted(_SUPPORTED_VERSIONS)})")

        config = _config_from_dict(metadata["config"])
        advisor = AutoCE(config)
        advisor.encoder = GINEncoder(
            vertex_dim=metadata["vertex_dim"],
            hidden_dim=config.hidden_dim,
            embedding_dim=config.embedding_dim,
            num_layers=config.num_layers,
            seed=config.seed,
            dtype=np.dtype(config.dtype),
        )
        params = advisor.encoder.parameters()
        if len(params) != metadata["num_params"]:
            raise ValueError(
                "saved parameter count does not match the encoder "
                f"architecture ({metadata['num_params']} != {len(params)})")
        for i, param in enumerate(params):
            saved = data[f"param_{i}"]
            if saved.shape != param.numpy().shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: {saved.shape} vs "
                    f"{param.numpy().shape}")
            param.data[...] = saved
        advisor.encoder.eval()

        labels_meta = metadata["labels"]
        if isinstance(labels_meta, dict):
            # v2 stacked score labels: rows of the two [N, m] arrays.
            names = tuple(labels_meta["model_names"])
            sa, se = data["label_sa"], data["label_se"]
            advisor._labels = [ScoreLabel(model_names=names,
                                          sa=sa[i], se=se[i])
                               for i in range(len(sa))]
        else:
            advisor._labels = [_label_from_dict(p) for p in labels_meta]
        advisor._graphs = [
            FeatureGraph(name=name,
                         vertices=data[f"graph_{i}_vertices"],
                         edges=data[f"graph_{i}_edges"])
            for i, name in enumerate(metadata["graph_names"])
        ]
        # RCS embeddings were saved at the serving tier (which the config
        # round-trips), so the reloaded node serves the exact same rows.
        # When the save carries quantizer state whose generation stamp
        # matches what we actually loaded (rows + round-tripped config),
        # the saved store attaches directly — zero k-means calls, restart
        # cost O(1) in corpus size.  A missing block (v1 saves, rows-only
        # saves) or a stamp mismatch falls back to retraining on attach.
        embeddings = data["rcs_embeddings"]
        quantized_store: CandidateStore | None = None
        quant_payload = metadata.get("quantizer")
        if (quant_payload is not None and config.quantization is not None
                and config.quantization.enabled):
            expected = quantizer_generation(embeddings, config.quantization)
            if quant_payload.get("generation") == expected:
                quantized_store = _restore_quantizer(
                    embeddings, config.quantization, data, quant_payload)
        advisor.rcs = RecommendationCandidateSet(
            embeddings, list(advisor._labels), ann=config.ann,
            quantization=config.quantization,
            quantized_store=quantized_store)

    advisor.trainer = DMLTrainer(advisor.encoder, config.dml)
    return advisor
