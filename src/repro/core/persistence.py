"""Saving and loading a trained advisor (offline training → online serving).

The paper's deployment story (Fig. 2) trains AutoCE offline and serves
recommendations online; a cloud vendor trains once and ships the advisor to
every tenant-facing node.  This module persists everything a serving node
needs into one ``.npz`` file:

* the advisor configuration (JSON),
* the GIN encoder weights (in ``Module.parameters()`` order),
* the training feature graphs (needed only for later online adapting),
* the labels, and the RCS embeddings.

Labels round-trip losslessly: :class:`DatasetLabel` keeps its raw testbed
measurements (so D-error and percentile re-normalization still work after a
reload), while synthetic :class:`ScoreLabel` instances (from Mixup or from
:meth:`~repro.testbed.scores.DatasetLabel.with_accuracy_metric`) keep their
normalized scores.

Typical usage::

    save_advisor(advisor, "advisor.npz")
    advisor = load_advisor("advisor.npz")
    advisor.recommend(new_dataset, accuracy_weight=0.9)
"""

from __future__ import annotations

import json
import zipfile
import zlib
from dataclasses import asdict

import numpy as np

from ..testbed.scores import DatasetLabel, ScoreLabel
from .advisor import AutoCE, AutoCEConfig
from .dml import DMLConfig, DMLTrainer
from .encoder import GINEncoder
from .graph import FeatureGraph
from .incremental import IncrementalConfig
from .predictor import (ANNConfig, E2LSHConfig, QuantizationConfig,
                        RecommendationCandidateSet)

#: Bump on any change to the on-disk layout.
FORMAT_VERSION = 1


class AdvisorLoadError(ValueError):
    """A saved advisor could not be loaded — missing file, torn or
    corrupt payload, or an incompatible format.

    :func:`load_advisor` is all-or-nothing: any failure raises this (a
    ``ValueError`` subclass, so pre-existing callers keep working) and
    never returns a half-restored advisor.  The original exception is
    chained as ``__cause__``.
    """

#: DatasetLabel array fields persisted when present (None-able ones last).
_RAW_LABEL_FIELDS = ("qerror_means", "latency_means", "qerror_medians",
                     "fit_times", "qerror_p95", "qerror_p99")


def _config_to_dict(config: AutoCEConfig) -> dict:
    return asdict(config)


def _config_from_dict(payload: dict) -> AutoCEConfig:
    payload = dict(payload)
    dml = dict(payload["dml"])
    # JSON has no tuples; restore the weight grid's declared type.
    dml["weights"] = tuple(dml["weights"])
    payload["dml"] = DMLConfig(**dml)
    payload["incremental"] = IncrementalConfig(**payload["incremental"])
    # Advisors saved before the scale-out serving fields existed load with
    # the defaults (exact search, in-memory cache only); likewise the
    # nested E2LSH block and the dtype tier default when absent.
    if "ann" in payload:
        ann = dict(payload["ann"])
        if "e2lsh" in ann:
            ann["e2lsh"] = E2LSHConfig(**ann["e2lsh"])
        payload["ann"] = ANNConfig(**ann)
    if "quantization" in payload:
        payload["quantization"] = QuantizationConfig(**payload["quantization"])
    return AutoCEConfig(**payload)


def _label_to_dict(label: ScoreLabel) -> dict:
    """JSON-serializable label payload (arrays as lists)."""
    payload: dict = {"model_names": list(label.model_names)}
    if isinstance(label, DatasetLabel):
        payload["kind"] = "dataset"
        for name in _RAW_LABEL_FIELDS:
            value = getattr(label, name, None)
            payload[name] = None if value is None else np.asarray(value).tolist()
    else:
        payload["kind"] = "score"
        payload["sa"] = label.sa.tolist()
        payload["se"] = label.se.tolist()
    return payload


def _label_from_dict(payload: dict) -> ScoreLabel:
    names = tuple(payload["model_names"])
    if payload["kind"] == "dataset":
        # JSON stores arrays as plain lists; hand DatasetLabel real float64
        # arrays so reloaded labels behave bit-identically to the originals
        # (indexing, percentile re-normalization, D-error).
        kwargs = {
            name: (None if payload.get(name) is None
                   else np.asarray(payload[name], dtype=np.float64))
            for name in _RAW_LABEL_FIELDS
        }
        return DatasetLabel(model_names=names, **kwargs)
    return ScoreLabel(model_names=names,
                      sa=np.asarray(payload["sa"], dtype=np.float64),
                      se=np.asarray(payload["se"], dtype=np.float64))


def save_advisor(advisor: AutoCE, path: str) -> None:
    """Persist a fitted advisor to a single compressed ``.npz`` file."""
    if advisor.encoder is None or advisor.rcs is None:
        raise ValueError("cannot save an unfitted advisor; call fit() first")

    metadata = {
        "format_version": FORMAT_VERSION,
        "config": _config_to_dict(advisor.config),
        "vertex_dim": advisor.encoder.vertex_dim,
        "labels": [_label_to_dict(label) for label in advisor._labels],
        "graph_names": [g.name for g in advisor._graphs],
        "num_graphs": len(advisor._graphs),
        "num_params": len(advisor.encoder.parameters()),
    }
    arrays: dict[str, np.ndarray] = {
        "metadata": np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
        "rcs_embeddings": advisor.rcs.embeddings,
    }
    for i, param in enumerate(advisor.encoder.parameters()):
        arrays[f"param_{i}"] = param.numpy()
    for i, graph in enumerate(advisor._graphs):
        arrays[f"graph_{i}_vertices"] = graph.vertices
        arrays[f"graph_{i}_edges"] = graph.edges
    np.savez_compressed(path, **arrays)


def load_advisor(path: str) -> AutoCE:
    """Reload an advisor saved by :func:`save_advisor`, ready to recommend.

    All-or-nothing: a missing file, a torn/truncated write, flipped bytes,
    or a format mismatch raise :class:`AdvisorLoadError`; a successfully
    returned advisor is always fully restored.
    """
    try:
        return _load_advisor(path)
    except AdvisorLoadError:
        raise
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile,
            zlib.error) as error:
        raise AdvisorLoadError(
            f"cannot load advisor from {path!r}: "
            f"{type(error).__name__}: {error}") from error


def _load_advisor(path: str) -> AutoCE:
    with np.load(path) as data:
        metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
        version = metadata.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported advisor format version {version!r} "
                f"(this build reads version {FORMAT_VERSION})")

        config = _config_from_dict(metadata["config"])
        advisor = AutoCE(config)
        advisor.encoder = GINEncoder(
            vertex_dim=metadata["vertex_dim"],
            hidden_dim=config.hidden_dim,
            embedding_dim=config.embedding_dim,
            num_layers=config.num_layers,
            seed=config.seed,
            dtype=np.dtype(config.dtype),
        )
        params = advisor.encoder.parameters()
        if len(params) != metadata["num_params"]:
            raise ValueError(
                "saved parameter count does not match the encoder "
                f"architecture ({metadata['num_params']} != {len(params)})")
        for i, param in enumerate(params):
            saved = data[f"param_{i}"]
            if saved.shape != param.numpy().shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: {saved.shape} vs "
                    f"{param.numpy().shape}")
            param.data[...] = saved
        advisor.encoder.eval()

        advisor._labels = [_label_from_dict(p) for p in metadata["labels"]]
        advisor._graphs = [
            FeatureGraph(name=name,
                         vertices=data[f"graph_{i}_vertices"],
                         edges=data[f"graph_{i}_edges"])
            for i, name in enumerate(metadata["graph_names"])
        ]
        # RCS embeddings were saved at the serving tier (which the config
        # round-trips), so the reloaded node serves — and, when enabled,
        # recalibrates the quantized candidate tier (int8 codes or PQ
        # codebooks, per the round-tripped mode/params) from — the exact
        # same rows.
        advisor.rcs = RecommendationCandidateSet(
            data["rcs_embeddings"], list(advisor._labels), ann=config.ann,
            quantization=config.quantization)

    advisor.trainer = DMLTrainer(advisor.encoder, config.dml)
    return advisor
