"""Feature graphs (Sec. V-A.2): the input representation of a dataset.

A feature graph holds a vertex matrix ``V ∈ R^{n × d}`` (one row of table
features per table, ``d = (k + m)·m + 2``) and an edge matrix
``E ∈ R^{n × n}`` of join correlations.  Graphs are padded to a common
table count for batched GIN encoding and for the Mixup augmentation of the
incremental-learning phase.

For training-scale corpora, :class:`GraphTensorBatcher` pads and stacks the
whole corpus into ``[N, n, d]`` / ``[N, n, n]`` tensors **once** (including
the pre-symmetrized adjacency the GIN encoder needs), so every DML step
slices index arrays instead of re-running :func:`batch_graphs`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
from numpy.typing import DTypeLike

from ..db.schema import Dataset
from .features import (join_correlation_matrix, table_feature_vector,
                       table_feature_vector_reference, vertex_dimension)

#: Default maximum number of data columns encoded per table (the paper's m).
DEFAULT_MAX_COLUMNS = 5


@dataclass
class FeatureGraph:
    """Vertex matrix + edge matrix for one dataset."""

    name: str
    vertices: np.ndarray  # [n, d]
    edges: np.ndarray     # [n, n]

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        self.edges = np.asarray(self.edges, dtype=np.float64)
        if self.vertices.ndim != 2:
            raise ValueError("vertex matrix must be 2-D")
        n = len(self.vertices)
        if self.edges.shape != (n, n):
            raise ValueError(
                f"edge matrix shape {self.edges.shape} != ({n}, {n})")
        self._fingerprint: str | None = None

    @property
    def num_tables(self) -> int:
        return len(self.vertices)

    @property
    def vertex_dim(self) -> int:
        return self.vertices.shape[1]

    def fingerprint(self) -> str:
        """Content hash of the graph, used as the embedding-cache key."""
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(np.ascontiguousarray(self.vertices).tobytes())
            digest.update(np.ascontiguousarray(self.edges).tobytes())
            self._fingerprint = digest.hexdigest()[:32]
        return self._fingerprint

    # ------------------------------------------------------------------
    def padded(self, num_tables: int) -> "FeatureGraph":
        """Zero-pad to ``num_tables`` vertices (Sec. V-A.2 padding)."""
        n = self.num_tables
        if num_tables < n:
            raise ValueError(f"cannot pad {n} tables down to {num_tables}")
        if num_tables == n:
            return self
        vertices = np.zeros((num_tables, self.vertex_dim))
        vertices[:n] = self.vertices
        edges = np.zeros((num_tables, num_tables))
        edges[:n, :n] = self.edges
        return FeatureGraph(self.name, vertices, edges)

    def mix_with(self, other: "FeatureGraph", lam: float) -> "FeatureGraph":
        """Eq. 14 (feature half): G' = λ·G_i + (1−λ)·G_j after padding."""
        n = max(self.num_tables, other.num_tables)
        a = self.padded(n)
        b = other.padded(n)
        return FeatureGraph(
            name=f"mix({self.name},{other.name})",
            vertices=lam * a.vertices + (1.0 - lam) * b.vertices,
            edges=lam * a.edges + (1.0 - lam) * b.edges,
        )

    def flat(self) -> np.ndarray:
        """Flattened [V | E] vector (used by the raw-feature Knn baseline)."""
        return np.concatenate([self.vertices.ravel(), self.edges.ravel()])


def build_feature_graph(dataset: Dataset,
                        max_columns: int = DEFAULT_MAX_COLUMNS,
                        sample_rows: int | None = None) -> FeatureGraph:
    """Run the full feature-engineering pipeline for one dataset.

    ``sample_rows`` enables the row-sampling featurizer sketch for large
    tables; the exact path (``None``) is the default.
    """
    names = sorted(dataset.table_names)
    vertices = np.stack([
        table_feature_vector(dataset[name], max_columns,
                             sample_rows=sample_rows)
        for name in names
    ])
    edges = join_correlation_matrix(dataset)
    return FeatureGraph(dataset.name, vertices, edges)


def build_feature_graph_reference(dataset: Dataset,
                                  max_columns: int = DEFAULT_MAX_COLUMNS
                                  ) -> FeatureGraph:
    """Scalar-path feature graph (ground truth for equivalence tests)."""
    names = sorted(dataset.table_names)
    vertices = np.stack([
        table_feature_vector_reference(dataset[name], max_columns)
        for name in names
    ])
    edges = join_correlation_matrix(dataset)
    return FeatureGraph(dataset.name, vertices, edges)


def batch_graphs(graphs: list[FeatureGraph], dtype: DTypeLike = np.float64
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad a list of graphs to tensors [B, n, d], [B, n, n], mask [B, n].

    ``dtype`` selects the precision tier of the batch tensors: feature
    graphs are always stored in float64, but the float32 tier halves the
    memory bandwidth of the GIN forward/backward built on top of them.
    """
    if not graphs:
        raise ValueError("empty graph batch")
    dims = {g.vertex_dim for g in graphs}
    if len(dims) != 1:
        raise ValueError(f"inconsistent vertex dimensions in batch: {dims}")
    n_max = max(g.num_tables for g in graphs)
    vertices = np.zeros((len(graphs), n_max, dims.pop()), dtype=dtype)
    edges = np.zeros((len(graphs), n_max, n_max), dtype=dtype)
    mask = np.zeros((len(graphs), n_max), dtype=dtype)
    for i, graph in enumerate(graphs):
        n = graph.num_tables
        vertices[i, :n] = graph.vertices
        edges[i, :n, :n] = graph.edges
        mask[i, :n] = 1.0
    return vertices, edges, mask


class GraphTensorBatcher:
    """Corpus tensor cache for DML training.

    Pads and stacks a whole corpus once — vertices ``[N, n, d]``, the
    **pre-symmetrized** adjacency ``[N, n, n]`` (``E + Eᵀ``, which
    ``GINEncoder.forward`` otherwise recomputes on every call) and the
    vertex mask ``[N, n]``.  :meth:`slice` then serves any training batch as
    pure index-array views; zero-padding to the corpus-wide max table count
    is numerically transparent to the masked GIN encoder.

    ``dtype`` pins the tensor cache to a precision tier (float64 default;
    float32 is the fast tier, matched to the encoder's parameter dtype by
    :class:`~repro.core.dml.DMLTrainer`).
    """

    def __init__(self, graphs: list[FeatureGraph],
                 dtype: DTypeLike = np.float64) -> None:
        vertices, edges, mask = batch_graphs(graphs, dtype=dtype)
        self.dtype = np.dtype(dtype)
        self.vertices = vertices
        self.adjacency = edges + np.swapaxes(edges, 1, 2)
        self.mask = mask

    def __len__(self) -> int:
        return len(self.vertices)

    def slice(self, idx: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch tensors (vertices, adjacency, mask) for the given indices."""
        return self.vertices[idx], self.adjacency[idx], self.mask[idx]
