"""Incremental learning with Mixup data augmentation (Sec. VI, Algorithm 2).

Cross-validates the trained encoder over the original training data: for
each fold, the remaining folds form the RCS and every held-out sample is
recommended a model via KNN.  Samples whose recommendation has D-error
above the threshold ``b`` go to the *feedback* set; the rest form the
*reference* set.  Each feedback sample is then augmented by Mixup (Eq. 14)
with its nearest reference neighbor — interpolating both the padded feature
graphs and the labels with λ ~ Beta(α, β) — and the encoder is trained
incrementally on original + synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..testbed.scores import ScoreLabel
from ..utils.rng import rng_from_seed
from .dml import DMLTrainer
from .encoder import GINEncoder
from .graph import FeatureGraph
from .serving import (KNNPredictor, RecommendationCandidateSet,
                      squared_distance_matrix)


@dataclass
class IncrementalConfig:
    #: D-error threshold b separating feedback from reference samples.
    d_error_threshold: float = 0.1
    #: Number of cross-validation folds (ξ).
    folds: int = 5
    #: Beta(α, β) parameters for the Mixup λ.
    alpha: float = 2.0
    beta: float = 2.0
    #: Accuracy weight used when judging validation recommendations.
    accuracy_weight: float = 0.9
    #: Extra training epochs on the augmented data.
    epochs: int = 10
    knn_k: int = 2
    seed: int = 0


@dataclass
class AugmentationResult:
    """Feedback/reference split plus synthesized samples."""

    feedback_indices: list[int]
    reference_indices: list[int]
    new_graphs: list[FeatureGraph]
    new_labels: list[ScoreLabel]

    @property
    def num_synthesized(self) -> int:
        return len(self.new_graphs)


def collect_feedback(encoder: GINEncoder, graphs: list[FeatureGraph],
                     labels: list[ScoreLabel],
                     config: IncrementalConfig) -> tuple[list[int], list[int]]:
    """Steps 3–12 of Algorithm 2: cross-validated feedback collection."""
    n = len(graphs)
    rng = rng_from_seed(config.seed)
    order = rng.permutation(n)
    folds = np.array_split(order, max(2, min(config.folds, n)))
    embeddings = encoder.embed(graphs)
    predictor = KNNPredictor(k=config.knn_k)

    feedback: list[int] = []
    reference: list[int] = []
    for fold in folds:
        fold_set = set(int(i) for i in fold)
        rest = [i for i in range(n) if i not in fold_set]
        if not rest:
            continue
        rcs = RecommendationCandidateSet(
            embeddings[rest], [labels[i] for i in rest])
        held_out = sorted(fold_set)
        recs = predictor.recommend_batch(
            embeddings[held_out], rcs, config.accuracy_weight)
        for i, rec in zip(held_out, recs):
            d_err = labels[i].d_error(rec.model, config.accuracy_weight, clip=None)
            if d_err > config.d_error_threshold:
                feedback.append(i)
            else:
                reference.append(i)
    return sorted(feedback), sorted(reference)


def augment_with_mixup(encoder: GINEncoder, graphs: list[FeatureGraph],
                       labels: list[ScoreLabel],
                       feedback: list[int], reference: list[int],
                       config: IncrementalConfig) -> AugmentationResult:
    """Steps 13–16: synthesize one Mixup sample per feedback sample."""
    rng = rng_from_seed(config.seed + 1)
    new_graphs: list[FeatureGraph] = []
    new_labels: list[ScoreLabel] = []
    if feedback and reference:
        embeddings = encoder.embed(graphs)
        # One [|feedback|, |reference|] Gram-identity distance matrix instead
        # of a Python loop of broadcast passes.
        sq = squared_distance_matrix(embeddings[feedback],
                                     embeddings[reference])
        nearest_ref = np.argmin(sq, axis=1)
        for i, r in zip(feedback, nearest_ref):
            j = reference[int(r)]
            lam = float(rng.beta(config.alpha, config.beta))
            new_graphs.append(graphs[i].mix_with(graphs[j], lam))
            new_labels.append(labels[i].mix_with(labels[j], lam))
    return AugmentationResult(feedback, reference, new_graphs, new_labels)


def incremental_learning(trainer: DMLTrainer, graphs: list[FeatureGraph],
                         labels: list[ScoreLabel],
                         config: IncrementalConfig | None = None,
                         augment: bool = True) -> AugmentationResult:
    """Full Algorithm 2: feedback → Mixup → incremental training.

    ``augment=False`` is the Fig. 11(b) "No Augmentation" ablation: the
    incremental training epochs still run but on the original data only.
    """
    config = config or IncrementalConfig()
    encoder = trainer.encoder
    feedback, reference = collect_feedback(encoder, graphs, labels, config)
    if not augment:
        trainer.train(graphs, labels, epochs=config.epochs)
        return AugmentationResult(feedback, reference, [], [])
    result = augment_with_mixup(encoder, graphs, labels, feedback, reference, config)
    if result.new_graphs:
        trainer.train(graphs + result.new_graphs, labels + result.new_labels,
                      epochs=config.epochs)
    return result
