"""GIN graph encoder (Sec. V-B, Eq. 5).

Encodes a feature graph into a similarity-aware dataset embedding.  Each
GINConv layer computes

    h_i^{(l+1)} = f_θ( (1 + ε)·h_i^{(l)} + Σ_{j ∈ N(i)} e'_{ji} · h_j^{(l)} )

with a learnable ε per layer and the join correlations e' as edge weights;
a final sum pooling over vertices produces the embedding X (the paper uses
sum pooling explicitly).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..utils.rng import rng_from_seed
from .graph import FeatureGraph, batch_graphs


class GINLayer(nn.Module):
    """One GINConv layer with learnable ε and a 2-layer MLP as f_θ."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.epsilon = nn.Tensor(np.zeros(1), requires_grad=True)
        self.mlp = nn.MLP([in_dim, out_dim, out_dim], rng)

    def forward(self, h: nn.Tensor, adjacency: nn.Tensor,
                mask: np.ndarray) -> nn.Tensor:
        # h: [B, n, d]; adjacency: [B, n, n] (weighted, symmetric).
        neighbour_sum = adjacency @ h
        combined = h * (self.epsilon + 1.0) + neighbour_sum
        out = self.mlp(combined).relu()
        # Keep padded vertices at zero so sum pooling ignores them.
        return out * nn.Tensor(mask[:, :, None])


class GINEncoder(nn.Module):
    """Stack of GINConv layers + sum pooling (the graph encoder G)."""

    def __init__(self, vertex_dim: int, hidden_dim: int = 64,
                 embedding_dim: int = 32, num_layers: int = 2,
                 seed: int | np.random.Generator = 0):
        super().__init__()
        rng = rng_from_seed(seed)
        self.vertex_dim = vertex_dim
        self.embedding_dim = embedding_dim
        dims = [vertex_dim] + [hidden_dim] * (num_layers - 1) + [embedding_dim]
        self.layers = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = GINLayer(d_in, d_out, rng)
            self.layers.append(layer)
            setattr(self, f"gin{i}", layer)

    def forward(self, vertices: np.ndarray, edges: np.ndarray,
                mask: np.ndarray) -> nn.Tensor:
        """Batched encoding: [B, n, d] + [B, n, n] + [B, n] → [B, e]."""
        # Symmetrize: messages flow both ways along a join edge.
        adjacency = nn.Tensor(edges + np.swapaxes(edges, 1, 2))
        h = nn.Tensor(vertices)
        for layer in self.layers:
            h = layer(h, adjacency, mask)
        # Sum pooling over (unpadded) vertices.
        return (h * nn.Tensor(mask[:, :, None])).sum(axis=1)

    def encode_batch(self, graphs: list[FeatureGraph]) -> nn.Tensor:
        vertices, edges, mask = batch_graphs(graphs)
        return self.forward(vertices, edges, mask)

    def embed(self, graphs: list[FeatureGraph]) -> np.ndarray:
        """Inference-mode embeddings as a plain numpy array [B, e]."""
        with nn.no_grad():
            return self.encode_batch(graphs).numpy()

    def embed_one(self, graph: FeatureGraph) -> np.ndarray:
        return self.embed([graph])[0]
