"""GIN graph encoder (Sec. V-B, Eq. 5).

Encodes a feature graph into a similarity-aware dataset embedding.  Each
GINConv layer computes

    h_i^{(l+1)} = f_θ( (1 + ε)·h_i^{(l)} + Σ_{j ∈ N(i)} e'_{ji} · h_j^{(l)} )

with a learnable ε per layer and the join correlations e' as edge weights;
a final sum pooling over vertices produces the embedding X (the paper uses
sum pooling explicitly).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import DTypeLike

from .. import nn
from ..nn.autograd import Tensor
from ..utils.rng import rng_from_seed
from .graph import FeatureGraph, batch_graphs


def gin_combine(h: nn.Tensor, adjacency: np.ndarray,
                epsilon: nn.Tensor) -> nn.Tensor:
    """Fused ``(1 + ε)·h + A·h`` as one autograd node.

    The adjacency is a constant and — being the symmetrized ``E + Eᵀ`` —
    equals its own transpose, so the backward pass reuses it directly
    instead of a strided transposed batched matmul.  Fusing the
    scale-and-aggregate avoids four intermediate tensors per layer on the
    training hot path.
    """
    eps = 1.0 + float(epsilon.data[0])
    data = eps * h.data + adjacency @ h.data
    h_data = h.data

    def backward(grad: np.ndarray
                 ) -> list[tuple[nn.Tensor, np.ndarray]]:
        out = []
        if h.requires_grad:
            out.append((h, eps * grad + adjacency @ grad))
        if epsilon.requires_grad:
            out.append((epsilon, np.array([(grad * h_data).sum()])))
        return out

    return Tensor._make(data, (h, epsilon), backward)


def masked_sum_pool(h: nn.Tensor, mask: np.ndarray) -> nn.Tensor:
    """Fused masked sum pooling ``Σ_i mask_i · h_i`` over the vertex axis."""
    data = (h.data * mask[:, :, None]).sum(axis=1)

    def backward(grad: np.ndarray
                 ) -> tuple[tuple[nn.Tensor, np.ndarray], ...]:
        return ((h, grad[:, None, :] * mask[:, :, None]),)

    return Tensor._make(data, (h,), backward)


class GINLayer(nn.Module):
    """One GINConv layer with learnable ε and a 2-layer MLP as f_θ."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.epsilon = nn.Tensor(np.zeros(1), requires_grad=True)
        # output_activation="relu" lets the MLP fuse the layer's final ReLU
        # into its last affine node on the training hot path.
        self.mlp = nn.MLP([in_dim, out_dim, out_dim], rng,
                          output_activation="relu")

    def forward(self, h: nn.Tensor, adjacency: np.ndarray,
                mask: np.ndarray) -> nn.Tensor:
        # h: [B, n, d]; adjacency: [B, n, n] (weighted, symmetric).
        # The MLP's fused affine collapses [B, n, d] to one [B·n, d] GEMM;
        # padded vertices need no per-layer zeroing — their adjacency
        # rows/columns are zero, so they never reach a real vertex, and the
        # encoder's final sum pooling masks them out.
        return self.mlp(gin_combine(h, adjacency, self.epsilon))


class GINEncoder(nn.Module):
    """Stack of GINConv layers + sum pooling (the graph encoder G).

    ``dtype`` selects the encoder's precision tier.  Parameters are always
    *initialized* in float64 from the seeded RNG and then cast, so a float32
    encoder starts from (the rounding of) the exact same weights as its
    float64 twin — the property-based equivalence harness depends on this.
    Inputs are cast at the forward boundary; the autograd engine keeps the
    tier end-to-end from there.
    """

    def __init__(self, vertex_dim: int, hidden_dim: int = 64,
                 embedding_dim: int = 32, num_layers: int = 2,
                 seed: int | np.random.Generator = 0,
                 dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        rng = rng_from_seed(seed)
        self.vertex_dim = vertex_dim
        self.embedding_dim = embedding_dim
        dims = [vertex_dim] + [hidden_dim] * (num_layers - 1) + [embedding_dim]
        self.layers = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = GINLayer(d_in, d_out, rng)
            self.layers.append(layer)
            setattr(self, f"gin{i}", layer)
        self.dtype = np.dtype(np.float64)
        self.to(dtype)

    def to(self, dtype: DTypeLike) -> "GINEncoder":
        super().to(dtype)
        object.__setattr__(self, "dtype", np.dtype(dtype))
        return self

    def _cast(self, array: np.ndarray) -> np.ndarray:
        """Bring a forward input onto the encoder's precision tier (no-copy
        when it already is)."""
        return np.asarray(array, dtype=self.dtype)

    def forward(self, vertices: np.ndarray, edges: np.ndarray,
                mask: np.ndarray) -> nn.Tensor:
        """Batched encoding: [B, n, d] + [B, n, n] + [B, n] → [B, e]."""
        # Symmetrize: messages flow both ways along a join edge.
        edges = self._cast(edges)
        return self.forward_adjacency(
            vertices, edges + np.swapaxes(edges, 1, 2), mask)

    def forward_adjacency(self, vertices: np.ndarray, adjacency: np.ndarray,
                          mask: np.ndarray) -> nn.Tensor:
        """Encoding from an already-symmetrized adjacency (``E + Eᵀ``).

        The fast training path precomputes the symmetrized adjacency once per
        corpus (see :class:`~repro.core.graph.GraphTensorBatcher`) instead of
        re-deriving it on every forward call.
        """
        h = nn.Tensor(self._cast(vertices))
        adjacency = self._cast(adjacency)
        mask = self._cast(mask)
        for layer in self.layers:
            h = layer(h, adjacency, mask)
        # Sum pooling over (unpadded) vertices.
        return masked_sum_pool(h, mask)

    def encode_batch(self, graphs: list[FeatureGraph]) -> nn.Tensor:
        vertices, edges, mask = batch_graphs(graphs, dtype=self.dtype)
        return self.forward(vertices, edges, mask)

    def embed(self, graphs: list[FeatureGraph]) -> np.ndarray:
        """Inference-mode embeddings as a plain numpy array [B, e]."""
        with nn.no_grad():
            return self.encode_batch(graphs).numpy()

    def embed_one(self, graph: FeatureGraph) -> np.ndarray:
        return self.embed([graph])[0]
