"""Deep-metric-learning losses (Sec. V-C).

Implements the paper's *weighted contrastive loss* (Eq. 9)

    L_c = 1/m Σ_i [ log Σ_{k∈P_i} e^{U_ik + Sim_ik}
                  + log Σ_{k∈N_i} e^{γ − U_ik − Sim_ik} ]

together with the *basic contrastive loss* (Eq. 10) used as the ablation
baseline in Fig. 7, the performance similarity (Eq. 6), and the
positive/negative partition rule (Eq. 7).  The pair-weighting analysis
(Eqs. 11–12) follows from differentiating Eq. 9 and is verified in the test
suite.
"""

from __future__ import annotations

import numpy as np

from .. import nn

_NEG_INF = -1e9

#: Memoized boolean identity matrices (batch sizes recur every step).
_EYE_CACHE: dict[int, np.ndarray] = {}


def _bool_eye(m: int) -> np.ndarray:
    eye = _EYE_CACHE.get(m)
    if eye is None:
        eye = np.eye(m, dtype=bool)
        _EYE_CACHE[m] = eye
    return eye


def cosine_similarity_matrix(labels: np.ndarray) -> np.ndarray:
    """Eq. 6: pairwise cosine similarity of label (score) vectors."""
    labels = np.asarray(labels, dtype=np.float64)
    norms = np.sqrt((labels * labels).sum(axis=1, keepdims=True))
    normalized = labels / np.maximum(norms, 1e-12)
    sims = normalized @ normalized.T
    return np.clip(sims, -1.0, 1.0)


def positive_negative_masks(similarities: np.ndarray, tau: float
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 7: split pairs into positive (Sim ≥ τ) and negative sets.

    The diagonal (self pairs) is excluded from both sets.
    """
    off_diagonal = ~_bool_eye(len(similarities))
    positive = (similarities >= tau) & off_diagonal
    # Off-diagonal pairs not positive are negative (one xor, not a second
    # comparison pass).
    negative = positive ^ off_diagonal
    return positive, negative


def pairwise_distances(embeddings: nn.Tensor) -> nn.Tensor:
    """Eq. 8: pairwise Euclidean distances U of a batch of embeddings.

    Computed via the Gram identity ``‖e_i‖² + ‖e_j‖² − 2⟨e_i, e_j⟩`` as a
    single fused autograd node (the composed version built ~9 graph nodes
    per batch).  Numerical noise on the diagonal is clipped at zero before
    the ``sqrt(· + 1e-12)``.
    """
    e = embeddings.data
    squared = (e * e).sum(axis=1, keepdims=True)
    dist_sq = squared + squared.T - (e @ e.T) * 2.0
    positive_mask = dist_sq > 0
    dist_sq = dist_sq * positive_mask
    distances = np.sqrt(dist_sq + 1e-12)

    def backward(grad: np.ndarray
                 ) -> tuple[tuple[nn.Tensor, np.ndarray], ...]:
        # dL/dK for K = clipped squared distances (chain through sqrt+clip),
        # then grad_E = 2·(rowsum(S)·E − S@E) with S = Q + Qᵀ.
        q = grad * (0.5 / distances) * positive_mask
        s = q + q.T
        grad_e = 2.0 * (s.sum(axis=1, keepdims=True) * e - s @ e)
        return ((embeddings, grad_e),)

    return nn.Tensor._make(distances, (embeddings,), backward)


def _masked_logsumexp(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stable logsumexp and softmax along the last axis.

    Accepts stacked [..., m, m] inputs so both Eq. 9 terms run in one pass;
    fully-masked (all ``-inf``) rows are tolerated — callers zero them via
    the has-positive/has-negative indicators.
    """
    shift = values.max(axis=-1, keepdims=True)
    shifted_exp = np.exp(values - shift)
    sumexp = shifted_exp.sum(axis=-1, keepdims=True)
    lse = np.log(sumexp) + shift
    softmax = shifted_exp / sumexp
    return lse[..., 0], softmax


def weighted_contrastive_loss(embeddings: nn.Tensor, similarities: np.ndarray,
                              tau: float = 0.95, gamma: float = 2.0) -> nn.Tensor:
    """Eq. 9: the paper's weighted contrastive loss over one batch.

    Fully fused: the Gram-identity distances (Eq. 8), masking, the two
    logsumexps and the anchor mean form a single autograd node from the
    embeddings to the scalar loss.  The gradient w.r.t. U is the closed-form
    softmax pair weighting of Eqs. 11–12, chained through the distance
    identity to the embeddings (verified against composed autograd ops and
    finite differences in the tests).
    """
    positive, negative = positive_negative_masks(similarities, tau)
    e = embeddings.data
    # The whole loss follows the embeddings' precision tier: label
    # similarities arrive float64 but are demoted so a float32 batch never
    # silently promotes back to float64 mid-graph.
    similarities = np.asarray(similarities, dtype=e.dtype)
    squared = (e * e).sum(axis=1, keepdims=True)
    dist_sq = squared + squared.T - (e @ e.T) * 2.0
    positive_dist = dist_sq > 0
    distances = np.sqrt(dist_sq * positive_dist + 1e-12)

    arg = distances + similarities
    m = len(similarities)
    # Both Eq. 9 terms as one stacked [2, m, m] logsumexp pass.
    stacked = np.full((2, m, m), _NEG_INF, dtype=e.dtype)
    np.copyto(stacked[0], arg, where=positive)
    np.copyto(stacked[1], arg * -1.0 + gamma, where=negative)
    (pos_term, neg_term), (pos_softmax, neg_softmax) = \
        _masked_logsumexp(stacked)

    has_pos = positive.any(axis=1).astype(e.dtype)
    has_neg = negative.any(axis=1).astype(e.dtype)
    loss = (pos_term * has_pos + neg_term * has_neg).sum() / m

    def backward(grad: np.ndarray
                 ) -> tuple[tuple[nn.Tensor, np.ndarray], ...]:
        # ∂L/∂U_ij = (w⁺_ij − w⁻_ij) / m per anchor row (Eqs. 11–12) ...
        grad_u = (grad / m) * (has_pos[:, None] * pos_softmax
                               - has_neg[:, None] * neg_softmax)
        # ... chained through U = sqrt(clip(K) + 1e-12), K = Gram identity.
        q = grad_u * (0.5 / distances) * positive_dist
        s = q + q.T
        grad_e = 2.0 * (s.sum(axis=1, keepdims=True) * e - s @ e)
        return ((embeddings, grad_e),)

    return nn.Tensor._make(np.asarray(loss), (embeddings,), backward)


def basic_contrastive_loss(embeddings: nn.Tensor, similarities: np.ndarray,
                           tau: float = 0.95, gamma: float = 2.0) -> nn.Tensor:
    """Eq. 10: the unweighted contrastive baseline (Hadsell et al. style).

    Positive pairs are pulled together, negative pairs pushed apart up to
    the margin γ (the hinge keeps the loss bounded below, matching [5]).
    """
    positive, negative = positive_negative_masks(similarities, tau)
    distances = pairwise_distances(embeddings)
    m = len(similarities)
    dtype = embeddings.data.dtype

    pos_sum = (distances * nn.Tensor(positive.astype(dtype))).sum(axis=1)
    hinge = ((distances * -1.0) + gamma).relu()
    neg_sum = (hinge * nn.Tensor(negative.astype(dtype))).sum(axis=1)

    pos_count = np.maximum(positive.sum(axis=1), 1.0).astype(dtype)
    neg_count = np.maximum(negative.sum(axis=1), 1.0).astype(dtype)
    total = pos_sum / nn.Tensor(pos_count) + neg_sum / nn.Tensor(neg_count)
    return total.mean()


def pair_weights(distances: np.ndarray, similarities: np.ndarray,
                 tau: float = 0.95) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form pair weights (Eqs. 11–12), for analysis and tests.

    w⁺_ij = 1 / Σ_{k∈P_i} e^{(U_ik − U_ij) + (Sim_ik − Sim_ij)}
    w⁻_ij = 1 / Σ_{k∈N_i} e^{(U_ij − U_ik) + (Sim_ij − Sim_ik)}
    """
    positive, negative = positive_negative_masks(similarities, tau)
    arg = distances + similarities
    m = len(similarities)
    w_pos = np.zeros((m, m))
    w_neg = np.zeros((m, m))
    for i in range(m):
        for j in range(m):
            if positive[i, j]:
                denom = np.exp(arg[i, positive[i]] - arg[i, j]).sum()
                w_pos[i, j] = 1.0 / denom
            elif negative[i, j]:
                denom = np.exp(arg[i, j] - arg[i, negative[i]]).sum()
                w_neg[i, j] = 1.0 / denom
    return w_pos, w_neg
