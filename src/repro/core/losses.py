"""Deep-metric-learning losses (Sec. V-C).

Implements the paper's *weighted contrastive loss* (Eq. 9)

    L_c = 1/m Σ_i [ log Σ_{k∈P_i} e^{U_ik + Sim_ik}
                  + log Σ_{k∈N_i} e^{γ − U_ik − Sim_ik} ]

together with the *basic contrastive loss* (Eq. 10) used as the ablation
baseline in Fig. 7, the performance similarity (Eq. 6), and the
positive/negative partition rule (Eq. 7).  The pair-weighting analysis
(Eqs. 11–12) follows from differentiating Eq. 9 and is verified in the test
suite.
"""

from __future__ import annotations

import numpy as np

from .. import nn

_NEG_INF = -1e9


def cosine_similarity_matrix(labels: np.ndarray) -> np.ndarray:
    """Eq. 6: pairwise cosine similarity of label (score) vectors."""
    labels = np.asarray(labels, dtype=np.float64)
    norms = np.linalg.norm(labels, axis=1, keepdims=True)
    normalized = labels / np.maximum(norms, 1e-12)
    sims = normalized @ normalized.T
    return np.clip(sims, -1.0, 1.0)


def positive_negative_masks(similarities: np.ndarray, tau: float):
    """Eq. 7: split pairs into positive (Sim ≥ τ) and negative sets.

    The diagonal (self pairs) is excluded from both sets.
    """
    m = len(similarities)
    eye = np.eye(m, dtype=bool)
    positive = (similarities >= tau) & ~eye
    negative = (similarities < tau) & ~eye
    return positive, negative


def pairwise_distances(embeddings: nn.Tensor) -> nn.Tensor:
    """Eq. 8: pairwise Euclidean distances U of a batch of embeddings."""
    squared = (embeddings * embeddings).sum(axis=1, keepdims=True)
    gram = embeddings @ embeddings.T
    dist_sq = squared + squared.T - gram * 2.0
    # Numerical noise can push diagonal entries slightly negative.
    dist_sq = dist_sq.relu()
    return (dist_sq + 1e-12).sqrt()


def weighted_contrastive_loss(embeddings: nn.Tensor, similarities: np.ndarray,
                              tau: float = 0.95, gamma: float = 2.0) -> nn.Tensor:
    """Eq. 9: the paper's weighted contrastive loss over one batch."""
    positive, negative = positive_negative_masks(similarities, tau)
    distances = pairwise_distances(embeddings)
    sims = nn.Tensor(similarities)

    pos_arg = nn.where(positive, distances + sims, nn.Tensor(np.full_like(similarities, _NEG_INF)))
    neg_arg = nn.where(negative, (distances + sims) * -1.0 + gamma,
                       nn.Tensor(np.full_like(similarities, _NEG_INF)))

    pos_term = pos_arg.logsumexp(axis=1)
    neg_term = neg_arg.logsumexp(axis=1)

    has_pos = positive.any(axis=1).astype(np.float64)
    has_neg = negative.any(axis=1).astype(np.float64)
    total = pos_term * nn.Tensor(has_pos) + neg_term * nn.Tensor(has_neg)
    return total.mean()


def basic_contrastive_loss(embeddings: nn.Tensor, similarities: np.ndarray,
                           tau: float = 0.95, gamma: float = 2.0) -> nn.Tensor:
    """Eq. 10: the unweighted contrastive baseline (Hadsell et al. style).

    Positive pairs are pulled together, negative pairs pushed apart up to
    the margin γ (the hinge keeps the loss bounded below, matching [5]).
    """
    positive, negative = positive_negative_masks(similarities, tau)
    distances = pairwise_distances(embeddings)
    m = len(similarities)

    pos_sum = (distances * nn.Tensor(positive.astype(np.float64))).sum(axis=1)
    hinge = ((distances * -1.0) + gamma).relu()
    neg_sum = (hinge * nn.Tensor(negative.astype(np.float64))).sum(axis=1)

    pos_count = np.maximum(positive.sum(axis=1), 1.0)
    neg_count = np.maximum(negative.sum(axis=1), 1.0)
    total = pos_sum / nn.Tensor(pos_count) + neg_sum / nn.Tensor(neg_count)
    return total.mean()


def pair_weights(distances: np.ndarray, similarities: np.ndarray,
                 tau: float = 0.95) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form pair weights (Eqs. 11–12), for analysis and tests.

    w⁺_ij = 1 / Σ_{k∈P_i} e^{(U_ik − U_ij) + (Sim_ik − Sim_ij)}
    w⁻_ij = 1 / Σ_{k∈N_i} e^{(U_ij − U_ik) + (Sim_ij − Sim_ik)}
    """
    positive, negative = positive_negative_masks(similarities, tau)
    arg = distances + similarities
    m = len(similarities)
    w_pos = np.zeros((m, m))
    w_neg = np.zeros((m, m))
    for i in range(m):
        for j in range(m):
            if positive[i, j]:
                denom = np.exp(arg[i, positive[i]] - arg[i, j]).sum()
                w_pos[i, j] = 1.0 / denom
            elif negative[i, j]:
                denom = np.exp(arg[i, j] - arg[i, negative[i]]).sum()
                w_neg[i, j] = 1.0 / denom
    return w_pos, w_neg
