"""LSH serving indexes behind the :class:`NeighborIndex` protocol.

Two LSH families share one bucketed-index substrate
(:class:`_BucketedLSHIndex`): :class:`ANNIndex` is a random-hyperplane
*sign* hash with multi-probe bit flips — ideal when the corpus has
family/cluster structure — and :class:`E2LSHIndex` is a
quantized-projection (E2LSH-style) hash ``floor((x·w + b) / r)`` with
multi-probe bucket walks, which keeps discriminating by *distance* on
corpora without cluster structure.  Both rank their padded re-rank
pools in code space when a quantized store is attached
(:meth:`_BucketedLSHIndex._narrow_pools`).  :class:`ExactIndex` is the
exhaustive Gram-identity search behind the same protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from .kernels import (_as_float_matrix, _common_dtype, exact_search,
                      top_k_neighbors)
from .quantizers import CandidateStore, QuantizedStore, candidate_scan

@runtime_checkable
class NeighborIndex(Protocol):
    """Shared protocol of the exact and approximate serving indexes.

    ``embeddings`` in :meth:`search` is always the *live* RCS matrix — the
    index only accelerates candidate selection and re-ranks against the
    source of truth, so it never has to copy (or risk serving stale copies
    of) the embedding rows themselves.
    """

    def rebuild(self, embeddings: np.ndarray) -> None:
        """(Re)index the full [N, d] embedding matrix."""

    def add(self, embedding: np.ndarray) -> None:
        """Index one appended row without re-hashing the existing corpus."""

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int, *, store: "CandidateStore | None" = None
               ) -> tuple[np.ndarray, np.ndarray]:
        """([Q, k] neighbor indices, [Q, k] Euclidean distances).

        ``store`` optionally provides a quantized candidate tier (flat
        int8 codes or PQ): scan-shaped passes (the exhaustive search and
        the LSH indexes' exact fallbacks) run their candidate selection
        over the codes, and the bucketed LSH indexes additionally rank
        their padded re-rank pools in code space — all re-ranked in the
        float tier.
        """


class ExactIndex:
    """The exhaustive Gram-identity search behind the index protocol."""

    def rebuild(self, embeddings: np.ndarray) -> None:
        pass

    def add(self, embedding: np.ndarray) -> None:
        pass

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int, *, store: CandidateStore | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        return candidate_scan(queries, embeddings, k, store)


@dataclass
class E2LSHConfig:
    """Quantized-projection (E2LSH-style) hash parameters.

    Each of ``num_tables`` tables hashes an embedding to the integer lattice
    cell of ``num_projections`` quantized projections ``floor((x·w + b)/r)``.
    Unlike the sign hash, the bucket id changes with *distance along* each
    projection, not just its sign, so corpora without family/cluster
    structure (uniform clouds, shells, low-intrinsic-dimension manifolds)
    still spread over distance-coherent buckets.
    """

    #: Independent hash tables; more tables = higher recall, more probes.
    #: Each table sits on its own rung of the radius ladder (see ``radius``).
    num_tables: int = 10
    #: Quantized projections per table; 0 = auto-size from the corpus size
    #: at rebuild time.
    num_projections: int = 0
    #: Quantization width r; 0 = calibrate a per-table radius *ladder* from
    #: the corpus at rebuild time: table t's radius is ``radius_scale``
    #: times the t-th percentile of the sampled members' k-NN distances.
    #: Embedding clouds whose local neighbor scale varies across the corpus
    #: (e.g. sum-pooled GIN embeddings, where scale grows with the radial
    #: coordinate) then always have some rungs quantizing at the right
    #: granularity; a corpus with one global scale gets ~equal rungs and
    #: the ladder degenerates to the textbook single radius.
    radius: float = 0.0
    #: Multiplier applied to the sampled k-NN distance scale(s).
    radius_scale: float = 2.4
    #: Members sampled (and the k used) for the radius calibration probe.
    calibration_sample: int = 256
    calibration_k: int = 5
    #: Extra buckets walked per table and query: single lattice steps along
    #: the coordinates whose cell boundary is nearest (the query-directed
    #: multi-probe heuristic of Lv et al., restricted to ±1 perturbations);
    #: values beyond 2·num_projections extend the walk with the cheapest
    #: two-coordinate combinations.
    num_probes: int = 16
    #: Buckets larger than this contribute no candidates (0 = no cap): an
    #: oversized bucket is a mismatched ladder rung quantizing too coarsely
    #: for this query's neighborhood and would flood the re-rank pool.
    bucket_cap: int = 128
    #: Pool-size guard rails shared with the sign hash: too-sparse pools
    #: fall back to exact search, too-dense pools (no locality to exploit,
    #: e.g. a degenerate all-identical corpus) likewise (0 = never).
    min_candidates: int = 16
    max_candidates: int = 2048
    seed: int = 0


@dataclass
class ANNConfig:
    """Random-hyperplane LSH parameters for the approximate serving index."""

    #: RCS size at which the advisor switches from exact to ANN search
    #: (0 disables ANN entirely).
    threshold: int = 1024
    #: Independent hash tables; more tables = higher recall, more probes.
    num_tables: int = 8
    #: Hyperplanes (signature bits) per table; 0 = auto-size from the
    #: indexed corpus size at rebuild time.
    num_bits: int = 0
    #: Extra buckets probed per table, flipping the signature bits whose
    #: projection margin is smallest (the classic multi-probe heuristic).
    num_probes: int = 4
    #: Queries whose probed candidate pool is smaller than this fall back to
    #: the exact search — the recall safety net for sparse bucket regions.
    min_candidates: int = 16
    #: Queries whose probed candidate pool exceeds this also fall back to
    #: the exact scan: a pool that large means the hash sees no locality to
    #: exploit, and one dense query must not widen the whole batch's padded
    #: re-rank matrix (0 = never).
    max_candidates: int = 1024
    #: Per-bucket candidate cap shared with the E2LSH index (0 = no cap,
    #: the sign hash's historical behavior: oversized buckets flow into the
    #: pool and trip the ``max_candidates`` exact fallback instead).
    bucket_cap: int = 0
    #: PCA-whiten embeddings before hashing (re-ranking always uses the raw
    #: distances).  Graph-encoder embeddings concentrate most variance in
    #: very few directions — sum pooling makes "corpus size along the mean
    #: activation ray" dominant — and sign-of-projection hashes are blind
    #: along a dominant axis unless the cloud is equalized first.
    whiten: bool = True
    #: Pin the index family instead of letting the recall probe choose:
    #: "auto" (the probe), "sign" (:class:`ANNIndex`), "e2lsh"
    #: (:class:`E2LSHIndex`) or "exact" (:class:`ExactIndex`).  Useful for
    #: operational pinning and for exercising one specific serving path.
    family: str = "auto"
    #: Let :func:`select_neighbor_index` (the sign-hash recall probe) swap
    #: in the :class:`E2LSHIndex` when the corpus has no family/cluster
    #: structure for sign buckets to exploit.
    auto_e2lsh: bool = True
    #: Members replayed by the recall probe.  The sign hash is kept only
    #: when at most ``probe_fallback_threshold`` of them fall back to the
    #: exact scan, its recall@5 against the exact ground truth reaches
    #: ``probe_min_recall`` (healthy-looking buckets can still be blind to
    #: distance on cluster-free corpora — the recall check catches that),
    #: and the mean candidate pool stays under ``probe_max_pool_fraction``
    #: of the corpus (a hash that re-ranks a third of the RCS per query has
    #: degraded to a slightly-disguised exact scan).
    probe_sample: int = 64
    probe_fallback_threshold: float = 0.5
    probe_min_recall: float = 0.85
    probe_max_pool_fraction: float = 0.05
    #: When the sign hash degrades, corpora at least this large switch to
    #: the quantized-projection E2LSH index; smaller ones serve the plain
    #: exact scan (at those sizes the scan is cheaper than any hash walk).
    e2lsh_threshold: int = 4096
    #: Parameters of the quantized-projection index the probe may select.
    e2lsh: E2LSHConfig = field(default_factory=E2LSHConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        # Fail at configuration time, not from deep inside an online add
        # when the RCS first crosses the attachment threshold.
        if self.family not in ("auto", "sign", "e2lsh", "exact"):
            raise ValueError(
                f"unknown index family {self.family!r}; expected one of "
                "'auto', 'sign', 'e2lsh', 'exact'")


class _BucketedLSHIndex:
    """Shared substrate of the bucketed LSH serving indexes.

    Owns everything hash-family-agnostic: the [L, capacity] bucket-code
    growth buffer, precomputed member norms, the lazily re-sorted per-table
    bucket tables, the vectorized candidate-pair expansion, the padded
    exact re-rank in geometric pool-size bins, and the per-query exact
    fallback for degenerate (too sparse / too dense) pools.  Subclasses
    provide the hash family through two hooks:

    * :meth:`_fit` — derive projections/calibration from the corpus;
    * :meth:`_hash_codes` — [Q, L] int64 bucket codes;
    * :meth:`_probe_codes` — [Q, L, P] bucket codes to visit per query.

    ``last_fallback_fraction`` records, after every :meth:`search`, the
    fraction of queries served by the exact fallback — the observable the
    sign-hash recall probe (:func:`select_neighbor_index`) reads to detect
    a corpus the hash family cannot bucket usefully.
    """

    def __init__(self, config: ANNConfig | E2LSHConfig) -> None:
        self.config = config
        if config.num_tables < 1:
            raise ValueError("num_tables must be positive")
        self._fitted = False
        self._codes: np.ndarray | None = None         # [L, capacity] growth buffer
        self._norms: np.ndarray | None = None         # [capacity] ‖x‖² per member
        self._size = 0
        self._order: np.ndarray | None = None         # [L, N] members by code
        self._sorted_codes: np.ndarray | None = None  # [L, N]
        self._stale_sort = True
        self.last_fallback_fraction = 0.0
        self.last_pool_fraction = 0.0

    def __len__(self) -> int:
        return self._size

    # -- subclass hooks -------------------------------------------------
    def _fit(self, embeddings: np.ndarray) -> None:
        raise NotImplementedError

    def _hash_codes(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _probe_codes(self, queries: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def rebuild(self, embeddings: np.ndarray) -> None:
        embeddings = _as_float_matrix(embeddings)
        n = len(embeddings)
        self._fit(embeddings)
        self._fitted = True
        codes = self._hash_codes(embeddings)
        capacity = max(4, n)
        self._codes = np.zeros((self.config.num_tables, capacity),
                               dtype=np.int64)
        self._codes[:, :n] = codes.T
        self._norms = np.zeros(capacity, dtype=embeddings.dtype)
        self._norms[:n] = (embeddings * embeddings).sum(axis=1)
        self._size = n
        self._stale_sort = True

    def add(self, embedding: np.ndarray) -> None:
        embedding = _as_float_matrix(embedding).reshape(1, -1)
        if not self._fitted:
            self.rebuild(embedding)
            return
        codes = self._hash_codes(embedding)
        if self._size == self._codes.shape[1]:
            grown = np.zeros((self.config.num_tables, 2 * self._size),
                             dtype=np.int64)
            grown[:, :self._size] = self._codes[:, :self._size]
            self._codes = grown
            grown_norms = np.zeros(2 * self._size, dtype=self._norms.dtype)
            grown_norms[:self._size] = self._norms[:self._size]
            self._norms = grown_norms
        self._codes[:, self._size] = codes[0]
        self._norms[self._size] = float((embedding * embedding).sum())
        self._size += 1
        self._stale_sort = True

    # ------------------------------------------------------------------
    #: 64-bit multiplicative-hash constant (golden-ratio based).
    _HASH_GOLD = np.uint64(0x9E3779B97F4A7C15)

    def _refresh_sort(self) -> None:
        if not self._stale_sort:
            return
        codes = self._codes[:, :self._size]
        self._order = np.argsort(codes, axis=1, kind="stable")
        self._sorted_codes = np.take_along_axis(codes, self._order, axis=1)
        self._build_bucket_maps()
        self._stale_sort = False

    # -- open-addressing bucket maps ------------------------------------
    # Probing visits Q·L·(1+p) buckets per search; binary search over the
    # sorted codes costs ~100ns per lookup (the measured hot spot of the
    # whole ANN path), while a vectorized linear-probing hash table resolves
    # most lookups with one or two gathers.  Each table maps a bucket code
    # to its [lo, hi) run in the sorted order arrays.

    def _hash_slots(self, keys: np.ndarray) -> np.ndarray:
        mixed = keys.astype(np.uint64) * self._HASH_GOLD
        mixed ^= mixed >> np.uint64(29)
        return (mixed & np.uint64(self._map_mask)).astype(np.int64)

    def _build_bucket_maps(self) -> None:
        """One flat open-addressing arena over all tables' buckets.

        Slot ``table * S + h`` holds table-local bucket data; every table's
        inserts and lookups run in the same vectorized probe rounds, so the
        round overhead is paid once per search instead of once per table.
        Load factor ≤ ¼ keeps linear-probe chains short.
        """
        n = self._size
        num_tables = self.config.num_tables
        size = 1 << int(np.ceil(np.log2(max(8, 4 * n))))
        self._map_mask = size - 1
        self._map_used = np.zeros(num_tables * size, dtype=bool)
        self._map_key = np.zeros(num_tables * size, dtype=np.int64)
        self._map_lo = np.zeros(num_tables * size, dtype=np.int64)
        self._map_hi = np.zeros(num_tables * size, dtype=np.int64)
        if n == 0:
            return
        codes = self._sorted_codes
        boundary = np.empty((num_tables, n), dtype=bool)
        boundary[:, 0] = True
        np.not_equal(codes[:, 1:], codes[:, :-1], out=boundary[:, 1:])
        table_id, lo = np.nonzero(boundary)
        run_starts = np.flatnonzero(boundary.ravel())
        hi = np.append(run_starts[1:], num_tables * n) - table_id * n
        keys = codes[table_id, lo]
        base = table_id * size
        slots = base + self._hash_slots(keys)
        pending = np.arange(len(keys))
        while pending.size:
            attempt = slots[pending]
            free = ~self._map_used[attempt]
            # Among writers hitting one free slot this round, the first
            # wins; losers (and occupied-slot hits) probe the next slot.
            winner_slots, first = np.unique(attempt[free], return_index=True)
            winners = pending[free][first]
            self._map_used[winner_slots] = True
            self._map_key[winner_slots] = keys[winners]
            self._map_lo[winner_slots] = lo[winners]
            self._map_hi[winner_slots] = hi[winners]
            placed = np.zeros(len(keys), dtype=bool)
            placed[winners] = True
            pending = pending[~placed[pending]]
            slots[pending] = (base[pending]
                              + ((slots[pending] + 1) & self._map_mask))

    def _bucket_ranges(self, probe: np.ndarray) -> tuple[np.ndarray,
                                                         np.ndarray]:
        """[lo, hi) sorted-order ranges for every probed bucket.

        ``probe`` is the [Q, L, P] code tensor; the result arrays are
        [L, Q·P] (tables leading, matching the expansion loop's layout).
        """
        num_tables = self.config.num_tables
        wanted = probe.transpose(1, 0, 2).reshape(num_tables, -1)
        width = wanted.shape[1]
        wanted = wanted.ravel()
        size = self._map_mask + 1
        base = np.repeat(np.arange(num_tables) * size, width)
        lo = np.zeros(len(wanted), dtype=np.int64)
        hi = np.zeros(len(wanted), dtype=np.int64)
        slots = base + self._hash_slots(wanted)
        pending = np.arange(len(wanted))
        target = wanted
        while pending.size:
            occupied = self._map_used[slots]
            match = occupied & (self._map_key[slots] == target)
            hits = pending[match]
            lo[hits] = self._map_lo[slots[match]]
            hi[hits] = self._map_hi[slots[match]]
            # Empty slot = code absent (count stays 0); otherwise keep
            # probing past the collision.
            miss = occupied & ~match
            pending = pending[miss]
            target = target[miss]
            base = base[miss]
            slots = base + ((slots[miss] + 1) & self._map_mask)
        return lo.reshape(num_tables, width), hi.reshape(num_tables, width)

    def _candidate_pairs(self, probe: np.ndarray,
                         num_queries: int) -> tuple[np.ndarray, np.ndarray]:
        """Unique (query, member) pairs over all probed buckets.

        Buckets larger than ``config.bucket_cap`` (when positive) contribute
        nothing: a bucket that large carries no locality information for
        this table — typically a lattice cell of a mismatched-radius ladder
        rung — and expanding it would only flood the re-rank pool.
        """
        per_query = probe.shape[2]
        num_tables = self.config.num_tables
        bucket_cap = getattr(self.config, "bucket_cap", 0)
        all_lo, all_hi = self._bucket_ranges(probe)
        counts = (all_hi - all_lo).ravel()              # [L · Q · P]
        if bucket_cap > 0:
            counts = np.where(counts > bucket_cap, 0, counts)
        total = int(counts.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64),) * 2
        # One vectorized ragged expansion of every [lo, hi) bucket range
        # across all tables; the order arrays are addressed flat with each
        # table's row offset folded into its start positions.
        starts = (all_lo
                  + (np.arange(num_tables) * self._size)[:, None]).ravel()
        expanded_starts = np.repeat(starts, counts)
        bases = np.repeat(np.cumsum(counts) - counts, counts)
        member = self._order.ravel()[expanded_starts + np.arange(total)
                                     - bases]
        qid_base = np.tile(np.repeat(np.arange(num_queries), per_query),
                           num_tables)
        # Dedup across tables/probes on the packed (query, member) key; the
        # sorted keys come back grouped by query with members ascending —
        # the order the re-rank's lowest-index tie-breaking relies on.
        keys = np.sort(np.repeat(qid_base, counts) * np.int64(self._size)
                       + member)
        keep = np.empty(len(keys), dtype=bool)
        keep[0] = True
        np.not_equal(keys[1:], keys[:-1], out=keep[1:])
        return np.divmod(keys[keep], self._size)

    def _rerank(self, rows: np.ndarray, member: np.ndarray, pool: np.ndarray,
                offsets: np.ndarray, queries: np.ndarray,
                query_norms: np.ndarray, embeddings: np.ndarray,
                k: int,
                pool_codes: tuple[QuantizedStore,
                                  tuple[np.ndarray, np.ndarray],
                                  int] | None = None
                ) -> tuple[np.ndarray, np.ndarray]:
        """Exact re-rank of the candidate pools of the ``rows`` queries.

        The pools are padded to the subset's maximum width and the dot
        products run as one batched GEMM against the query vectors (the
        Gram identity again, with member norms precomputed at index time);
        inf padding never wins the top-k.  Within a row candidates are in
        ascending member order, so the lowest-index tie-break of
        ``top_k_neighbors`` matches the exhaustive search.

        ``pool_codes`` — a ``(store, query_context, keep)`` triple — routes
        wide pools through the quantized tier first: the padded pool is
        ranked in code space (int8 GEMM / PQ ADC gathers) and only the
        ``keep = k · overfetch`` best candidates reach the float-tier GEMM,
        so the padded float matrix is never wider than the overfetch pool
        regardless of how dense the probed buckets were.
        """
        counts = pool[rows]
        width = int(counts.max())
        flat = (np.repeat(offsets[rows], counts)
                + np.arange(int(counts.sum()))
                - np.repeat(np.cumsum(counts) - counts, counts))
        rowid = np.repeat(np.arange(len(rows)), counts)
        position = flat - np.repeat(offsets[rows], counts)
        members = np.zeros((len(rows), width), dtype=np.int64)
        members[rowid, position] = member[flat]
        if pool_codes is not None and width > pool_codes[2]:
            members, counts = self._narrow_pools(pool_codes, rows, members,
                                                 counts)
            width = members.shape[1]
        dots = (embeddings[members] @ queries[rows][:, :, None])[:, :, 0]
        padded = np.maximum(
            self._norms[members] + query_norms[rows][:, None] - 2.0 * dots,
            0.0)
        padded[np.arange(width) >= counts[:, None]] = np.inf
        local = top_k_neighbors(padded, k)
        return (np.take_along_axis(members, local, axis=1),
                np.sqrt(np.take_along_axis(padded, local, axis=1)))

    @staticmethod
    def _narrow_pools(pool_codes: tuple[QuantizedStore,
                                        tuple[np.ndarray, np.ndarray], int],
                      rows: np.ndarray, members: np.ndarray,
                      counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Code-space narrowing of wide padded re-rank pools.

        Ranks every pool candidate in the attached store's code space and
        keeps the ``keep`` best per row.  Pad slots are masked to inf
        before selection; in rows with fewer than ``keep`` real candidates
        some pads are unavoidably selected, so the surviving candidates are
        reordered valid-first (then ascending member index — the order the
        float re-rank's lowest-index tie-break relies on) and the narrowed
        per-row counts mask the tail exactly as the original pads were
        masked.  No candidate is duplicated or dropped below ``keep``.
        """
        store, context, keep = pool_codes
        width = members.shape[1]
        code = store.pool_distances(context, rows, members)
        code[np.arange(width) >= counts[:, None]] = np.inf
        selected = np.argpartition(code, keep - 1, axis=1)[:, :keep]
        valid = np.take_along_axis(code, selected, axis=1) != np.inf
        chosen = np.take_along_axis(members, selected, axis=1)
        order = np.lexsort((chosen, ~valid), axis=1)
        return (np.take_along_axis(chosen, order, axis=1),
                valid.sum(axis=1))

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int, *, store: CandidateStore | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        embeddings = np.atleast_2d(np.asarray(embeddings))
        queries = _as_float_matrix(queries)
        dtype = _common_dtype(queries, embeddings)
        queries = queries.astype(dtype, copy=False)
        n = len(embeddings)
        if n != self._size or not self._fitted:
            self.rebuild(embeddings)
        k = min(k, n)
        floor = min(max(k, self.config.min_candidates), n)
        if n <= floor:
            self.last_fallback_fraction = 1.0
            self.last_pool_fraction = 1.0
            return candidate_scan(queries, embeddings, k, store)
        self._refresh_sort()
        num_queries = len(queries)
        qid, member = self._candidate_pairs(self._probe_codes(queries),
                                            num_queries)
        pool = np.bincount(qid, minlength=num_queries)
        offsets = np.cumsum(pool) - pool
        fallback = pool < floor
        if self.config.max_candidates > 0:
            fallback |= pool > self.config.max_candidates
        self.last_fallback_fraction = float(fallback.mean())
        # How much of the corpus an average query still touches (fallback
        # queries touch all of it): the recall probe's "is this hash
        # actually pruning anything" signal.
        self.last_pool_fraction = float(
            np.where(fallback, n, pool).mean() / n)
        active = np.nonzero(~fallback)[0]
        if active.size == 0:
            return candidate_scan(queries, embeddings, k, store)

        # Quantized re-rank pools: when a size-synced store is attached,
        # wide pools rank their candidates in code space (one shared
        # query context per search) and only k·overfetch survivors reach
        # the padded float GEMM — the second half of the candidate tier.
        pool_codes = None
        if (store is not None and len(store) == n
                and n >= store.config.min_size):
            keep = k * max(store.config.overfetch, 1)
            if keep > 0 and int(pool[active].max()) > keep:
                pool_codes = (store, store.query_context(queries), keep)

        indices = np.empty((num_queries, k), dtype=np.int64)
        distances = np.empty((num_queries, k), dtype=dtype)
        query_norms = (queries * queries).sum(axis=1)
        # Re-rank in geometric pool-size bins: a handful of dense queries
        # must not widen the padded candidate matrix of the (typically much
        # smaller) median pool.  frexp's exponent is floor(log2) + 1.
        levels = np.frexp(pool[active].astype(np.float64))[1]
        for level in np.unique(levels):
            rows = active[levels == level]
            indices[rows], distances[rows] = self._rerank(
                rows, member, pool, offsets, queries, query_norms,
                embeddings, k, pool_codes)
        if fallback.any():
            indices[fallback], distances[fallback] = candidate_scan(
                queries[fallback], embeddings, k, store)
        return indices, distances


class ANNIndex(_BucketedLSHIndex):
    """Multi-probe random-hyperplane *sign* LSH with exact re-ranking.

    Each of ``num_tables`` tables hashes an embedding to a ``num_bits``-bit
    signature (the sign pattern of projections onto random hyperplanes,
    taken around the corpus centroid so anisotropic embedding clouds still
    spread over buckets).  A query gathers every member sharing a bucket in
    any table — plus ``num_probes`` neighboring buckets per table, flipping
    the lowest-margin signature bits — and re-ranks that candidate pool with
    exact distances against the live embedding matrix.  Queries with too few
    candidates fall back to the exhaustive scan, so results degrade toward
    exact rather than toward empty.

    :meth:`add` hashes only the appended row (bucket tables are re-sorted
    lazily on the next search); :meth:`rebuild` re-hashes the corpus, which
    is also how the index heals itself if it observes an embedding matrix
    whose length it does not recognize.
    """

    def __init__(self, config: ANNConfig | None = None) -> None:
        super().__init__(config or ANNConfig())
        self._projection: np.ndarray | None = None  # [d, L·b], whitening folded in
        self._center: np.ndarray | None = None      # [d]
        self._num_bits = 0

    # ------------------------------------------------------------------
    def _fit(self, embeddings: np.ndarray) -> None:
        n, dim = embeddings.shape
        config = self.config
        bits = config.num_bits
        if bits <= 0:
            # Generous signatures (2^b buckets >> n) keep buckets near
            # pure-locality collisions; recall then comes from the
            # multi-probe expansion rather than coarse buckets.
            bits = int(np.clip(np.ceil(np.log2(max(n, 2))) + 3, 8, 24))
        self._num_bits = bits
        rng = np.random.default_rng(config.seed)
        hyperplanes = rng.standard_normal((config.num_tables * bits, dim))
        center = (embeddings.mean(axis=0, dtype=np.float64) if n
                  else np.zeros(dim, dtype=np.float64))
        # The whitening transform composes with the hyperplanes into one
        # [d, L·b] projection, so equalizing the embedding cloud costs
        # nothing per query; hashing then runs on the corpus' precision
        # tier (the whitening solve itself stays float64 for stability).
        projection = hyperplanes.T
        if config.whiten and n > 1:
            centered = np.asarray(embeddings, dtype=np.float64) - center
            eigvals, eigvecs = np.linalg.eigh(centered.T @ centered / n)
            top = float(eigvals.max())
            if top > 0.0:
                scale = 1.0 / np.sqrt(np.maximum(eigvals, 1e-9 * top))
                projection = (eigvecs * scale) @ hyperplanes.T
        self._center = center.astype(embeddings.dtype, copy=False)
        self._projection = projection.astype(embeddings.dtype, copy=False)

    def _signatures(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """([Q, L] bucket codes, [Q, L, b] signed projection margins)."""
        proj = (x.astype(self._projection.dtype, copy=False)
                - self._center) @ self._projection
        proj = proj.reshape(len(x), self.config.num_tables, self._num_bits)
        codes = (proj > 0) @ (np.int64(1) << np.arange(self._num_bits))
        return codes, proj

    def _hash_codes(self, x: np.ndarray) -> np.ndarray:
        return self._signatures(x)[0]

    def _probe_codes(self, queries: np.ndarray) -> np.ndarray:
        """[Q, L, 1 + p] bucket codes to visit per query and table."""
        codes, proj = self._signatures(queries)
        probes = min(self.config.num_probes, self._num_bits)
        out = np.empty(codes.shape + (1 + probes,), dtype=np.int64)
        out[..., 0] = codes
        if probes:
            # Flip the bits closest to their hyperplane: the buckets a near
            # neighbor is most likely to have landed in instead.
            flips = np.argsort(np.abs(proj), axis=2)[:, :, :probes]
            out[..., 1:] = codes[:, :, None] ^ (np.int64(1) << flips)
        return out


class E2LSHIndex(_BucketedLSHIndex):
    """Multi-probe quantized-projection (E2LSH-style) LSH.

    Hash family of Datar et al.: ``h(x) = floor((x·w + b) / r)`` with
    Gaussian ``w`` and ``b ~ U[0, r)``.  Collision probability decays with
    the true distance *along every projection* — not just its sign — so the
    index keeps discriminating near neighbors on corpora with no cluster
    structure at all (uniform clouds, shells), exactly where sign buckets
    collapse into a few huge cells and degrade to the exact scan.

    Per table the ``num_projections`` lattice coordinates are mixed into one
    int64 bucket key with random odd multipliers; because the key is linear
    in the coordinates, the multi-probe walk (stepping the coordinate whose
    cell boundary is closest to the query, in the cheaper direction) is a
    constant-time key increment per probe.  Candidate expansion, re-ranking
    and the degenerate-pool exact fallback are shared with the sign hash
    through :class:`_BucketedLSHIndex`.
    """

    #: Pair probes are drawn from combinations of this many cheapest single
    #: steps (m choose 2 extra probe candidates per table).
    _PAIR_POOL = 6

    def __init__(self, config: E2LSHConfig | None = None) -> None:
        super().__init__(config or E2LSHConfig())
        self._projection: np.ndarray | None = None  # [d, L·b]
        self._offsets: np.ndarray | None = None     # [L·b]
        self._mix: np.ndarray | None = None         # [L, b] odd multipliers
        self._num_projections = 0
        self._radii: np.ndarray | None = None       # [L] ladder rungs

    # ------------------------------------------------------------------
    def _fit(self, embeddings: np.ndarray) -> None:
        n, dim = embeddings.shape
        config = self.config
        rng = np.random.default_rng(config.seed)
        projections = config.num_projections
        if projections <= 0:
            # More lattice coordinates sharpen buckets but cost recall per
            # table; ~0.6·log2(n) keeps expected home-bucket sizes within
            # the re-rank guard rails across the sizes the RCS serves.
            projections = int(np.clip(round(0.6 * np.log2(max(n, 2))), 2, 12))
        self._num_projections = projections
        total = config.num_tables * projections
        hyperplanes = rng.standard_normal((dim, total))
        self._radii = self._calibrate_radii(embeddings, rng).astype(
            embeddings.dtype)
        # Offsets are uniform within each table's own cell width.
        self._offsets = (rng.uniform(0.0, 1.0, size=(config.num_tables,
                                                     projections))
                         * self._radii[:, None]).reshape(total).astype(
                             embeddings.dtype)
        self._projection = hyperplanes.astype(embeddings.dtype, copy=False)
        # Odd multipliers mix lattice coordinates into one int64 key with
        # wraparound arithmetic; a cross-bucket key collision only adds a
        # few spurious candidates to the exact re-rank.
        self._mix = (rng.integers(1, np.iinfo(np.int64).max,
                                  size=(config.num_tables, projections),
                                  dtype=np.int64) | np.int64(1))

    def _calibrate_radii(self, embeddings: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
        """The [L] radius ladder from the sampled k-NN distance spread.

        The hash is only useful where one lattice cell is on the order of
        the distances the serving path must resolve.  Rung t quantizes at
        ``radius_scale`` times the t-th percentile of the sampled members'
        ``calibration_k``-NN distances, so corpora whose local neighbor
        scale varies (radially growing GIN clouds) are covered at every
        scale; a fixed ``config.radius`` pins every rung instead.
        """
        config = self.config
        num_tables = config.num_tables
        if config.radius > 0:
            return np.full(num_tables, float(config.radius),
                           dtype=np.float64)
        n = len(embeddings)
        sample = min(config.calibration_sample, n)
        if sample < 2:
            return np.ones(num_tables, dtype=np.float64)
        idx = rng.choice(n, size=sample, replace=False)
        k = min(config.calibration_k + 1, n)   # +1: the member finds itself
        _, dists = exact_search(embeddings[idx], embeddings, k)
        scales = dists[:, -1][dists[:, -1] > 0]
        if len(scales) == 0:
            # Degenerate corpus (duplicates everywhere): any radius maps it
            # to one bucket per table and the dense-pool fallback serves it
            # exactly.
            return np.ones(num_tables, dtype=np.float64)
        percentiles = 100.0 * (np.arange(num_tables) + 0.5) / num_tables
        rungs = config.radius_scale * np.percentile(
            np.asarray(scales, dtype=np.float64), percentiles)
        return np.maximum(rungs, 1e-12)

    def _lattice(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """([Q, L, b] lattice coordinates, [Q, L, b] in-cell fractions)."""
        scaled = (x.astype(self._projection.dtype, copy=False)
                  @ self._projection + self._offsets)
        scaled = scaled.reshape(len(x), self.config.num_tables,
                                self._num_projections)
        scaled = scaled / self._radii[None, :, None]
        coords = np.floor(scaled)
        return coords.astype(np.int64), scaled - coords

    def _hash_codes(self, x: np.ndarray) -> np.ndarray:
        coords, _ = self._lattice(x)
        return (coords * self._mix).sum(axis=2)

    def _probe_codes(self, queries: np.ndarray) -> np.ndarray:
        """[Q, L, 1 + p] bucket keys: home cell + nearest lattice walks.

        A near neighbor most likely sits one lattice step along the
        coordinate whose cell boundary the query is closest to: stepping
        down costs the in-cell fraction, stepping up its complement, and a
        two-coordinate walk costs the sum.  The key is linear in the
        coordinates, so every probe is a couple of ±multiplier increments.
        """
        coords, frac = self._lattice(queries)
        codes = (coords * self._mix).sum(axis=2)
        b = self._num_projections
        # Single steps: [Q, L, 2b] (down then up per coordinate).
        costs = np.concatenate([frac, 1.0 - frac], axis=2)
        deltas = np.broadcast_to(
            np.concatenate([-self._mix, self._mix], axis=1), costs.shape)
        pool = min(self._PAIR_POOL, 2 * b)
        if self.config.num_probes > 2 * b and pool >= 2:
            # Extend the walk with pairs of the cheapest single steps
            # (skipping the degenerate down+up of one coordinate).  Probe
            # *sets* are all that matters — buckets are visited, not ranked
            # — so argpartition replaces every argsort on this path.
            top = np.argpartition(costs, pool - 1, axis=2)[:, :, :pool]
            top_costs = np.take_along_axis(costs, top, axis=2)
            top_deltas = np.take_along_axis(deltas, top, axis=2)
            left, right = np.triu_indices(pool, 1)
            pair_costs = top_costs[:, :, left] + top_costs[:, :, right]
            same = (top % b)[:, :, left] == (top % b)[:, :, right]
            pair_costs = np.where(same, np.inf, pair_costs)
            costs = np.concatenate([costs, pair_costs], axis=2)
            deltas = np.concatenate(
                [deltas, top_deltas[:, :, left] + top_deltas[:, :, right]],
                axis=2)
        probes = min(self.config.num_probes, costs.shape[2])
        out = np.empty(codes.shape + (1 + probes,), dtype=np.int64)
        out[..., 0] = codes
        if probes:
            if probes < costs.shape[2]:
                walk = np.argpartition(costs, probes - 1,
                                       axis=2)[:, :, :probes]
            else:
                walk = np.broadcast_to(np.arange(probes), costs.shape[:2]
                                       + (probes,))
            out[..., 1:] = codes[:, :, None] + np.take_along_axis(
                deltas, walk, axis=2)
        return out
