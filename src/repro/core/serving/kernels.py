"""Precision-tier-aware serving kernels (Sec. V-D fast path).

The float substrate every serving tier stands on: dtype-preserving
matrix coercion, finiteness validation at the serving boundary, the
Gram-identity distance kernel ``‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b``,
argpartition top-k selection with lowest-index tie-breaking, and the
exhaustive :func:`exact_search` that combines them.  A float32 matrix
is searched in float32 end-to-end — no silent float64 promotion.
"""

from __future__ import annotations

import numpy as np

#: Floating dtypes preserved by the serving kernels (everything else is
#: promoted to the float64 default).
_FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _as_float_matrix(a: np.ndarray) -> np.ndarray:
    """2-D float view of ``a``, keeping a float32 tier, promoting the rest."""
    a = np.atleast_2d(np.asarray(a))
    if a.dtype not in _FLOAT_DTYPES:
        return a.astype(np.float64)
    return a


def require_finite_embeddings(embeddings: np.ndarray,
                              context: str = "embeddings") -> None:
    """Reject NaN/inf rows before they enter a candidate set.

    One non-finite row silently poisons everything calibrated from the
    corpus — quantizer scales collapse to NaN, LSH projections hash every
    member to the same bucket, distance ties become unordered — so entry
    points fail loudly instead, naming the offending rows.
    """
    matrix = np.atleast_2d(np.asarray(embeddings))
    finite = np.isfinite(matrix).all(axis=1)
    if not finite.all():
        bad = np.flatnonzero(~finite)
        shown = ", ".join(str(int(i)) for i in bad[:5])
        more = f" (+{len(bad) - 5} more)" if len(bad) > 5 else ""
        raise ValueError(
            f"{context} contain non-finite values in row(s) {shown}{more}; "
            "NaN/inf embeddings would poison quantizer calibration and "
            "LSH projections")


def _common_dtype(a: np.ndarray, b: np.ndarray) -> np.dtype:
    """The precision tier two operands meet at (float32 only when both are)."""
    da = a.dtype if a.dtype in _FLOAT_DTYPES else np.dtype(np.float64)
    db = b.dtype if b.dtype in _FLOAT_DTYPES else np.dtype(np.float64)
    return np.result_type(da, db)


def squared_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances [Q, N] via the Gram identity.

    ``‖a‖² + ‖b‖² − 2·a·b`` avoids materializing the O(Q·N·d) difference
    tensor; numerical noise is clipped at zero.  Runs on the operands'
    common precision tier (float32 in, float32 GEMM out).
    """
    dtype = _common_dtype(np.asarray(a), np.asarray(b))
    a = np.atleast_2d(np.asarray(a, dtype=dtype))
    b = np.atleast_2d(np.asarray(b, dtype=dtype))
    sq = ((a * a).sum(axis=1)[:, None] + (b * b).sum(axis=1)[None, :]
          - 2.0 * (a @ b.T))
    return np.maximum(sq, 0.0)


def top_k_neighbors(distances: np.ndarray, k: int) -> np.ndarray:
    """Top-k nearest indices per row of a [Q, N] distance matrix.

    ``argpartition`` selects the k candidates in O(N), then only those k are
    sorted.  Distance ties — including ties straddling the k boundary, where
    ``argpartition`` alone may pick an arbitrary tied member — are broken by
    lowest index, so the result matches a full ``argsort(kind="stable")[:k]``
    exactly.
    """
    distances = np.atleast_2d(distances)
    q, n = distances.shape
    k = min(k, n)
    if k >= n:
        part = np.broadcast_to(np.arange(n), (q, n))
        order = np.lexsort((part, distances), axis=1)
        return np.take_along_axis(np.ascontiguousarray(part), order, axis=1)
    part = np.argpartition(distances, k - 1, axis=1)[:, :k]
    # The k-th smallest value bounds the selection; keep everything strictly
    # closer and fill the remainder with the lowest-index boundary ties.
    boundary = np.take_along_axis(distances, part, axis=1).max(
        axis=1, keepdims=True)
    closer = distances < boundary
    need = k - closer.sum(axis=1)
    ties = distances == boundary
    tie_rank = np.cumsum(ties, axis=1)
    selected = closer | (ties & (tie_rank <= need[:, None]))
    idx = np.nonzero(selected)[1].reshape(q, k)
    order = np.lexsort((idx, np.take_along_axis(distances, idx, axis=1)),
                       axis=1)
    return np.take_along_axis(idx, order, axis=1)


def exact_search(queries: np.ndarray, embeddings: np.ndarray,
                 k: int) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustive k-NN: ([Q, k] indices, [Q, k] Euclidean distances)."""
    distances = np.sqrt(squared_distance_matrix(queries, embeddings))
    nearest = top_k_neighbors(distances, k)
    return nearest, np.take_along_axis(distances, nearest, axis=1)
