"""The RCS (Def. 5) and the KNN predictor (Eq. 13) — candidate-scan
routing over whichever index and quantizer tier the corpus selected.

:class:`RecommendationCandidateSet` owns the labeled embeddings, keeps
the chosen :class:`~repro.core.serving.indexes.NeighborIndex` and
quantized candidate store size-synced through ``add`` /
``replace_embeddings``, and :class:`KNNPredictor` averages the k
nearest labels' score vectors under the user's metric weights.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ...testbed.scores import ScoreLabel
from .indexes import ANNConfig, ANNIndex, ExactIndex, NeighborIndex
from .kernels import (_as_float_matrix, require_finite_embeddings,
                      squared_distance_matrix)
from .probe import select_neighbor_index
from .quantizers import (CandidateStore, QuantizationConfig,
                         candidate_scan, select_quantizer)

@dataclass
class Recommendation:
    """Outcome of one AutoCE recommendation."""

    model: str
    score_vector: np.ndarray
    model_names: tuple[str, ...]
    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray

    def ranking(self) -> list[tuple[str, float]]:
        order = np.argsort(-self.score_vector)
        return [(self.model_names[i], float(self.score_vector[i])) for i in order]


class RecommendationCandidateSet:
    """Def. 5: labeled embeddings (X, Y) searched by the KNN predictor.

    Embeddings live in an amortized capacity-doubling buffer, so the online
    adaptation path can :meth:`add` members in O(1) amortized instead of
    re-allocating the whole matrix per insert.  Score matrices (one per
    accuracy weight) are memoized for the batched KNN.

    Neighbor queries go through :meth:`search`.  Small candidate sets use
    the exact Gram-identity scan; when an :class:`ANNConfig` is supplied and
    the membership crosses ``ANNConfig.threshold``, an :class:`ANNIndex` is
    attached automatically and kept fresh on :meth:`add` (incremental) and
    :meth:`replace_embeddings` (full re-hash).
    """

    def __init__(self, embeddings: np.ndarray | None = None,
                 labels: list[ScoreLabel] | None = None,
                 ann: ANNConfig | None = None,
                 quantization: QuantizationConfig | None = None,
                 quantized_store: "CandidateStore | None" = None) -> None:
        # The buffer keeps the embeddings' precision tier: a float32 corpus
        # (the serving fast tier) is stored and searched in float32.
        embeddings = (np.zeros((0, 0), dtype=np.float64)
                      if embeddings is None
                      else _as_float_matrix(embeddings))
        self.labels: list[ScoreLabel] = list(labels or [])
        if len(embeddings) != len(self.labels):
            raise ValueError("embeddings and labels must align")
        self._buffer = np.array(embeddings, dtype=embeddings.dtype)
        self._size = len(embeddings)
        self._score_cache: dict[float, np.ndarray] = {}
        self.ann_config = ann
        self._index: NeighborIndex | None = None
        #: RCS size at the last recall-probe run (see :meth:`add`).
        self._index_size = 0
        self.quantization = quantization
        self._quantized: CandidateStore | None = None
        #: Value snapshot of the config the attached store was built under
        #: (the live ``quantization`` object may be mutated in place by
        #: :meth:`AutoCE.set_quantization`; the snapshot is what makes the
        #: no-op check a *value* comparison).
        self._quantized_config: QuantizationConfig | None = None
        self._sync_index()
        if (quantized_store is not None and quantization is not None
                and quantization.enabled
                and len(quantized_store) == self._size):
            # Warm attach (persistence restore path): adopt a prebuilt
            # store instead of retraining codebooks from the rows.
            self._quantized = quantized_store
            self._quantized_config = replace(quantization)
        else:
            self._sync_quantized()

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def embeddings(self) -> np.ndarray:
        """The live [N, d] embedding matrix (a view of the growth buffer)."""
        return self._buffer[:self._size]

    @property
    def index(self) -> NeighborIndex | None:
        """The attached neighbor index (None = inline exact search)."""
        return self._index

    @property
    def quantized(self) -> CandidateStore | None:
        """The attached quantized candidate tier — flat int8 or PQ,
        whichever :func:`select_quantizer` picked (None = float
        candidates)."""
        return self._quantized

    @property
    def model_names(self) -> tuple[str, ...]:
        if not self.labels:
            raise ValueError("empty RCS")
        return self.labels[0].model_names

    def _sync_index(self) -> None:
        """Attach a neighbor index once membership crosses the threshold.

        The index family is chosen by the sign-hash recall probe
        (:func:`select_neighbor_index`): sign-hash LSH when the corpus has
        cluster structure, the quantized-projection E2LSH otherwise.
        """
        config = self.ann_config
        if (self._index is None and config is not None and config.threshold > 0
                and self._size >= config.threshold):
            self._index = select_neighbor_index(self.embeddings, config)
            self._index_size = self._size

    def _sync_quantized(self) -> None:
        """Attach a quantized candidate tier once membership reaches its
        floor; :func:`select_quantizer` picks the code layout (flat int8
        up to the exactness bound, PQ for wider embeddings)."""
        config = self.quantization
        if (self._quantized is None and config is not None and config.enabled
                and self._size >= config.min_size):
            self._quantized = select_quantizer(self.embeddings, config)
            self._quantized_config = replace(config)

    def set_quantization(self, config: QuantizationConfig | None) -> bool:
        """Switch the quantized candidate tier on or off for a live RCS.

        Returns whether anything changed.  Re-enabling with a config whose
        *values* match the one the attached store was built under (and a
        store still covering the live corpus) is a no-op — no codebook
        retraining, no k-means.  Any value change re-selects the layout: a
        config whose ``mode`` changed (or whose "auto" resolves
        differently) swaps the store class, and construction recalibrates
        from the live corpus either way.
        """
        self.quantization = config
        if config is None or not config.enabled:
            changed = self._quantized is not None
            self._quantized = None
            self._quantized_config = None
            return changed
        if (self._quantized is not None
                and self._quantized_config == config
                and len(self._quantized) == self._size):
            return False
        self._quantized = None
        self._quantized_config = None
        self._sync_quantized()
        return True

    def add(self, embedding: np.ndarray, label: ScoreLabel) -> None:
        embedding = _as_float_matrix(embedding).ravel()
        require_finite_embeddings(embedding, "RCS embedding")
        dim = embedding.shape[0]
        if self._size == 0:
            if self._buffer.shape[1] != dim or len(self._buffer) == 0:
                self._buffer = np.zeros((max(4, len(self._buffer)), dim),
                                        dtype=embedding.dtype)
        elif self._buffer.shape[1] != dim:
            raise ValueError(
                f"embedding dimension {dim} != RCS dimension "
                f"{self._buffer.shape[1]}")
        if self._size == len(self._buffer):
            grown = np.zeros((max(4, 2 * len(self._buffer)), dim),
                             dtype=self._buffer.dtype)
            grown[:self._size] = self._buffer[:self._size]
            self._buffer = grown
        self._buffer[self._size] = embedding
        self._size += 1
        self.labels.append(label)
        self._score_cache.clear()
        if self._index is not None:
            self._index.add(embedding)
            # Re-run the recall probe once the corpus has doubled since the
            # index family was chosen (structural drift — clusters forming
            # or dissolving — can change the right family; doubling keeps
            # the re-probe cost amortized O(1) per add), and immediately
            # when an ExactIndex chosen for a scan-sized degraded corpus
            # crosses the E2LSH size floor.
            grown = self._size >= 2 * max(self._index_size, 1)
            graduates = (isinstance(self._index, ExactIndex)
                         and self._index_size < self.ann_config.e2lsh_threshold
                         <= self._size)
            if grown or graduates:
                self._index = select_neighbor_index(self.embeddings,
                                                    self.ann_config)
                self._index_size = self._size
        else:
            self._sync_index()
        if self._quantized is not None:
            # Requantization hook: the store quantizes the appended row
            # under its frozen calibration and reports drift (clipping /
            # gross outliers), at which point the scale and zero-points are
            # recalibrated from the live corpus.
            if self._quantized.add(embedding):
                self._quantized.recalibrate(self.embeddings)
        else:
            self._sync_quantized()

    def replace_embeddings(self, embeddings: np.ndarray) -> None:
        """Refresh stored embeddings after the encoder is retrained.

        Retraining (or a precision-tier switch) can change the corpus
        geometry, so the recall probe re-selects the index family rather
        than blindly re-hashing the previous choice.
        """
        embeddings = _as_float_matrix(embeddings)
        require_finite_embeddings(embeddings, "RCS embeddings")
        if len(embeddings) != len(self.labels):
            raise ValueError("embedding count must match labels")
        self._buffer = np.array(embeddings, dtype=embeddings.dtype)
        self._size = len(embeddings)
        self._score_cache.clear()
        if self._index is not None:
            self._index = select_neighbor_index(self.embeddings,
                                                self.ann_config)
            self._index_size = self._size
        else:
            self._sync_index()
        if self._quantized is not None:
            # Retrained embeddings land on new geometry; the old calibration
            # is meaningless, so requantize the whole corpus.
            self._quantized.recalibrate(self.embeddings)
        else:
            self._sync_quantized()

    def search(self, queries: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """k nearest members per query: ([Q, k] indices, [Q, k] distances)."""
        queries = _as_float_matrix(queries)
        k = min(k, self._size)
        if self._index is None:
            return candidate_scan(queries, self.embeddings, k,
                                  self._quantized)
        return self._index.search(queries, self.embeddings, k,
                                  store=self._quantized)

    def score_matrix(self, accuracy_weight: float) -> np.ndarray:
        """Memoized [N, m] matrix of member score vectors at one weight."""
        key = float(accuracy_weight)
        cached = self._score_cache.get(key)
        if cached is None or len(cached) != len(self.labels):
            cached = np.stack(
                [label.score_vector(key) for label in self.labels])
            self._score_cache[key] = cached
        return cached

    def nearest_neighbor_distances(self) -> np.ndarray:
        """Distance of each member to its nearest other member."""
        if len(self) < 2:
            return np.zeros(len(self), dtype=self._buffer.dtype)
        sq = squared_distance_matrix(self.embeddings, self.embeddings)
        np.fill_diagonal(sq, np.inf)
        return np.sqrt(sq.min(axis=1))


class KNNPredictor:
    """Eq. 13: average the k nearest labels and pick the top ranker.

    The paper finds k = 2 optimal (Table IV); that is the default.  Neighbor
    search is delegated to :meth:`RecommendationCandidateSet.search`, so the
    predictor transparently uses whichever :class:`NeighborIndex` the RCS
    has selected (exact below the ANN threshold, LSH above it).
    """

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def recommend(self, embedding: np.ndarray, rcs: RecommendationCandidateSet,
                  accuracy_weight: float, k: int | None = None) -> Recommendation:
        return self.recommend_batch(
            _as_float_matrix(embedding), rcs, accuracy_weight, k=k)[0]

    def recommend_batch(self, embeddings: np.ndarray,
                        rcs: RecommendationCandidateSet,
                        accuracy_weight: float,
                        k: int | None = None) -> list[Recommendation]:
        """Vectorized Eq. 13 for Q queries at once.

        One [Q, N] Gram-identity distance matrix (or one ANN probe pass),
        one ``argpartition`` per row, and one gather over the memoized score
        matrix replace Q independent full-sort searches.
        """
        if len(rcs) == 0:
            raise ValueError("cannot recommend from an empty RCS")
        embeddings = _as_float_matrix(embeddings)
        k = k if k is not None else self.k
        k = min(k, len(rcs))
        nearest, neighbor_distances = rcs.search(embeddings, k)   # [Q, k]
        scores = rcs.score_matrix(accuracy_weight)[nearest].mean(axis=1)
        best = np.argmax(scores, axis=1)
        names = rcs.model_names
        return [
            Recommendation(
                model=names[int(best[i])],
                score_vector=scores[i],
                model_names=names,
                neighbor_indices=nearest[i],
                neighbor_distances=neighbor_distances[i],
            )
            for i in range(len(embeddings))
        ]
