"""The sign-hash recall probe: pick the serving index a corpus supports.

:func:`select_neighbor_index` builds the cheap sign-hash index first,
replays a sample of the corpus against the exact scan, and keeps the
index only when its recall and fallback fraction clear the configured
floors — otherwise it tries the E2LSH ladder and finally falls back to
:class:`~repro.core.serving.indexes.ExactIndex`.
"""

from __future__ import annotations

import numpy as np

from .indexes import (ANNConfig, ANNIndex, E2LSHIndex, ExactIndex,
                      NeighborIndex)
from .kernels import exact_search

def select_neighbor_index(embeddings: np.ndarray,
                          config: ANNConfig) -> NeighborIndex:
    """The sign-hash recall probe: pick the serving index a corpus supports.

    Builds the sign-hash :class:`ANNIndex` and replays a sample of the
    corpus' own members through it, scoring two health signals against the
    exact ground truth on the same sample: the fraction of queries that
    fell back to the exact scan (degenerate pools), and recall@5 (sign
    buckets can be perfectly sized yet carry no distance information on a
    cluster-free corpus).  A corpus with family/cluster structure passes
    both checks and keeps the sign hash; a degraded corpus switches to the
    quantized-projection :class:`E2LSHIndex` when it is large enough for
    any hash walk to beat the scan, and to the plain :class:`ExactIndex`
    below that size.  ``config.family`` pins one family and skips the probe.
    """
    if config.family != "auto":
        if config.family == "exact":
            return ExactIndex()
        pinned: NeighborIndex = (E2LSHIndex(config.e2lsh)
                                 if config.family == "e2lsh"
                                 else ANNIndex(config))
        pinned.rebuild(embeddings)
        return pinned
    index = ANNIndex(config)
    index.rebuild(embeddings)
    if not config.auto_e2lsh:
        return index
    n = len(embeddings)
    sample = min(config.probe_sample, n)
    if sample == 0:
        return index
    rng = np.random.default_rng(config.seed)
    probe = rng.choice(n, size=sample, replace=False)
    queries = np.asarray(embeddings)[probe]
    k = min(5, n)
    approx, _ = index.search(queries, embeddings, k)
    fallback = index.last_fallback_fraction
    pool_fraction = index.last_pool_fraction
    exact, _ = exact_search(queries, embeddings, k)
    recall = float(np.mean([len(set(a) & set(e)) / k
                            for a, e in zip(approx, exact)]))
    if (fallback <= config.probe_fallback_threshold
            and recall >= config.probe_min_recall
            and pool_fraction <= config.probe_max_pool_fraction):
        return index
    if n >= config.e2lsh_threshold:
        e2lsh = E2LSHIndex(config.e2lsh)
        e2lsh.rebuild(embeddings)
        return e2lsh
    return ExactIndex()
