"""The serving package: kernels, quantizer tiers, LSH indexes, the recall
probe, and the RCS + KNN predictor (the former ``core/predictor.py``
monolith, split along its tier boundaries).

Layering (no cycles; each module imports only from those above it):

``kernels``
    Precision-tier-aware float substrate: Gram-identity distances,
    top-k selection, finiteness validation, :func:`exact_search`.
``quantizers``
    The int8 / PQ candidate tiers, ``seeded_kmeans``,
    :func:`select_quantizer` and :func:`candidate_scan` routing.
``indexes``
    The :class:`NeighborIndex` protocol, :class:`ExactIndex`, and the
    bucketed LSH families (:class:`ANNIndex`, :class:`E2LSHIndex`).
``probe``
    :func:`select_neighbor_index`, the sign-hash recall probe.
``store``
    :class:`RecommendationCandidateSet` and :class:`KNNPredictor`.

``repro.core.predictor`` remains as a thin re-exporting shim for old
imports and pickled advisors; new code should import from here.
"""

from .kernels import (_FLOAT_DTYPES, _as_float_matrix, _common_dtype,
                      exact_search, require_finite_embeddings,
                      squared_distance_matrix, top_k_neighbors)
from .quantizers import (INT8_EXACT_MAX_DIM, CandidateStore, PQStore,
                         QuantizationConfig, QuantizedStore, candidate_scan,
                         quantized_distances_int32_reference,
                         rerank_candidates, seeded_kmeans, select_quantizer)
from .indexes import (ANNConfig, ANNIndex, E2LSHConfig, E2LSHIndex,
                      ExactIndex, NeighborIndex, _BucketedLSHIndex)
from .probe import select_neighbor_index
from .store import (KNNPredictor, Recommendation,
                    RecommendationCandidateSet)

__all__ = [
    "_FLOAT_DTYPES", "_as_float_matrix", "_common_dtype", "exact_search",
    "require_finite_embeddings", "squared_distance_matrix",
    "top_k_neighbors",
    "INT8_EXACT_MAX_DIM", "CandidateStore", "PQStore",
    "QuantizationConfig", "QuantizedStore", "candidate_scan",
    "quantized_distances_int32_reference", "rerank_candidates",
    "seeded_kmeans", "select_quantizer",
    "ANNConfig", "ANNIndex", "E2LSHConfig", "E2LSHIndex", "ExactIndex",
    "NeighborIndex", "_BucketedLSHIndex",
    "select_neighbor_index",
    "KNNPredictor", "Recommendation", "RecommendationCandidateSet",
]
