"""Quantized candidate tiers: flat int8 codes and product quantization.

Rankings survive quantization because the DML metric space only needs
neighbor *order*, not distances: scans rank the corpus in code space
and only the top ``k · overfetch`` candidates reach the float-tier
re-rank (:func:`rerank_candidates`), so returned distances stay
float-exact.  :class:`QuantizedStore` keeps flat int8 codes (exact
integer arithmetic up to ``INT8_EXACT_MAX_DIM`` dims); :class:`PQStore`
product-quantizes wider embeddings into per-subspace codebooks scanned
with ADC lookup tables; :func:`select_quantizer` picks between them on
the width rule and optionally wraps the chosen store in an IVF coarse
partition (:class:`~repro.core.ivf.IVFStore`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .kernels import (_as_float_matrix, _common_dtype, exact_search,
                      squared_distance_matrix, top_k_neighbors)

# ----------------------------------------------------------------------
# Quantized candidate tiers (int8 flat codes and product quantization)
# ----------------------------------------------------------------------
#: Widest embedding whose assembled int8 code distance (4 · d · 127²) still
#: fits float32's 24-bit mantissa — the exactness bound of the flat int8
#: kernel, and the dimension past which :func:`select_quantizer` switches
#: the "auto" mode to product quantization.
INT8_EXACT_MAX_DIM = 260


@dataclass
class QuantizationConfig:
    """Parameters of the quantized candidate tiers.

    Serving only needs neighbor *rankings* to survive — the DML metric space
    (Eq. 9) is trained so that rank order, not absolute distance, carries the
    recommendation signal — which is exactly what a low-precision candidate
    pass exploits: scan the whole corpus in compressed codes, keep the top
    ``k · overfetch`` candidates, and re-rank only those in the float tier.

    Two code layouts share this config.  The flat int8 tier
    (:class:`QuantizedStore`) keeps one code per dimension and is exact
    integer arithmetic up to ``d = 260``; the product-quantization tier
    (:class:`PQStore`) splits the dimensions into subspaces with a learned
    codebook each, compressing wide embeddings to one byte per subspace.
    :func:`select_quantizer` picks between them (``mode="auto"``) on the
    int8 exactness bound.
    """

    #: Attach a quantized candidate tier to the RCS.
    enabled: bool = False
    #: Code layout: "auto" picks flat int8 for embeddings up to
    #: ``INT8_EXACT_MAX_DIM`` dims and product quantization past that;
    #: "int8" / "pq" pin one layout.
    mode: str = "auto"
    #: PQ: contiguous dimension subspaces (0 = auto-size ~d/128, clipped
    #: to [4, 16]); each subspace is encoded to one uint8 codebook id.
    #: More subspaces = finer codes but a linearly slower ADC scan.
    num_subspaces: int = 0
    #: PQ: centroids per subspace codebook (≤ 256 so codes stay uint8).
    codebook_size: int = 256
    #: PQ: Lloyd-iteration cap of the seeded k-means codebook training.
    kmeans_iters: int = 12
    #: PQ: codebooks train on at most this many (deterministically sampled)
    #: corpus rows; encoding always covers the full corpus.
    kmeans_sample: int = 4096
    #: PQ: opt-in residual refinement — a second codebook pass over the
    #: quantization residuals roughly halves the reconstruction error at
    #: the cost of a second code byte per subspace and a second ADC lookup
    #: per scan.  For recall-critical corpora whose neighbor gaps sit near
    #: the single-pass quantization error.
    residual: bool = False
    #: PQ: RNG seed of the k-means++ init and the training-row sample.
    seed: int = 0
    #: Candidate pool per query = ``k · overfetch``; the float-tier re-rank
    #: only sees this many members, so recall failures require the true
    #: neighbor to be pushed past ``k · (overfetch − 1)`` impostors by
    #: quantization error alone.
    overfetch: int = 8
    #: Corpora smaller than this serve the plain float scan (at those sizes
    #: the candidate pass saves nothing worth the second top-k).
    min_size: int = 64
    #: Recalibrate the scale/zero-points when more than this fraction of the
    #: rows added since the last calibration clipped at the int8 range — the
    #: drift signal that the corpus has outgrown its calibrated envelope.
    drift_clip_fraction: float = 0.02
    #: A single row overshooting the calibrated range by this factor
    #: triggers recalibration immediately (a gross outlier would otherwise
    #: fold onto the range boundary and alias with every other boundary row).
    drift_outlier_factor: float = 2.0
    #: Wrap the selected store in an IVF coarse partition
    #: (:class:`~repro.core.ivf.IVFStore`): a seeded-k-means coarse
    #: quantizer over the corpus, per-cell contiguous code blocks, and a
    #: probed scan touching only the ``nprobe`` nearest cells —
    #: O(N/cells · nprobe) candidate cost instead of O(N).
    ivf: bool = False
    #: IVF: number of coarse cells (0 = auto, ≈ √N clipped).
    ivf_cells: int = 0
    #: IVF: cells probed per query.  ``nprobe ≥ cells`` degrades —
    #: bit-for-bit — to the unpartitioned store scan.
    nprobe: int = 8
    #: IVF: corpora below this many members skip the probed path entirely
    #: (the coarse GEMM + per-cell bookkeeping only pays for itself once
    #: the full code scan is large); the unpartitioned store serves.
    ivf_min_size: int = 1024

    def __post_init__(self) -> None:
        # Fail at configuration time, not from deep inside the RCS attach.
        if self.mode not in ("auto", "int8", "pq"):
            raise ValueError(
                f"unknown quantization mode {self.mode!r}; expected one of "
                "'auto', 'int8', 'pq'")
        if not 1 <= self.codebook_size <= 256:
            raise ValueError("codebook_size must be in [1, 256] "
                             "(PQ codes are uint8)")
        if self.ivf_cells < 0:
            raise ValueError("ivf_cells must be >= 0 (0 = auto)")
        if self.nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if self.ivf_min_size < 0:
            raise ValueError("ivf_min_size must be >= 0")


def quantized_distances_int32_reference(query_codes: np.ndarray,
                                        member_codes: np.ndarray) -> np.ndarray:
    """[Q, N] code-space squared distances with literal int32 accumulation.

    The ground truth of the quantized kernel: Gram identity over int8 codes
    with every product and partial sum carried in int32 (int8·int8 ≤ 127²
    and a sum over ``d`` dimensions stays far below 2³¹ for any embedding
    width the encoder produces).  The production path
    (:meth:`QuantizedStore.code_distances`) computes the *same integers*
    through a float32 BLAS GEMM; their exact agreement is a property test.
    """
    q = np.atleast_2d(query_codes).astype(np.int32)
    m = np.atleast_2d(member_codes).astype(np.int32)
    cross = q @ m.T
    qn = (q * q).sum(axis=1, dtype=np.int32)
    mn = (m * m).sum(axis=1, dtype=np.int32)
    return qn[:, None] + mn[None, :] - 2 * cross


def rerank_candidates(queries: np.ndarray, embeddings: np.ndarray,
                      candidates: np.ndarray, k: int,
                      member_norms: np.ndarray | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Float-tier exact re-rank of per-query candidate lists.

    ``candidates`` is [Q, P] member indices, ascending within each row (the
    order the lowest-index tie-break of :func:`top_k_neighbors` relies on).
    Shared by every quantized candidate pass — flat int8 and PQ alike — so
    returned distances are always float-tier exact regardless of the code
    layout that selected the pool.  ``member_norms`` optionally supplies
    the [N] float-tier ``‖x‖²`` vector (it must have been computed from the
    same embedding matrix, same dtype — the stores memoize it under their
    recalibrate/add staleness contract).
    """
    dtype = _common_dtype(queries, embeddings)
    queries = queries.astype(dtype, copy=False)
    gathered = embeddings[candidates].astype(dtype, copy=False)
    dots = (gathered @ queries[:, :, None])[:, :, 0]
    if member_norms is not None and member_norms.dtype == dtype:
        # The caller's precomputed ‖x‖² (bit-identical to the reductions
        # below when the serving tier matches): skip the norm pass.
        member_norms = member_norms[candidates]
    elif candidates.size >= len(embeddings):
        # One corpus-wide norm pass + a [Q, P] gather: bit-identical to the
        # per-candidate reduction (same per-row multiply-sum order) but
        # O(N·d) instead of O(Q·P·d) — the common case for batched serving,
        # where the candidate pools jointly cover the corpus many times.
        cast = np.asarray(embeddings, dtype=dtype)
        member_norms = (cast * cast).sum(axis=1)[candidates]
    else:
        member_norms = (gathered * gathered).sum(axis=2)
    query_norms = (queries * queries).sum(axis=1)
    sq = np.maximum(member_norms + query_norms[:, None] - 2.0 * dots, 0.0)
    # Rank the sqrt'd values, exactly as exact_search does: in float32 a
    # near-tie distinct in squared space can collapse to one value under
    # sqrt, and the lowest-index tie-break must see what exact_search
    # sees or the two paths return different k-sets at the boundary.
    distances = np.sqrt(sq)
    local = top_k_neighbors(distances, k)
    return (np.take_along_axis(candidates, local, axis=1),
            np.take_along_axis(distances, local, axis=1))


class QuantizedStore:
    """Symmetric int8 codes of the RCS embeddings + the candidate kernel.

    Layout: per-dimension zero-points (the midrange of each dimension over
    the calibration corpus) with one shared symmetric scale.  The shared
    scale is deliberate — it is the only int8 layout whose code-space
    distances are *exactly proportional* to dequantized Euclidean distances
    (``‖x̂_a − x̂_b‖² = scale² · Σ(c_a − c_b)²``; the zero-points cancel),
    so candidate rankings in pure integer arithmetic are the dequantized
    float rankings.  Per-dimension scales would shrink the per-dimension
    rounding error but warp the metric into a range-whitened space, which is
    precisely what the DML embedding geometry must not be searched in.

    The distance kernel is int32-accumulated: every ``(c_a − c_b)²`` term is
    an integer and the full Gram-identity result ``‖c_a‖² + ‖c_b‖² −
    2·c_a·c_b`` is bounded by ``4 · d · 127² < 2²⁴`` for any ``d ≤ 260``, so
    a float32 GEMM over the codes performs the exact integer accumulation
    (every intermediate — cross term, norms and the assembled distance —
    fits the 24-bit mantissa) at BLAS speed — numpy has no fast int8 GEMM.
    Wider embeddings fall back to a float64 GEMM (exact below 2⁵³).  On top of the
    scan, :meth:`search` keeps the ``k · overfetch`` best candidates per
    query and re-ranks them against the live float-tier embedding matrix, so
    returned distances are always float-tier exact.

    :meth:`add` quantizes appended rows under the frozen calibration and
    reports drift (clipped rows / gross outliers); the owner — the RCS —
    responds by calling :meth:`recalibrate` with the live embedding matrix.
    """

    #: Code layout tag (the serving CLI and tier reports read this).
    kind = "int8"

    def __init__(self, embeddings: np.ndarray,
                 config: QuantizationConfig | None = None) -> None:
        self.config = config or QuantizationConfig()
        self.scale = 1.0
        self.zero_point: np.ndarray | None = None   # [d] float64
        self._codes: np.ndarray | None = None       # [capacity, d] int8
        self._codes_float: np.ndarray | None = None  # [N, d] GEMM-tier memo
        self._norms: np.ndarray | None = None       # [capacity] ‖c‖² (float)
        self._size = 0
        self._gemm_dtype = np.dtype(np.float32)
        self._added_since_calibration = 0
        self._clipped_since_calibration = 0
        self.recalibrate(embeddings)

    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The live [N, d] int8 code matrix."""
        return self._codes[:self._size]

    # -- calibration ----------------------------------------------------
    def recalibrate(self, embeddings: np.ndarray) -> None:
        """(Re)derive scale/zero-points from the corpus and requantize it."""
        embeddings = _as_float_matrix(embeddings)
        n, dim = embeddings.shape
        if n:
            lo = embeddings.min(axis=0).astype(np.float64)
            hi = embeddings.max(axis=0).astype(np.float64)
        else:
            lo = hi = np.zeros(dim, dtype=np.float64)
        self.zero_point = (lo + hi) / 2.0
        # Symmetric shared scale over the widest dimension; the floor keeps
        # a constant (or single-member, or empty) corpus at all-zero codes
        # instead of dividing by zero.
        self.scale = max(float(np.max(hi - self.zero_point, initial=0.0)),
                         1e-12) / 127.0
        # The assembled distance ‖c_a‖² + ‖c_b‖² − 2·c_a·c_b reaches
        # 4 · d · 127² and must fit the GEMM mantissa for the integer
        # arithmetic to be exact: 24 bits buy d ≤ 260 in float32, float64
        # covers the rest.
        self._gemm_dtype = np.dtype(
            np.float32 if 4 * dim * 127 * 127 < 2 ** 24 else np.float64)
        capacity = max(4, n)
        self._codes = np.zeros((capacity, dim), dtype=np.int8)
        self._codes[:n] = self.quantize(embeddings)
        self._codes_float = None
        self._norms = np.zeros(capacity, dtype=self._gemm_dtype)
        codes = self._codes[:n].astype(self._gemm_dtype)
        self._norms[:n] = (codes * codes).sum(axis=1)
        self._size = n
        self._added_since_calibration = 0
        self._clipped_since_calibration = 0

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Int8 codes of ``x`` under the current calibration (clipping)."""
        raw = (np.asarray(_as_float_matrix(x), dtype=np.float64)
               - self.zero_point) / self.scale
        return np.clip(np.rint(raw), -127, 127).astype(np.int8)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Float64 reconstruction ``zero_point + scale · codes``."""
        return self.zero_point + self.scale * np.asarray(codes, np.float64)

    # -- growth ----------------------------------------------------------
    def add(self, embedding: np.ndarray) -> bool:
        """Quantize one appended row; True = drift, caller must recalibrate.

        Drift is either a gross outlier (the row overshoots the calibrated
        range by ``drift_outlier_factor``) or an accumulated clip fraction
        above ``drift_clip_fraction`` — both mean the frozen scale no longer
        covers the corpus and code distances are degrading.
        """
        row = np.asarray(_as_float_matrix(embedding), np.float64).ravel()
        raw = (row - self.zero_point) / self.scale
        overshoot = float(np.max(np.abs(raw), initial=0.0))
        self._added_since_calibration += 1
        if overshoot > 127.5:
            self._clipped_since_calibration += 1
        if self._size == len(self._codes):
            grown = np.zeros((2 * self._size, self._codes.shape[1]),
                             dtype=np.int8)
            grown[:self._size] = self._codes[:self._size]
            self._codes = grown
            grown_norms = np.zeros(2 * self._size, dtype=self._norms.dtype)
            grown_norms[:self._size] = self._norms[:self._size]
            self._norms = grown_norms
        codes = np.clip(np.rint(raw), -127, 127).astype(np.int8)
        self._codes[self._size] = codes
        self._codes_float = None
        c = codes.astype(self._gemm_dtype)
        self._norms[self._size] = (c * c).sum()
        self._size += 1
        if overshoot > 127.5 * self.config.drift_outlier_factor:
            return True
        return (self._clipped_since_calibration
                > self.config.drift_clip_fraction
                * max(self._added_since_calibration, 1))

    # -- the int32-accumulated candidate kernel --------------------------
    def code_distances(self, queries: np.ndarray) -> np.ndarray:
        """[Q, N] code-space squared distances of float-tier queries.

        Exact integer arithmetic end-to-end (see the class docstring for why
        the float32 GEMM qualifies); multiplied by ``scale²`` this is the
        dequantized squared Euclidean distance, but candidate selection only
        ranks, so the factor is never applied.

        The GEMM-tier view of the member codes is memoized between searches
        (dropped by :meth:`add` / :meth:`recalibrate`): a single-query
        serving path must not pay an O(N·d) cast per call.  The memo trades
        the steady-state footprint back up to one float copy of the codes —
        resident-set-critical deployments can drop it after each search.
        """
        qcodes, query_norms = self.query_context(queries)
        members = self._codes_gemm()
        cross = qcodes @ members.T
        return self._norms[:self._size][None, :] - 2.0 * cross \
            + query_norms[:, None]

    def _codes_gemm(self) -> np.ndarray:
        """The memoized GEMM-tier view of the live member codes."""
        if (self._codes_float is None
                or len(self._codes_float) != self._size):
            self._codes_float = self._codes[:self._size].astype(
                self._gemm_dtype)
        return self._codes_float

    # -- the LSH-pool hooks ----------------------------------------------
    def query_context(self, queries: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Per-batch query state shared by every pool/scan distance call."""
        qcodes = self.quantize(queries).astype(self._gemm_dtype)
        return qcodes, (qcodes * qcodes).sum(axis=1)

    def pool_distances(self, context: tuple[np.ndarray, np.ndarray],
                       rows: np.ndarray,
                       members: np.ndarray) -> np.ndarray:
        """[R, W] code-space distances of padded candidate pools.

        ``members[i, j]`` is a member index in query ``rows[i]``'s pool (pad
        slots included — the caller masks them afterwards).  Same exact
        integer arithmetic as :meth:`code_distances`, run as one batched
        GEMM over the gathered code rows, so the bucketed-LSH re-rank pools
        select their float-tier candidates from int8 codes instead of
        paying the full-width float GEMM.
        """
        qcodes, query_norms = context
        gathered = self._codes_gemm()[members]          # [R, W, d]
        dots = (gathered @ qcodes[rows][:, :, None])[:, :, 0]
        return (self._norms[members] + query_norms[rows][:, None]
                - 2.0 * dots)

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """Quantized candidate pass + float-tier re-rank.

        The int8 scan ranks the whole corpus in code space and keeps the
        ``k · overfetch`` best candidates per query — no square roots, no
        exact tie resolution, just one ``argpartition`` — then the float
        tier re-ranks that pool exactly (same tie-breaking as
        :func:`exact_search`, candidates pre-sorted by member index).

        Like the bucketed LSH indexes, the store heals itself when handed
        an embedding matrix whose length it does not recognize (full
        recalibration); a same-length geometry change must be announced via
        :meth:`recalibrate` — the RCS hooks do — or candidates are selected
        from stale codes (the float re-rank still prices whatever pool
        comes out, so staleness degrades recall, never distances).
        """
        embeddings = np.atleast_2d(np.asarray(embeddings))
        queries = _as_float_matrix(queries)
        n = len(embeddings)
        if n != self._size:
            self.recalibrate(embeddings)
        k = min(k, n)
        pool = k * max(self.config.overfetch, 1)
        if pool >= n or n < self.config.min_size:
            return exact_search(queries, embeddings, k)
        code_sq = self.code_distances(queries)
        candidates = np.argpartition(code_sq, pool - 1, axis=1)[:, :pool]
        candidates.sort(axis=1)
        return rerank_candidates(queries, embeddings, candidates, k)

    # -- persistence ------------------------------------------------------
    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """(arrays, JSON-able meta) capturing calibration, codes and the
        drift-accounting counters — everything :meth:`restore` needs to
        resurrect the store without requantizing."""
        assert self.zero_point is not None and self._codes is not None
        arrays = {"codes": self._codes[:self._size],
                  "zero_point": self.zero_point}
        meta = {"scale": self.scale,
                "added": self._added_since_calibration,
                "clipped": self._clipped_since_calibration}
        return arrays, meta

    @classmethod
    def restore(cls, embeddings: np.ndarray, config: QuantizationConfig,
                arrays: dict[str, np.ndarray],
                meta: dict) -> "QuantizedStore":
        """Rebuild from persisted state — no calibration pass.

        The code norms are recomputed from the saved codes (bit-identical
        to what :meth:`recalibrate` derives — same cast, same reduction);
        everything else loads verbatim, including the drift counters, so a
        restored node recalibrates at exactly the same future add as the
        node that saved it.
        """
        store = cls.__new__(cls)
        store.config = config
        codes = np.asarray(arrays["codes"], dtype=np.int8)
        n, dim = codes.shape
        store.scale = float(meta["scale"])
        store.zero_point = np.asarray(arrays["zero_point"],
                                      dtype=np.float64)
        store._gemm_dtype = np.dtype(
            np.float32 if 4 * dim * 127 * 127 < 2 ** 24 else np.float64)
        capacity = max(4, n)
        store._codes = np.zeros((capacity, dim), dtype=np.int8)
        store._codes[:n] = codes
        store._codes_float = None
        store._norms = np.zeros(capacity, dtype=store._gemm_dtype)
        gemm = store._codes[:n].astype(store._gemm_dtype)
        store._norms[:n] = (gemm * gemm).sum(axis=1)
        store._size = n
        store._added_since_calibration = int(meta["added"])
        store._clipped_since_calibration = int(meta["clipped"])
        return store


# ----------------------------------------------------------------------
# Product-quantization tier (wide embeddings)
# ----------------------------------------------------------------------
def seeded_kmeans(x: np.ndarray, k: int, rng: np.random.Generator,
                  iters: int) -> np.ndarray:
    """Deterministic k-means: k-means++ init from ``rng``, capped Lloyd.

    Every source of randomness flows through the caller's generator (the
    advisor RNG), every tie — centroid assignment, duplicate rows — breaks
    by lowest index, and the scatter-update runs through ``np.add.at``
    (sequential, order-stable), so identical inputs and seed produce
    bit-identical codebooks on every run: the property the CI determinism
    job pins.  When the corpus has fewer distinct rows than ``k`` the
    k-means++ pass runs out of mass (all distances zero) and the remaining
    centroids duplicate the first — assignments still resolve
    deterministically to the lowest centroid index.
    """
    n = len(x)
    k = max(1, min(k, n))
    centroids = np.empty((k, x.shape[1]), dtype=np.float64)
    centroids[0] = x[int(rng.integers(n))]
    d2 = squared_distance_matrix(x, centroids[:1])[:, 0]
    for j in range(1, k):
        total = float(d2.sum())
        if total <= 0.0:
            centroids[j:] = centroids[0]
            break
        choice = int(rng.choice(n, p=d2 / total))
        centroids[j] = x[choice]
        d2 = np.minimum(d2,
                        squared_distance_matrix(x, centroids[j:j + 1])[:, 0])
    for _ in range(iters):
        assign = squared_distance_matrix(x, centroids).argmin(axis=1)
        counts = np.bincount(assign, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, x)
        # Empty clusters keep their previous centroid (no random respawn —
        # determinism beats marginally better codebook utilization here).
        updated = np.where(counts[:, None] > 0,
                           sums / np.maximum(counts, 1)[:, None], centroids)
        if np.array_equal(updated, centroids):
            break
        centroids = updated
    return centroids


class PQStore:
    """Product-quantization codes of wide RCS embeddings + the ADC kernel.

    The flat int8 tier stops being attractive past ``INT8_EXACT_MAX_DIM``
    dims: its code distances lose int32 exactness (falling back to a
    float64 GEMM that costs as much as the float tier it was supposed to
    undercut) and one code byte per dimension stops compressing anything.
    Product quantization instead splits the ``d`` dimensions into
    ``num_subspaces`` contiguous subspaces, trains one ``codebook_size``-
    centroid codebook per subspace with :func:`seeded_kmeans`, and encodes
    every member as one uint8 centroid id per subspace — d floats become
    ``num_subspaces`` bytes.

    Scanning is asymmetric-distance computation (ADC): per query batch one
    lookup table of ``−2 · q_m · c_{m,j}`` per subspace is computed once
    (a [Q, K] GEMM against each codebook), and a member's approximate
    distance is its precomputed reconstruction norm plus ``num_subspaces``
    table gathers — no per-member inner products at all, which is the whole
    speedup at d = 512.  The ADC values are rank-only surrogates: they omit
    the per-query ``‖q‖²`` constant (it cannot reorder one query's
    candidates) and may be slightly negative; the top ``k · overfetch``
    candidates are re-ranked exactly in the float tier
    (:func:`rerank_candidates`), so returned distances are float-exact,
    just as in the int8 tier.

    ``residual=True`` adds a second codebook pass over the quantization
    residuals (``x − x̂``): reconstruction error roughly halves, at one
    more code byte and one more ADC gather per subspace — the opt-in knob
    for recall-critical corpora.

    :meth:`add` encodes appended rows under the frozen codebooks and
    reports drift through the reconstruction error: a row whose error
    overshoots the calibration-time maximum by ``drift_outlier_factor``
    (or an accumulated fraction of above-maximum rows past
    ``drift_clip_fraction``) means the frozen codebooks no longer cover
    the corpus geometry, and the owner — the RCS — recalibrates.
    """

    #: Code layout tag (the serving CLI and tier reports read this).
    kind = "pq"

    def __init__(self, embeddings: np.ndarray,
                 config: QuantizationConfig | None = None) -> None:
        self.config = config or QuantizationConfig()
        self._splits: list[slice] = []
        self._codebooks: list[np.ndarray] = []           # M × [K, d_m]
        self._residual_codebooks: list[np.ndarray] = []
        self._codebook_k = 0
        self._num_subspaces = 0
        self._codes: np.ndarray | None = None            # [capacity, M] uint8
        self._residual_codes: np.ndarray | None = None
        self._gather_codes: list[np.ndarray] | None = None  # [M, N] int64 memo
        self._recon_norms: np.ndarray | None = None      # [capacity] ‖x̂‖²
        self._member_norms: np.ndarray | None = None     # [capacity] ‖x‖² (float tier)
        #: Per-codebook [K] centroid norms, folded into the ADC tables so
        #: the plain-PQ scan needs no per-member norm pass at all (the
        #: subspaces are disjoint, so ‖x̂‖² = Σ_m ‖c_m‖²).
        self._centroid_norms: list[list[np.ndarray]] = []
        #: Residual mode only: the per-member cross term ``2 Σ_m c1_m·c2_m``
        #: the folded tables cannot carry ([capacity] float32; None = plain).
        self._scan_bias: np.ndarray | None = None
        self._size = 0
        self._err_scale = 0.0
        self._added_since_calibration = 0
        self._high_error_since_calibration = 0
        self.recalibrate(embeddings)

    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The live [N, M] uint8 code matrix (first-pass codebook ids)."""
        return self._codes[:self._size]

    @property
    def codebooks(self) -> list[np.ndarray]:
        """The per-subspace [K, d_m] centroid matrices."""
        return self._codebooks

    @property
    def num_subspaces(self) -> int:
        return self._num_subspaces

    # -- calibration ----------------------------------------------------
    def recalibrate(self, embeddings: np.ndarray) -> None:
        """(Re)train the codebooks from the corpus and re-encode it."""
        raw = _as_float_matrix(embeddings)
        # Float-tier member norms for the re-rank, computed on the corpus'
        # own serving tier *before* the float64 cast the codebook math
        # runs on — bit-identical to what the re-rank would recompute.
        member_norms = (raw * raw).sum(axis=1)
        embeddings = np.asarray(raw, dtype=np.float64)
        n, dim = embeddings.shape
        config = self.config
        m = config.num_subspaces
        if m <= 0:
            # The subspace count IS the scan cost: every member costs one
            # table gather per subspace, so the ADC pass only beats the
            # float GEMM when m stays far below d.  ~128 dims per subspace
            # keeps the d = 512 scan ≥ 2× the exact float32 scan (the
            # pq_search bench); corpora whose neighbor gaps sit near the
            # coarser reconstruction error can buy fidelity back with
            # ``residual=True`` (or an explicit ``num_subspaces``) instead
            # of paying gathers on every query.
            m = int(np.clip(dim // 128, 4, 16))
        m = max(1, min(m, max(dim, 1)))
        bounds = np.linspace(0, dim, m + 1).astype(np.int64)
        self._splits = [slice(int(bounds[i]), int(bounds[i + 1]))
                        for i in range(m)]
        self._num_subspaces = m
        rng = np.random.default_rng(config.seed)
        train = embeddings
        if n > config.kmeans_sample:
            train = embeddings[np.sort(
                rng.choice(n, config.kmeans_sample, replace=False))]
        self._codebook_k = max(1, min(config.codebook_size,
                                      max(len(train), 1)))
        self._codebooks = [
            seeded_kmeans(train[:, sl], self._codebook_k, rng,
                          config.kmeans_iters)
            if len(train) else np.zeros((1, sl.stop - sl.start),
                                        dtype=np.float64)
            for sl in self._splits
        ]
        self._codebook_k = len(self._codebooks[0])
        self._residual_codebooks = []
        if config.residual and len(train):
            train_recon = self._encode_with(train, self._codebooks)[1]
            residuals = train - train_recon
            self._residual_codebooks = [
                seeded_kmeans(residuals[:, sl], self._codebook_k, rng,
                              config.kmeans_iters)
                for sl in self._splits
            ]
        self._centroid_norms = [
            [(book * book).sum(axis=1) for book in books]
            for books in ([self._codebooks, self._residual_codebooks]
                          if self._residual_codebooks else [self._codebooks])
        ]
        codes, residual_codes, recon = self._encode(embeddings)
        capacity = max(4, n)
        self._codes = np.zeros((capacity, m), dtype=np.uint8)
        self._codes[:n] = codes
        self._residual_codes = None
        self._scan_bias = None
        if self._residual_codebooks:
            self._residual_codes = np.zeros((capacity, m), dtype=np.uint8)
            self._residual_codes[:n] = residual_codes
            self._scan_bias = np.zeros(capacity, dtype=np.float32)
        self._member_norms = np.zeros(capacity, dtype=member_norms.dtype)
        self._member_norms[:n] = member_norms
        self._recon_norms = np.zeros(capacity, dtype=np.float32)
        self._recon_norms[:n] = (recon * recon).sum(axis=1)
        if self._scan_bias is not None:
            self._scan_bias[:n] = self._recon_norms[:n] - self._fold_norms(
                codes, residual_codes)
        self._gather_codes = None
        self._size = n
        # Drift reference: the worst reconstruction error the calibration
        # itself produced (floored against a perfectly reconstructed tiny
        # corpus, where any genuinely new row warrants a cheap recalibrate).
        err = np.sqrt(np.maximum(((embeddings - recon) ** 2).sum(axis=1),
                                 0.0))
        floor = 1e-9 * max(float(np.abs(embeddings).max()) if n else 0.0, 1.0)
        self._err_scale = max(float(err.max()) if n else 0.0, floor)
        self._added_since_calibration = 0
        self._high_error_since_calibration = 0

    def _fold_norms(self, codes: np.ndarray,
                    residual_codes: np.ndarray | None) -> np.ndarray:
        """Σ_m ‖c_m‖² over every codebook pass — what the folded ADC tables
        already account for per member."""
        folded = np.zeros(len(codes), dtype=np.float64)
        for pass_norms, pass_codes in zip(
                self._centroid_norms,
                [codes] + ([residual_codes]
                           if residual_codes is not None else [])):
            for i in range(self._num_subspaces):
                folded += pass_norms[i][pass_codes[:, i].astype(np.int64)]
        return folded.astype(np.float32)

    def _encode_with(self, x: np.ndarray, codebooks: list[np.ndarray]
                     ) -> tuple[np.ndarray, np.ndarray]:
        """([n, M] uint8 codes, [n, d] reconstruction) under ``codebooks``."""
        codes = np.empty((len(x), self._num_subspaces), dtype=np.uint8)
        recon = np.empty_like(x)
        for i, sl in enumerate(self._splits):
            assign = squared_distance_matrix(
                x[:, sl], codebooks[i]).argmin(axis=1)
            codes[:, i] = assign
            recon[:, sl] = codebooks[i][assign]
        return codes, recon

    def _encode(self, x: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        """Full encode: first-pass codes, residual codes (opt-in), recon."""
        codes, recon = self._encode_with(x, self._codebooks)
        residual_codes = None
        if self._residual_codebooks:
            residual_codes, residual_recon = self._encode_with(
                x - recon, self._residual_codebooks)
            recon = recon + residual_recon
        return codes, residual_codes, recon

    def reconstruct(self) -> np.ndarray:
        """Float64 reconstruction of the live corpus from its codes."""
        recon = np.empty((self._size, self._splits[-1].stop),
                         dtype=np.float64)
        for i, sl in enumerate(self._splits):
            recon[:, sl] = self._codebooks[i][
                self._codes[:self._size, i].astype(np.int64)]
            if self._residual_codes is not None:
                recon[:, sl] += self._residual_codebooks[i][
                    self._residual_codes[:self._size, i].astype(np.int64)]
        return recon

    # -- growth ----------------------------------------------------------
    def add(self, embedding: np.ndarray) -> bool:
        """Encode one appended row; True = drift, caller must recalibrate."""
        raw = _as_float_matrix(embedding).reshape(1, -1)
        row = np.asarray(raw, dtype=np.float64)
        codes, residual_codes, recon = self._encode(row)
        err = float(np.sqrt(max(((row - recon) ** 2).sum(), 0.0)))
        self._added_since_calibration += 1
        if err > self._err_scale:
            self._high_error_since_calibration += 1
        if self._size == len(self._codes):
            grown = np.zeros((2 * self._size, self._num_subspaces),
                             dtype=np.uint8)
            grown[:self._size] = self._codes[:self._size]
            self._codes = grown
            if self._residual_codes is not None:
                grown = np.zeros((2 * self._size, self._num_subspaces),
                                 dtype=np.uint8)
                grown[:self._size] = self._residual_codes[:self._size]
                self._residual_codes = grown
            grown_norms = np.zeros(2 * self._size, dtype=np.float32)
            grown_norms[:self._size] = self._recon_norms[:self._size]
            self._recon_norms = grown_norms
            grown_member = np.zeros(2 * self._size,
                                    dtype=self._member_norms.dtype)
            grown_member[:self._size] = self._member_norms[:self._size]
            self._member_norms = grown_member
            if self._scan_bias is not None:
                grown_bias = np.zeros(2 * self._size, dtype=np.float32)
                grown_bias[:self._size] = self._scan_bias[:self._size]
                self._scan_bias = grown_bias
        self._codes[self._size] = codes[0]
        if self._residual_codes is not None:
            self._residual_codes[self._size] = residual_codes[0]
        self._recon_norms[self._size] = (recon * recon).sum()
        # Norm of the row as the RCS stores it (the corpus tier), so the
        # memo stays bit-identical to a recomputation from the live matrix.
        row_tier = np.asarray(raw[0], dtype=self._member_norms.dtype)
        self._member_norms[self._size] = (row_tier * row_tier).sum()
        if self._scan_bias is not None:
            self._scan_bias[self._size] = (
                self._recon_norms[self._size]
                - self._fold_norms(codes, residual_codes)[0])
        self._gather_codes = None
        self._size += 1
        config = self.config
        if err > self._err_scale * config.drift_outlier_factor:
            return True
        return (self._high_error_since_calibration
                > config.drift_clip_fraction
                * max(self._added_since_calibration, 1))

    # -- the ADC kernel ---------------------------------------------------
    def query_context(self, queries: np.ndarray) -> list[np.ndarray]:
        """The per-batch ADC lookup tables, computed once per query batch.

        One [M, Q, K] float32 table per codebook pass holding
        ``‖c_{m,j}‖² − 2 · q_m · c_{m,j}`` — the centroid norms are folded
        in because the subspaces are disjoint (``‖x̂‖² = Σ_m ‖c_m‖²``), so
        a member's rank surrogate is just M table gathers (2M plus the
        per-member cross-term bias with residuals) and the scan never
        touches a per-member norm array.
        """
        q = np.asarray(_as_float_matrix(queries), dtype=np.float64)
        tables = [self._adc_table(q, self._codebooks,
                                  self._centroid_norms[0])]
        if self._residual_codebooks:
            tables.append(self._adc_table(q, self._residual_codebooks,
                                          self._centroid_norms[1]))
        return tables

    def _adc_table(self, q: np.ndarray, codebooks: list[np.ndarray],
                   centroid_norms: list[np.ndarray]) -> np.ndarray:
        table = np.empty((self._num_subspaces, len(q), self._codebook_k),
                         dtype=np.float32)
        for i, sl in enumerate(self._splits):
            table[i] = centroid_norms[i][None, :] - 2.0 * (q[:, sl]
                                                           @ codebooks[i].T)
        return table

    def _scan_codes(self) -> list[np.ndarray]:
        """Memoized [M, N] int64 transposed code rows for the ADC scan.

        ``np.take`` with a contiguous int64 index row runs ~2× faster than
        with a strided uint8 column view, and the transposition is paid
        once per corpus change (dropped by :meth:`add` /
        :meth:`recalibrate`) instead of once per scan chunk.
        """
        if (self._gather_codes is None
                or self._gather_codes[0].shape[1] != self._size):
            sets = [self._codes[:self._size]]
            if self._residual_codes is not None:
                sets.append(self._residual_codes[:self._size])
            self._gather_codes = [
                np.ascontiguousarray(codes.T.astype(np.int64))
                for codes in sets
            ]
        return self._gather_codes

    def _accumulate_block(self, context: list[np.ndarray],
                          code_sets: list[np.ndarray], start: int,
                          stop: int) -> np.ndarray:
        """One [Q, stop−start] ADC block: bias (residual cross term) or a
        first-table fast path, plus the remaining table gathers.  The single
        accumulation kernel behind both the materialized scan
        (:meth:`adc_distances`) and the chunk-local selection
        (:meth:`_scan_select`)."""
        if self._scan_bias is not None:
            block = np.broadcast_to(
                self._scan_bias[start:stop],
                (context[0].shape[1], stop - start)).copy()
            first = 0
        else:
            block = np.take(context[0][0], code_sets[0][0][start:stop],
                            axis=1)
            first = 1
        for pass_id, (table, codes) in enumerate(zip(context, code_sets)):
            lo = first if pass_id == 0 else 0
            for i in range(lo, self._num_subspaces):
                block += np.take(table[i], codes[i][start:stop], axis=1)
        return block

    def adc_distances(self, queries: np.ndarray) -> np.ndarray:
        """[Q, N] ADC rank surrogates of the whole corpus.

        Chunked over members so the [Q, chunk] accumulator stays cache-
        resident across the M (or 2M) gather passes instead of streaming a
        [Q, N] matrix through memory per subspace.
        """
        context = self.query_context(queries)
        num_queries = context[0].shape[1]
        n = self._size
        out = np.empty((num_queries, n), dtype=np.float32)
        code_sets = self._scan_codes()
        step = int(max(256, (1 << 21) // max(num_queries, 1)))
        for start in range(0, n, step):
            stop = min(start + step, n)
            out[:, start:stop] = self._accumulate_block(context, code_sets,
                                                        start, stop)
        return out

    def pool_distances(self, context: list[np.ndarray], rows: np.ndarray,
                       members: np.ndarray) -> np.ndarray:
        """[R, W] ADC rank surrogates of padded candidate pools.

        Same contract as :meth:`QuantizedStore.pool_distances`: pad slots
        come back with real values and the caller masks them, so the
        bucketed-LSH pools select their float-tier candidates from PQ codes
        without any per-member inner products.
        """
        if self._scan_bias is not None:
            acc = self._scan_bias[members].astype(np.float32, copy=True)
        else:
            acc = np.zeros(members.shape, dtype=np.float32)
        code_sets = [self._codes]
        if self._residual_codes is not None:
            code_sets.append(self._residual_codes)
        for table, codes in zip(context, code_sets):
            gathered = codes[members].astype(np.int64)       # [R, W, M]
            sub = table[:, rows]          # one [M, R, K] row-gather per pass
            for i in range(self._num_subspaces):
                acc += np.take_along_axis(sub[i], gathered[:, :, i], axis=1)
        return acc

    def _scan_select(self, queries: np.ndarray, pool: int) -> np.ndarray:
        """[Q, pool] ADC-best member indices, selected chunk-locally.

        Equivalent to ``argpartition(adc_distances(q), pool)`` but the
        partial top-``pool`` of each member chunk is taken while the just-
        computed ADC block is still cache-resident, and only the per-chunk
        survivors meet in the final (tiny) partition — the full [Q, N]
        surrogate matrix is never materialized or re-read cold.
        """
        context = self.query_context(queries)
        num_queries = context[0].shape[1]
        n = self._size
        code_sets = self._scan_codes()
        step = int(max(2 * pool, (1 << 21) // max(num_queries, 1)))
        best_vals: list[np.ndarray] = []
        best_idx: list[np.ndarray] = []
        for start in range(0, n, step):
            stop = min(start + step, n)
            block = self._accumulate_block(context, code_sets, start, stop)
            if pool < stop - start:
                local = np.argpartition(block, pool - 1, axis=1)[:, :pool]
                best_vals.append(np.take_along_axis(block, local, axis=1))
                best_idx.append(local + start)
            else:
                best_vals.append(block)
                best_idx.append(np.broadcast_to(np.arange(start, stop),
                                                block.shape))
        vals = np.concatenate(best_vals, axis=1)
        idx = np.concatenate(best_idx, axis=1)
        if pool < vals.shape[1]:
            final = np.argpartition(vals, pool - 1, axis=1)[:, :pool]
            idx = np.take_along_axis(idx, final, axis=1)
        return idx

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """ADC candidate pass + float-tier re-rank.

        Mirrors :meth:`QuantizedStore.search` including the overfetch edge:
        a pool of ``k · overfetch ≥ N`` candidates selects the whole corpus
        anyway, so the scan degrades to the plain float search (no
        duplicate or missing candidates), and a corpus below ``min_size``
        never pays the ADC table build.  The store heals itself when handed
        an embedding matrix whose length it does not recognize.
        """
        embeddings = np.atleast_2d(np.asarray(embeddings))
        queries = _as_float_matrix(queries)
        n = len(embeddings)
        if n != self._size:
            self.recalibrate(embeddings)
        k = min(k, n)
        pool = k * max(self.config.overfetch, 1)
        if pool >= n or n < self.config.min_size:
            return exact_search(queries, embeddings, k)
        candidates = self._scan_select(queries, pool)
        candidates.sort(axis=1)
        return rerank_candidates(queries, embeddings, candidates, k,
                                 member_norms=self._member_norms[:n])

    # -- persistence ------------------------------------------------------
    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """(arrays, JSON-able meta) capturing codebooks, codes, the
        reconstruction norms and the drift counters."""
        assert self._codes is not None and self._recon_norms is not None
        arrays: dict[str, np.ndarray] = {
            "codes": self._codes[:self._size],
            "recon_norms": self._recon_norms[:self._size],
        }
        for i, book in enumerate(self._codebooks):
            arrays[f"codebook_{i}"] = book
        if self._residual_codes is not None:
            arrays["residual_codes"] = self._residual_codes[:self._size]
            for i, book in enumerate(self._residual_codebooks):
                arrays[f"residual_codebook_{i}"] = book
        meta = {"err_scale": self._err_scale,
                "added": self._added_since_calibration,
                "high_error": self._high_error_since_calibration,
                "num_subspaces": self._num_subspaces}
        return arrays, meta

    @classmethod
    def restore(cls, embeddings: np.ndarray, config: QuantizationConfig,
                arrays: dict[str, np.ndarray], meta: dict) -> "PQStore":
        """Rebuild from persisted state — **zero** k-means calls.

        Codebooks, codes and reconstruction norms load verbatim; the
        float-tier member norms are recomputed from the live corpus (the
        same reduction :meth:`recalibrate` runs, bit-identical), the
        centroid-norm fold and the residual scan bias are re-derived from
        the loaded codebooks (cheap, deterministic), and the drift
        counters resume exactly where the saving node left them.
        """
        store = cls.__new__(cls)
        store.config = config
        codes = np.asarray(arrays["codes"], dtype=np.uint8)
        n, m = codes.shape
        raw = _as_float_matrix(embeddings)
        member_norms = (raw * raw).sum(axis=1)
        dim = raw.shape[1]
        bounds = np.linspace(0, dim, m + 1).astype(np.int64)
        store._splits = [slice(int(bounds[i]), int(bounds[i + 1]))
                        for i in range(m)]
        store._num_subspaces = m
        store._codebooks = [
            np.asarray(arrays[f"codebook_{i}"], dtype=np.float64)
            for i in range(m)]
        store._codebook_k = len(store._codebooks[0])
        store._residual_codebooks = []
        residual_codes = None
        if "residual_codes" in arrays:
            residual_codes = np.asarray(arrays["residual_codes"],
                                        dtype=np.uint8)
            store._residual_codebooks = [
                np.asarray(arrays[f"residual_codebook_{i}"],
                           dtype=np.float64)
                for i in range(m)]
        store._centroid_norms = [
            [(book * book).sum(axis=1) for book in books]
            for books in ([store._codebooks, store._residual_codebooks]
                          if store._residual_codebooks
                          else [store._codebooks])
        ]
        capacity = max(4, n)
        store._codes = np.zeros((capacity, m), dtype=np.uint8)
        store._codes[:n] = codes
        store._residual_codes = None
        store._scan_bias = None
        if residual_codes is not None:
            store._residual_codes = np.zeros((capacity, m), dtype=np.uint8)
            store._residual_codes[:n] = residual_codes
            store._scan_bias = np.zeros(capacity, dtype=np.float32)
        store._member_norms = np.zeros(capacity, dtype=member_norms.dtype)
        store._member_norms[:n] = member_norms
        store._recon_norms = np.zeros(capacity, dtype=np.float32)
        store._recon_norms[:n] = np.asarray(arrays["recon_norms"],
                                            dtype=np.float32)
        if store._scan_bias is not None:
            store._scan_bias[:n] = store._recon_norms[:n] - store._fold_norms(
                codes, residual_codes)
        store._gather_codes = None
        store._size = n
        store._err_scale = float(meta["err_scale"])
        store._added_since_calibration = int(meta["added"])
        store._high_error_since_calibration = int(meta["high_error"])
        return store


if TYPE_CHECKING:
    from ..ivf import IVFStore

    #: Any quantized candidate tier; everything downstream of
    #: :func:`select_quantizer` is layout-agnostic (``candidate_scan``,
    #: the LSH pool narrowing, the RCS requantization hooks).
    CandidateStore = QuantizedStore | PQStore | IVFStore
else:
    # Runtime alias kept import-cycle-free: core.ivf imports this module,
    # so the IVF member only joins the union under TYPE_CHECKING and
    # select_quantizer imports it locally.
    CandidateStore = QuantizedStore | PQStore


def select_quantizer(embeddings: np.ndarray,
                     config: QuantizationConfig) -> "CandidateStore":
    """Build the candidate tier a corpus' width calls for.

    ``mode="auto"`` picks flat int8 up to ``INT8_EXACT_MAX_DIM`` dims —
    where its code distances are exact integer arithmetic in a float32
    GEMM — and product quantization past that, where flat int8 loses both
    its exactness bound and its compression ratio.  "int8" / "pq" pin a
    layout regardless of width.  ``ivf=True`` wraps the chosen flat store
    in an :class:`~repro.core.ivf.IVFStore` coarse partition, which probes
    only the ``nprobe`` nearest cells per query and delegates back to the
    flat scan whenever the partition can't beat it (small corpus,
    ``nprobe >= cells``).
    """
    embeddings = _as_float_matrix(embeddings)
    mode = config.mode
    if mode == "auto":
        mode = ("int8" if embeddings.shape[1] <= INT8_EXACT_MAX_DIM
                else "pq")
    base: QuantizedStore | PQStore
    if mode == "pq":
        base = PQStore(embeddings, config)
    else:
        base = QuantizedStore(embeddings, config)
    if config.ivf:
        from ..ivf import IVFStore
        return IVFStore(embeddings, config, store=base)
    return base


def candidate_scan(queries: np.ndarray, embeddings: np.ndarray, k: int,
                   store: "CandidateStore | None" = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Corpus scan at the best attached precision: quantized candidates
    (int8 codes or PQ ADC) when a size-synced store is available, float
    otherwise.  With ``k · overfetch`` covering the whole corpus both
    stores degrade to the plain float scan — same indices, same distances,
    no duplicate or missing candidates."""
    if store is not None and len(store) == len(embeddings):
        return store.search(queries, embeddings, k)
    return exact_search(queries, embeddings, k)
