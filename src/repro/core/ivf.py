"""IVF coarse partitioning over the quantized candidate tiers.

Every quantized candidate pass so far — the flat-int8 code GEMM and the PQ
ADC gathers — still touches all N RCS members per query.  This module adds
the standard inverted-file (IVF) layout on top of either store: a coarse
quantizer (``seeded_kmeans``, the same deterministic trainer the PQ
codebooks use) partitions the corpus into cells, the member codes are
materialized as per-cell *contiguous* blocks, and a query only scans the
``nprobe`` cells whose centroids are nearest — turning the candidate-pass
cost from O(N) into O(N/cells · nprobe) plus one [Q, cells] coarse GEMM.

The wrapped store keeps the corpus in its **original member order** and
stays fully functional: :class:`IVFStore` delegates ``query_context`` /
``pool_distances`` (the LSH re-rank pool hooks take original-order member
ids), drift accounting, and — crucially — the whole search whenever
probing would cover every cell anyway (``nprobe ≥ cells``), the corpus is
below the IVF floor, or the overfetch pool covers the corpus.  Delegation,
not recomputation, is what makes the ``nprobe ≥ cells`` edge **bit-for-bit**
identical to the non-IVF store: code-distance ties straddling the pool
boundary would otherwise be resolved under a different scan order.

The probed scan mirrors the store kernels exactly: int8 cells run the same
integer-exact code GEMM over contiguous block slices, PQ cells gather the
same folded ADC tables; the per-query survivors (``k · overfetch``, pooled
across the probed cells) are re-ranked in the float tier with the same
padded Gram-identity + ``top_k_neighbors`` idiom as the bucketed LSH
re-rank, so returned distances are float-tier exact and ties break by
lowest member index — the contract every other serving path honors.

Determinism: the coarse trainer draws only from ``np.random.default_rng``
seeded with the quantization config seed, cell assignment ties break by
lowest centroid index (``argmin``), and the per-cell scan order is a stable
argsort — identical corpus and config produce bit-identical probes.
"""

from __future__ import annotations

import numpy as np

from .serving import quantizers as _quantizers
from .serving import (PQStore, QuantizationConfig, QuantizedStore,
                      _as_float_matrix, _common_dtype,
                      squared_distance_matrix, top_k_neighbors)

#: Hard ceiling of the auto cell-count rule (≈√N, clipped): past this the
#: coarse probe GEMM itself starts to rival the savings.
_MAX_AUTO_CELLS = 4096


def auto_cells(n: int) -> int:
    """The auto cell count for an ``n``-member corpus: ≈ √N, clipped.

    √N balances the two costs a probe pays — the [Q, cells] coarse GEMM
    and the ``nprobe · N/cells`` member scan — the standard IVF sizing.
    """
    return int(np.clip(np.rint(np.sqrt(max(n, 1))), 1, _MAX_AUTO_CELLS))


class IVFStore:
    """An inverted-file coarse partition wrapped around a candidate store.

    The base store (:class:`QuantizedStore` or :class:`PQStore`) owns the
    codes, the calibration and the drift counters, all in original member
    order; this wrapper owns only the coarse geometry — centroids, member→
    cell assignments, and lazily materialized cell-ordered code blocks —
    and the probed search path.  Everything else delegates, so attaching
    IVF never changes what a non-probed code path computes.
    """

    def __init__(self, embeddings: np.ndarray,
                 config: QuantizationConfig | None = None,
                 store: QuantizedStore | PQStore | None = None) -> None:
        self.config = config or QuantizationConfig()
        if store is None:
            base_mode = self.config.mode
            if base_mode == "auto":
                width = _as_float_matrix(embeddings).shape[1]
                base_mode = ("int8"
                             if width <= _quantizers.INT8_EXACT_MAX_DIM
                             else "pq")
            store = (PQStore(embeddings, self.config) if base_mode == "pq"
                     else QuantizedStore(embeddings, self.config))
        self.store = store
        self.centroids = np.zeros((1, 1), dtype=np.float64)
        self._assignments = np.zeros(4, dtype=np.int64)
        self._size = 0
        self._cell_members: np.ndarray | None = None
        self._cell_offsets: np.ndarray | None = None
        self._blocks: tuple | None = None
        self._member_norms: np.ndarray | None = None
        self._train_coarse(embeddings)

    @property
    def kind(self) -> str:
        """Layout tag: the base tag behind an ``ivf-`` prefix (tier
        reports and the serving CLI surface it)."""
        return f"ivf-{self.store.kind}"

    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The base store's live code matrix (original member order)."""
        return self.store.codes

    @property
    def num_cells(self) -> int:
        return len(self.centroids)

    # -- coarse calibration ----------------------------------------------
    def _train_coarse(self, embeddings: np.ndarray) -> None:
        """(Re)train the coarse quantizer and assign every member."""
        emb = np.asarray(_as_float_matrix(embeddings), dtype=np.float64)
        n, dim = emb.shape
        config = self.config
        cells = config.ivf_cells if config.ivf_cells > 0 else auto_cells(n)
        cells = max(1, min(cells, max(n, 1)))
        if n == 0:
            self.centroids = np.zeros((1, max(dim, 1)), dtype=np.float64)
            assignments = np.zeros(0, dtype=np.int64)
        else:
            rng = np.random.default_rng(config.seed)
            train = emb
            if n > config.kmeans_sample:
                train = emb[np.sort(
                    rng.choice(n, config.kmeans_sample, replace=False))]
            self.centroids = _quantizers.seeded_kmeans(
                train, cells, rng, config.kmeans_iters)
            assignments = squared_distance_matrix(
                emb, self.centroids).argmin(axis=1).astype(np.int64)
        capacity = max(4, n)
        self._assignments = np.zeros(capacity, dtype=np.int64)
        self._assignments[:n] = assignments
        self._size = n
        self._cell_members = None
        self._cell_offsets = None
        self._blocks = None
        self._member_norms = None

    def recalibrate(self, embeddings: np.ndarray) -> None:
        """Full recalibration: base store first, then the coarse layer."""
        self.store.recalibrate(embeddings)
        self._train_coarse(embeddings)

    # -- growth ----------------------------------------------------------
    def add(self, embedding: np.ndarray) -> bool:
        """Assign one appended row to its nearest (frozen) cell and forward
        the append to the base store; the base drift verdict propagates —
        the RCS responds with :meth:`recalibrate`, which also retrains the
        coarse centroids."""
        row = np.asarray(_as_float_matrix(embedding),
                         dtype=np.float64).reshape(1, -1)
        cell = int(squared_distance_matrix(row, self.centroids)[0].argmin())
        if self._size == len(self._assignments):
            grown = np.zeros(2 * self._size, dtype=np.int64)
            grown[:self._size] = self._assignments[:self._size]
            self._assignments = grown
        self._assignments[self._size] = cell
        self._size += 1
        self._cell_members = None
        self._cell_offsets = None
        self._blocks = None
        self._member_norms = None
        return self.store.add(embedding)

    # -- the LSH-pool hooks (original member order: pure delegation) ------
    def query_context(self, queries: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray] | list[np.ndarray]:
        return self.store.query_context(queries)

    def pool_distances(self,
                       context: (tuple[np.ndarray, np.ndarray]
                                 | list[np.ndarray]),
                       rows: np.ndarray,
                       members: np.ndarray) -> np.ndarray:
        if isinstance(self.store, QuantizedStore):
            assert isinstance(context, tuple)
            return self.store.pool_distances(context, rows, members)
        assert isinstance(context, list)
        return self.store.pool_distances(context, rows, members)

    # -- cell layout ------------------------------------------------------
    def invalidate_blocks(self) -> None:
        """Drop the materialized cell blocks (the fault-injection harness
        mutates the base codes in place; the next probe re-gathers)."""
        self._blocks = None

    def _refresh_cells(self) -> None:
        """Rebuild the CSR cell layout after adds or recalibration.

        Members are stably sorted by cell, so within each cell block the
        member ids are ascending — the order the padded re-rank's
        lowest-index tie-break relies on never needs a second sort.
        """
        if (self._cell_members is not None
                and len(self._cell_members) == self._size):
            return
        assign = self._assignments[:self._size]
        self._cell_members = np.argsort(
            assign, kind="stable").astype(np.int64)
        counts = np.bincount(assign, minlength=len(self.centroids))
        offsets = np.zeros(len(self.centroids) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._cell_offsets = offsets
        self._blocks = None

    def _cell_blocks(self) -> tuple:
        """Materialize (lazily) the cell-ordered code blocks.

        One fancy-index gather per corpus change turns every probed cell
        into a *contiguous* slice: the int8 path slices a [N, d] GEMM-tier
        code matrix, the PQ path slices [M, N] transposed code rows (plus
        the residual scan bias) — cache-hot dense kernels instead of
        per-probe scatter gathers.
        """
        if self._blocks is not None:
            return self._blocks
        members = self._cell_members
        assert members is not None
        if isinstance(self.store, QuantizedStore):
            codes = self.store._codes_gemm()[members]
            norms = self.store._norms[:self._size][members]
            self._blocks = ("int8", codes, norms)
        else:
            code_sets = [np.ascontiguousarray(cs[:, members])
                         for cs in self.store._scan_codes()]
            bias = None
            if self.store._scan_bias is not None:
                bias = self.store._scan_bias[:self._size][members]
            self._blocks = ("pq", code_sets, bias)
        return self._blocks

    # -- the probed scan --------------------------------------------------
    def _probe_cells(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """[Q, P] nearest-centroid cells per query (lowest-index ties)."""
        q = np.asarray(_as_float_matrix(queries), dtype=np.float64)
        coarse = squared_distance_matrix(q, self.centroids)
        return top_k_neighbors(coarse, nprobe)

    def _scan_probed(self, queries: np.ndarray, probed: np.ndarray,
                     pool: int) -> tuple[np.ndarray, np.ndarray]:
        """Pool the ``pool`` code-space-best members over each query's
        probed cells.

        Returns ``(members, counts)``: [Q, pool] member ids ordered
        valid-first then ascending (the re-rank contract), and the [Q]
        count of valid slots.  Cells are processed grouped — one dense
        kernel per (cell, querying-subset) — with per-cell partial top-k
        taken while the block is cache-resident, exactly like the PQ
        chunk-local scan.
        """
        blocks = self._cell_blocks()
        offsets = self._cell_offsets
        members_by_cell = self._cell_members
        assert offsets is not None and members_by_cell is not None
        num_queries, p = probed.shape
        store = self.store
        if isinstance(store, QuantizedStore):
            qcodes, qnorms = store.query_context(queries)
            val_dtype = qcodes.dtype
            num_subspaces = 0
            tables: list[np.ndarray] = []
        else:
            tables = store.query_context(queries)
            val_dtype = np.dtype(np.float32)
            num_subspaces = store.num_subspaces
        out_vals = np.full((num_queries, p, pool), np.inf, dtype=val_dtype)
        out_pos = np.zeros((num_queries, p, pool), dtype=np.int64)

        flat = probed.ravel()
        order = np.argsort(flat, kind="stable").astype(np.int64)
        sorted_cells = flat[order]
        starts = np.flatnonzero(
            np.concatenate((np.ones(1, dtype=bool),
                            sorted_cells[1:] != sorted_cells[:-1])))
        bounds = np.append(starts, len(sorted_cells))
        for g in range(len(starts)):
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            cell = int(sorted_cells[lo])
            s, e = int(offsets[cell]), int(offsets[cell + 1])
            width = e - s
            if width == 0:
                continue
            sel = order[lo:hi]
            rows = sel // p
            slots = sel % p
            if blocks[0] == "int8":
                _, codes, norms = blocks
                dots = qcodes[rows] @ codes[s:e].T
                block = (norms[s:e][None, :] + qnorms[rows][:, None]
                         - 2.0 * dots)
            else:
                _, code_sets, bias = blocks
                if bias is not None:
                    block = np.broadcast_to(
                        bias[s:e], (len(rows), width)).astype(
                            np.float32, copy=True)
                    first = 0
                else:
                    block = np.take(tables[0][0][rows],
                                    code_sets[0][0][s:e], axis=1)
                    first = 1
                for pass_id, (table, codes_t) in enumerate(
                        zip(tables, code_sets)):
                    start_sub = first if pass_id == 0 else 0
                    for i in range(start_sub, num_subspaces):
                        block += np.take(table[i][rows],
                                         codes_t[i][s:e], axis=1)
            keep = min(pool, width)
            if keep < width:
                local = np.argpartition(block, keep - 1, axis=1)[:, :keep]
                out_vals[rows, slots, :keep] = np.take_along_axis(
                    block, local, axis=1)
                out_pos[rows, slots, :keep] = local + s
            else:
                out_vals[rows, slots, :width] = block
                out_pos[rows, slots, :width] = np.arange(
                    s, e, dtype=np.int64)[None, :]

        vals = out_vals.reshape(num_queries, p * pool)
        pos = out_pos.reshape(num_queries, p * pool)
        final = np.argpartition(vals, pool - 1, axis=1)[:, :pool]
        sel_vals = np.take_along_axis(vals, final, axis=1)
        sel_pos = np.take_along_axis(pos, final, axis=1)
        members = members_by_cell[sel_pos]
        valid = np.isfinite(sel_vals)
        # Valid-first, then ascending member id — the same reorder the LSH
        # pool narrowing performs, and for the same reason: the padded
        # re-rank breaks ties by (local) position, which must coincide with
        # lowest member index.
        reorder = np.lexsort((members, ~valid), axis=1)
        members = np.take_along_axis(members, reorder, axis=1)
        counts = valid.sum(axis=1)
        return members, counts

    def search(self, queries: np.ndarray, embeddings: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
        """Probed candidate pass + padded float-tier re-rank.

        Delegation edges (the whole search runs on the base store, making
        these cases bit-for-bit identical to the non-IVF tier):

        * ``nprobe ≥ cells`` — probing covers every cell anyway;
        * corpus below ``ivf_min_size`` or ``min_size``;
        * ``k · overfetch`` pool covering the corpus (the base store
          further degrades to the exact float scan).

        Like every store, an embedding matrix of unrecognized length heals
        by full recalibration (base + coarse).
        """
        embeddings = np.atleast_2d(np.asarray(embeddings))
        queries = _as_float_matrix(queries)
        n = len(embeddings)
        if n != self._size or n != len(self.store):
            self.recalibrate(embeddings)
        k = min(k, n)
        pool = k * max(self.config.overfetch, 1)
        nprobe = max(self.config.nprobe, 1)
        if (nprobe >= len(self.centroids)
                or n < self.config.ivf_min_size
                or n < self.config.min_size
                or pool >= n):
            return self.store.search(queries, embeddings, k)
        self._refresh_cells()
        probed = self._probe_cells(queries, nprobe)
        members, counts = self._scan_probed(queries, probed, pool)

        dtype = _common_dtype(queries, embeddings)
        qcast = queries.astype(dtype, copy=False)
        norms = self._float_norms(embeddings, dtype)
        width = members.shape[1]
        gathered = embeddings[members].astype(dtype, copy=False)
        dots = (gathered @ qcast[:, :, None])[:, :, 0]
        query_norms = (qcast * qcast).sum(axis=1)
        padded = np.maximum(
            norms[members] + query_norms[:, None] - 2.0 * dots, 0.0)
        padded[np.arange(width) >= counts[:, None]] = np.inf
        local = top_k_neighbors(padded, k)
        indices = np.take_along_axis(members, local, axis=1)
        distances = np.sqrt(np.take_along_axis(padded, local, axis=1))
        short = counts < k
        if short.any():
            # Probed cells held fewer than k members for these queries —
            # the base store answers them over the full corpus.
            s_idx, s_dist = self.store.search(qcast[short], embeddings, k)
            indices[short] = s_idx
            distances[short] = s_dist.astype(distances.dtype, copy=False)
        return indices, distances

    def _float_norms(self, embeddings: np.ndarray,
                     dtype: np.dtype) -> np.ndarray:
        """Memoized float-tier ``‖x‖²`` (bit-identical to recomputation —
        same reduction over the same cast — dropped on add/recalibrate)."""
        if (self._member_norms is None
                or len(self._member_norms) != len(embeddings)
                or self._member_norms.dtype != dtype):
            cast = np.asarray(embeddings, dtype=dtype)
            self._member_norms = (cast * cast).sum(axis=1)
        return self._member_norms

    # -- persistence ------------------------------------------------------
    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """(arrays, JSON-able meta) capturing coarse + base state."""
        arrays, meta = self.store.export_state()
        arrays = dict(arrays)
        arrays["ivf_centroids"] = self.centroids
        arrays["ivf_assignments"] = self._assignments[:self._size]
        meta = dict(meta)
        meta["ivf"] = True
        return arrays, meta

    @classmethod
    def restore(cls, embeddings: np.ndarray, config: QuantizationConfig,
                arrays: dict[str, np.ndarray], meta: dict,
                store: QuantizedStore | PQStore) -> "IVFStore":
        """Rebuild from persisted state — no k-means, no re-encoding."""
        ivf = cls.__new__(cls)
        ivf.config = config
        ivf.store = store
        ivf.centroids = np.asarray(arrays["ivf_centroids"],
                                   dtype=np.float64)
        assignments = np.asarray(arrays["ivf_assignments"], dtype=np.int64)
        n = len(assignments)
        capacity = max(4, n)
        ivf._assignments = np.zeros(capacity, dtype=np.int64)
        ivf._assignments[:n] = assignments
        ivf._size = n
        ivf._cell_members = None
        ivf._cell_offsets = None
        ivf._blocks = None
        ivf._member_norms = None
        return ivf
