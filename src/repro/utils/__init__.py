"""Shared utilities: deterministic RNG handling, timing, disk caching."""

from .rng import spawn_rng, rng_from_seed
from .timing import Timer
from .cache import DiskCache, stable_hash

__all__ = ["spawn_rng", "rng_from_seed", "Timer", "DiskCache", "stable_hash"]
